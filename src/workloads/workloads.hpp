// fpq::workloads — simulated scientific workloads for the monitor.
//
// The suspicion quiz (§II-D) poses a hypothetical: "we wrap a scientific
// simulation with code that determines if any of the possible exceptions
// occurred." This module supplies the simulations: small, deterministic
// numerical kernels, each in a healthy variant and a broken variant whose
// failure mode is known in advance. Running them under fpmon turns the
// quiz's hypothetical into a regression suite for the monitor — and into
// teaching material: each workload's doc says which conditions SHOULD
// worry you.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "fpmon/monitor.hpp"

namespace fpq::workloads {

/// One runnable workload variant.
struct Workload {
  std::string name;
  std::string description;
  /// Conditions a correct monitor MUST report for this run.
  mon::ConditionSet expected;
  /// Conditions that must NOT appear (the difference between the healthy
  /// and broken variant).
  mon::ConditionSet forbidden;
  /// Executes the kernel (pure compute; observation is the caller's job).
  void (*run)();
};

/// The full catalogue: healthy/broken pairs across domains (ODE
/// integration, statistics, series summation, geometry).
std::span<const Workload> catalogue();

/// Runs one workload under a fresh monitor and returns what was observed.
mon::ConditionSet observe(const Workload& w);

/// True when the observation satisfies the workload's contract
/// (all expected conditions present, no forbidden ones).
bool contract_holds(const Workload& w, const mon::ConditionSet& observed);

}  // namespace fpq::workloads
