// fpq::workloads — simulated scientific workloads for the monitor.
//
// The suspicion quiz (§II-D) poses a hypothetical: "we wrap a scientific
// simulation with code that determines if any of the possible exceptions
// occurred." This module supplies the simulations: small, deterministic
// numerical kernels, each in a healthy variant and a broken variant whose
// failure mode is known in advance. Running them under fpmon turns the
// quiz's hypothetical into a regression suite for the monitor — and into
// teaching material: each workload's doc says which conditions SHOULD
// worry you.
//
// Kernels express every arithmetic step as an fpq::ir call routed through
// an EvalContext, so the SAME kernel can execute on the host FPU (run(),
// observed by fpmon), on the softfloat engine, or under a fault-injecting
// evaluator (probe(), the detector gauntlet's entry point) without any
// per-kernel plumbing.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>

#include "fpmon/flow.hpp"
#include "fpmon/monitor.hpp"
#include "ir/expr.hpp"

namespace fpq::workloads {

/// Where a kernel's arithmetic actually executes. Kernels call back here
/// for every expression evaluation; the context decides the evaluator
/// (host FPU, softfloat, fault-injected, ...) and may record the call
/// stream. Kernels are straight-line in their call sequence — fixed loop
/// counts, no data-dependent branching on results — so two contexts run
/// over the same kernel see call-for-call aligned streams, which is what
/// lets a clean run serve as the baseline for an injected one.
class EvalContext {
 public:
  virtual ~EvalContext() = default;
  virtual double call(const ir::Expr& expr,
                      std::span<const double> bindings) = 0;

  double call(const ir::Expr& expr, std::initializer_list<double> binds) {
    return call(expr,
                std::span<const double>(binds.begin(), binds.size()));
  }
  double call(const ir::Expr& expr) {
    return call(expr, std::span<const double>{});
  }
};

/// Host-FPU context: the real FPU executes every operation, so an
/// enclosing fpmon::ScopedMonitor observes genuine hardware exceptions.
class NativeContext final : public EvalContext {
 public:
  double call(const ir::Expr& expr,
              std::span<const double> bindings) override;
};

/// Host-FPU context with per-operation flow emission: every arithmetic
/// op (and every neg/comparison, under auxiliary tags) reports its
/// operand/result value classes to the thread's FlowMonitor stack,
/// keyed by the same (call << 20) | op tags the fault injector numbers
/// sites with. Runs the kernel under an exact-trace tape so the op
/// stream — and therefore the tag stream — is the tree walk's verbatim.
/// With no FlowMonitor live, the per-op cost is one thread-local load.
class FlowContext final : public EvalContext {
 public:
  double call(const ir::Expr& expr,
              std::span<const double> bindings) override;

 private:
  std::uint64_t call_ = 0;  // one-past, like inject::Injector
};

/// One runnable workload variant.
struct Workload {
  std::string name;
  std::string description;
  /// Conditions a correct monitor MUST report for this run.
  mon::ConditionSet expected;
  /// Conditions that must NOT appear (the difference between the healthy
  /// and broken variant).
  mon::ConditionSet forbidden;
  /// Executes the kernel at full scale under a caller-supplied context
  /// (pure compute; observation is the caller's job). Pass NativeContext
  /// to put the real FPU under a monitor, or an injecting context to
  /// attack the full-scale kernel.
  void (*run)(EvalContext& ctx);
  /// The same kernel at reduced scale, same signature, with the SAME
  /// exception contract (expected/forbidden) — sized for fault-injection
  /// campaigns that re-run it hundreds of times.
  void (*probe)(EvalContext& ctx);
};

/// The full catalogue: healthy/broken pairs across domains (ODE
/// integration, statistics, series summation, geometry).
std::span<const Workload> catalogue();

/// Runs one workload at full scale on the host FPU (NativeContext) under
/// a fresh monitor and returns what was observed.
mon::ConditionSet observe(const Workload& w);

/// Same, but through a caller-supplied context — the seam that lets a
/// fault-injecting context attack the full-scale kernel while the monitor
/// watches the real FPU.
mon::ConditionSet observe(const Workload& w, EvalContext& ctx);

/// True when the observation satisfies the workload's contract
/// (all expected conditions present, no forbidden ones).
bool contract_holds(const Workload& w, const mon::ConditionSet& observed);

/// Runs one workload at full scale on the host FPU through a FlowContext
/// under a FlowMonitor: the flow-aware observe(). The report's
/// ConditionSet equals what observe() reports; the ledger adds the
/// born/propagated/killed site breakdown.
mon::FlowReport observe_flow(const Workload& w,
                             const mon::FlowOptions& options = {});

/// Same through a caller-supplied context (pass FlowContext — or any
/// flow-emitting context — for per-site detail; a plain context still
/// yields the region ConditionSet and seam samples).
mon::FlowReport observe_flow(const Workload& w, EvalContext& ctx,
                             const mon::FlowOptions& options = {});

}  // namespace fpq::workloads
