#include "workloads/workloads.hpp"

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "ir/evaluators.hpp"
#include "ir/expr.hpp"
#include "ir/tape.hpp"

namespace fpq::workloads {

double NativeContext::call(const ir::Expr& expr,
                           std::span<const double> bindings) {
  // NativeEvaluator64 routes each operation through opaque noinline
  // helpers, so the real FPU raises exceptions under the caller's monitor
  // exactly as a hand-rolled loop would. The tape is compiled with
  // exact_trace options so every source-level operation still reaches the
  // hardware (CSE/folding would elide real FPU ops a monitor counts);
  // kernels re-evaluate the same trees thousands of times, so the
  // process-wide compile memo amortizes linearization to zero.
  ir::NativeEvaluator64 native;
  const std::shared_ptr<const ir::Tape> tape =
      ir::Tape::cached(expr, {}, ir::TapeOptions::exact_trace());
  return ir::run_tape<double>(*tape, native, bindings);
}

namespace {

/// Observation-only evaluator decorator for FlowContext: forwards every
/// operation to the inner evaluator and reports operand/result value
/// classes to the thread's FlowMonitor stack. No values change, no flags
/// are touched — classification is pure bit inspection.
class FlowEmittingEvaluator final : public ir::Evaluator<double> {
 public:
  FlowEmittingEvaluator(ir::Evaluator<double>& inner, std::uint64_t call)
      : inner_(&inner), call_(call) {}

  double constant(const ir::Expr& e) override { return inner_->constant(e); }
  double variable(const ir::Expr& e, double bound) override {
    return inner_->variable(e, bound);
  }
  double neg(const ir::Expr& e, const double& a) override {
    return emit1(inner_->neg(e, a), a, aux_next());
  }
  double add(const ir::Expr& e, const double& a, const double& b) override {
    return emit2(inner_->add(e, a, b), a, b, op_next());
  }
  double sub(const ir::Expr& e, const double& a, const double& b) override {
    return emit2(inner_->sub(e, a, b), a, b, op_next());
  }
  double mul(const ir::Expr& e, const double& a, const double& b) override {
    return emit2(inner_->mul(e, a, b), a, b, op_next());
  }
  double div(const ir::Expr& e, const double& a, const double& b) override {
    return emit2(inner_->div(e, a, b), a, b, op_next());
  }
  double sqrt(const ir::Expr& e, const double& a) override {
    return emit1(inner_->sqrt(e, a), a, op_next());
  }
  double fma(const ir::Expr& e, const double& a, const double& b,
             const double& c) override {
    const double r = inner_->fma(e, a, b, c);
    mon::FlowMonitor::on_op(op_next(), a, b, c, 3, r);
    return r;
  }
  double cmp_eq(const ir::Expr& e, const double& a,
                const double& b) override {
    return emit2(inner_->cmp_eq(e, a, b), a, b, aux_next());
  }
  double cmp_lt(const ir::Expr& e, const double& a,
                const double& b) override {
    return emit2(inner_->cmp_lt(e, a, b), a, b, aux_next());
  }

 private:
  std::uint64_t op_next() noexcept { return mon::flow_tag(call_, op_++); }
  std::uint64_t aux_next() noexcept {
    return mon::flow_tag(call_, mon::kFlowAuxBit | aux_++);
  }
  double emit1(double r, double a, std::uint64_t tag) {
    mon::FlowMonitor::on_op(tag, a, 0.0, 0.0, 1, r);
    return r;
  }
  double emit2(double r, double a, double b, std::uint64_t tag) {
    mon::FlowMonitor::on_op(tag, a, b, 0.0, 2, r);
    return r;
  }

  ir::Evaluator<double>* inner_;
  std::uint64_t call_ = 0;
  std::uint64_t op_ = 0;
  std::uint64_t aux_ = 0;
};

}  // namespace

double FlowContext::call(const ir::Expr& expr,
                         std::span<const double> bindings) {
  const std::uint64_t call_index = call_++;
  ir::NativeEvaluator64 native;
  const std::shared_ptr<const ir::Tape> tape =
      ir::Tape::cached(expr, {}, ir::TapeOptions::exact_trace());
  if (!mon::FlowMonitor::thread_active()) {
    // Unmonitored fast path: identical to NativeContext (the call
    // counter still advances so tags stay aligned if a monitor attaches
    // mid-run).
    return ir::run_tape<double>(*tape, native, bindings);
  }
  FlowEmittingEvaluator flow(native, call_index);
  return ir::run_tape<double>(*tape, flow, bindings);
}

namespace {

using E = ir::Expr;

// Every kernel takes its execution context plus the scale knobs; the
// run()/probe() entry points below only differ in context and scale.

// -- ODE integration (Lorenz) ------------------------------------------

void lorenz(EvalContext& ctx, double dt, int steps) {
  const E x = E::variable("x", 0);
  const E y = E::variable("y", 1);
  const E z = E::variable("z", 2);
  const E dx = E::mul(E::constant(10.0), E::sub(y, x));
  const E dy = E::sub(E::mul(x, E::sub(E::constant(28.0), z)), y);
  const E dz = E::sub(E::mul(x, y), E::mul(E::constant(8.0 / 3.0), z));
  const E h = E::constant(dt);
  // One tree per state component: x' = x + dt*dx(x,y,z), built once and
  // re-evaluated each step with fresh bindings.
  const E xn = E::add(x, E::mul(h, dx));
  const E yn = E::add(y, E::mul(h, dy));
  const E zn = E::add(z, E::mul(h, dz));
  double xv = 1.0, yv = 1.0, zv = 1.0;
  for (int i = 0; i < steps; ++i) {
    const double nx = ctx.call(xn, {xv, yv, zv});
    const double ny = ctx.call(yn, {xv, yv, zv});
    const double nz = ctx.call(zn, {xv, yv, zv});
    xv = nx;
    yv = ny;
    zv = nz;
  }
}

void lorenz_healthy(EvalContext& c) { lorenz(c, 0.005, 5000); }
void lorenz_broken(EvalContext& c) { lorenz(c, 1.0, 100); }  // NaN blowup
void lorenz_healthy_probe(EvalContext& c) { lorenz(c, 0.005, 40); }
void lorenz_broken_probe(EvalContext& c) { lorenz(c, 1.0, 40); }

// -- Statistics: naive variance ------------------------------------------

void variance(EvalContext& ctx, double offset, int n) {
  // Naive sum-of-squares variance; with a huge offset the subtraction
  // E[x^2] - E[x]^2 cancels catastrophically and goes NEGATIVE (at
  // offset 1e12, n=7 the value is about -2.7e8), so the final sqrt of it
  // is an invalid operation.
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] =
        ctx.call(E::add(E::constant(offset), E::constant(1e-8 * i)));
  }
  const std::span<const double> data(xs);
  const double sum = ctx.call(E::sum(data));          // left-to-right chain
  const double sum_sq = ctx.call(E::dot(data, data)); // naive sum of squares
  const E a = E::variable("a", 0);
  const E b = E::variable("b", 1);
  const double mean = ctx.call(E::div(a, b), {sum, static_cast<double>(n)});
  const double var =
      ctx.call(E::sub(E::div(a, b),
                      E::mul(E::variable("m", 2), E::variable("m", 2))),
               {sum_sq, static_cast<double>(n), mean});
  (void)ctx.call(E::sqrt(a), {var});  // sqrt(negative) when cancellation bites
}

void variance_healthy(EvalContext& c) { variance(c, 0.0, 64); }
void variance_broken(EvalContext& c) { variance(c, 1e12, 7); }
void variance_healthy_probe(EvalContext& c) { variance(c, 0.0, 16); }
void variance_broken_probe(EvalContext& c) { variance(c, 1e12, 7); }

// -- Series summation -------------------------------------------------

void geometric_series(EvalContext& ctx, int terms) {
  // sum of (1/2)^k: converges cleanly to 2, only rounding occurs; the
  // terms are deliberately stopped before the subnormal range.
  const E s = E::variable("s", 0);
  const E t = E::variable("t", 1);
  const E accumulate = E::add(s, t);
  const E halve = E::mul(t, E::constant(0.5));
  double term = 1.0, sum = 0.0;
  for (int k = 0; k < terms; ++k) {
    sum = ctx.call(accumulate, {sum, term});
    term = ctx.call(halve, {0.0, term});
  }
  (void)sum;
}

void growing_series(EvalContext& ctx, int terms) {
  // Growing series without a bound check: overflows to +inf, then the
  // "normalization" inf/inf manufactures a NaN.
  const E s = E::variable("s", 0);
  const E t = E::variable("t", 1);
  const E accumulate = E::add(s, t);
  const E grow = E::mul(t, E::constant(10.0));
  double term = 1.0, sum = 0.0;
  for (int k = 0; k < terms; ++k) {
    sum = ctx.call(accumulate, {sum, term});
    term = ctx.call(grow, {0.0, term});
  }
  (void)ctx.call(E::div(s, t), {sum, term});  // inf / inf
}

void geometric_series_healthy(EvalContext& c) { geometric_series(c, 900); }
void geometric_series_broken(EvalContext& c) { growing_series(c, 800); }
void series_healthy_probe(EvalContext& c) { geometric_series(c, 120); }
// 10^k overflows binary64 just past k = 308; 320 terms guarantees the
// overflow AND the closing inf/inf even at probe scale.
void series_broken_probe(EvalContext& c) { growing_series(c, 320); }

// -- Geometry: normalizing a vector ----------------------------------

void normalize(EvalContext& ctx, double scale) {
  // Normalize (3s, 4s): naive |v| = sqrt(x^2 + y^2) squares first, so a
  // large scale overflows the squares even though the normalized result
  // (0.6, 0.8) is perfectly representable.
  const E s = E::variable("s", 0);
  const double x = ctx.call(E::mul(E::constant(3.0), s), {scale});
  const double y = ctx.call(E::mul(E::constant(4.0), s), {scale});
  const std::array<double, 2> v{x, y};
  const double len = ctx.call(E::sqrt(E::dot(std::span<const double>(v),
                                             std::span<const double>(v))));
  const E a = E::variable("a", 0);
  const E b = E::variable("b", 1);
  (void)ctx.call(E::div(a, b), {x, len});
  (void)ctx.call(E::div(a, b), {y, len});
}

void normalize_healthy(EvalContext& c) { normalize(c, 1.0); }
void normalize_broken(EvalContext& c) { normalize(c, 1e200); }
void normalize_healthy_probe(EvalContext& c) { normalize(c, 1.0); }
void normalize_broken_probe(EvalContext& c) { normalize(c, 1e200); }

// -- Decay into the subnormal range ----------------------------------

void decay(EvalContext& ctx, int halvings) {
  // Exponential decay crossing into the subnormal range: denormal and
  // underflow traffic is EXPECTED here and is not a bug (the suspicion
  // quiz's point about Underflow/Denorm being usually benign).
  const E t = E::variable("t", 0);
  const E halve = E::mul(t, E::constant(0.5));
  double x = 1.0;
  for (int i = 0; i < halvings; ++i) x = ctx.call(halve, {x});
  (void)ctx.call(E::add(t, E::constant(1.0)), {x});
}

void decay_healthy(EvalContext& c) { decay(c, 1100); }
// The subnormal crossing needs ~1075 halvings; the probe cannot shrink
// below that without changing the contract.
void decay_healthy_probe(EvalContext& c) { decay(c, 1100); }

// -- Polynomial evaluation (Horner) -----------------------------------

void poly(EvalContext& ctx, std::span<const double> coeffs, double lo,
          double step, int n) {
  // Horner's rule as one IR tree in a free variable, swept over n points.
  const E p = E::horner(coeffs, E::variable("x", 0));
  for (int i = 0; i < n; ++i) {
    (void)ctx.call(p, {lo + step * i});
  }
}

void poly_healthy(EvalContext& ctx) {
  // Well-scaled cubic on [-1, 1]: rounding only.
  const std::array<double, 4> c{2.0, -3.0, 1.0, 5.0};
  poly(ctx, c, -1.0, 0.01, 201);
}

void poly_broken(EvalContext& ctx) {
  // Astronomically scaled coefficients: the leading term overflows at
  // moderate |x| although the polynomial's ROOTS are tame — the classic
  // un-normalized-model bug.
  const std::array<double, 3> c{1e300, 1e300, 1e300};
  poly(ctx, c, 1e4, 1e4, 10);
}

void poly_healthy_probe(EvalContext& ctx) {
  const std::array<double, 4> c{2.0, -3.0, 1.0, 5.0};
  poly(ctx, c, -1.0, 0.08, 25);
}

void poly_broken_probe(EvalContext& ctx) {
  const std::array<double, 3> c{1e300, 1e300, 1e300};
  poly(ctx, c, 1e4, 1e4, 10);
}

mon::ConditionSet set_of(std::initializer_list<mon::Condition> cs) {
  mon::ConditionSet out;
  for (auto c : cs) out.set(c);
  return out;
}

using C = mon::Condition;

const std::array<Workload, 11> kCatalogue{{
    {"lorenz/healthy",
     "Lorenz attractor, stable step size: rounding only",
     set_of({C::kPrecision}),
     set_of({C::kInvalid, C::kOverflow, C::kDivByZero}), &lorenz_healthy,
     &lorenz_healthy_probe},
    {"lorenz/broken",
     "Lorenz attractor, dt=1.0: divergence through overflow into NaN",
     set_of({C::kPrecision, C::kOverflow, C::kInvalid}), mon::ConditionSet{},
     &lorenz_broken, &lorenz_broken_probe},
    {"variance/healthy",
     "naive variance on small data: rounding only",
     set_of({C::kPrecision}), set_of({C::kInvalid, C::kOverflow}),
     &variance_healthy, &variance_healthy_probe},
    {"variance/broken",
     "naive variance with offset 1e12: cancellation drives the variance "
     "negative and sqrt of it invalid",
     set_of({C::kPrecision, C::kInvalid}), set_of({C::kOverflow}),
     &variance_broken, &variance_broken_probe},
    {"series/healthy",
     "geometric series 1/2^k within the normal range: rounding only",
     set_of({C::kPrecision}),
     set_of({C::kInvalid, C::kOverflow, C::kUnderflow}),
     &geometric_series_healthy, &series_healthy_probe},
    {"series/broken",
     "unbounded growing series: overflow, then inf/inf invalid",
     set_of({C::kPrecision, C::kOverflow, C::kInvalid}),
     mon::ConditionSet{}, &geometric_series_broken, &series_broken_probe},
    {"normalize/healthy",
     "2-vector normalization at ordinary scale",
     set_of({C::kPrecision}), set_of({C::kInvalid, C::kOverflow}),
     &normalize_healthy, &normalize_healthy_probe},
    {"normalize/broken",
     "naive normalization at scale 1e200: the squares overflow although "
     "the answer (0.6, 0.8) is representable",
     set_of({C::kPrecision, C::kOverflow}), set_of({C::kInvalid}),
     &normalize_broken, &normalize_broken_probe},
    {"decay/healthy",
     "exponential decay through the subnormal range: underflow and "
     "denormal traffic is expected and benign here",
     set_of({C::kPrecision, C::kUnderflow}),
     set_of({C::kInvalid, C::kOverflow, C::kDivByZero}), &decay_healthy,
     &decay_healthy_probe},
    {"poly/healthy",
     "well-scaled cubic via Horner's rule on [-1, 1]: rounding only",
     set_of({C::kPrecision}),
     set_of({C::kInvalid, C::kOverflow, C::kDivByZero}), &poly_healthy,
     &poly_healthy_probe},
    {"poly/broken",
     "Horner evaluation with 1e300-scaled coefficients: the leading term "
     "overflows at moderate |x|",
     set_of({C::kPrecision, C::kOverflow}),
     set_of({C::kInvalid, C::kDivByZero}), &poly_broken,
     &poly_broken_probe},
}};

}  // namespace

std::span<const Workload> catalogue() { return kCatalogue; }

mon::ConditionSet observe(const Workload& w) {
  NativeContext ctx;
  return observe(w, ctx);
}

mon::ConditionSet observe(const Workload& w, EvalContext& ctx) {
  mon::ScopedMonitor monitor;
  w.run(ctx);
  return monitor.stop();
}

mon::FlowReport observe_flow(const Workload& w,
                             const mon::FlowOptions& options) {
  FlowContext ctx;
  return observe_flow(w, ctx, options);
}

mon::FlowReport observe_flow(const Workload& w, EvalContext& ctx,
                             const mon::FlowOptions& options) {
  mon::FlowReport report;
  mon::monitor_flow([&] { w.run(ctx); }, report, options);
  return report;
}

bool contract_holds(const Workload& w, const mon::ConditionSet& observed) {
  for (std::size_t i = 0; i < mon::kConditionCount; ++i) {
    const auto c = static_cast<mon::Condition>(i);
    if (w.expected.test(c) && !observed.test(c)) return false;
    if (w.forbidden.test(c) && observed.test(c)) return false;
  }
  return true;
}

}  // namespace fpq::workloads
