#include "workloads/workloads.hpp"

#include <array>
#include <cmath>

namespace fpq::workloads {

namespace {

// All kernels route arithmetic through opaque helpers so the FPU really
// executes them under the caller's monitor.
[[gnu::noinline]] double op(double a, char o, double b) {
  volatile double va = a, vb = b;
  volatile double r = 0.0;
  switch (o) {
    case '+':
      r = va + vb;
      break;
    case '-':
      r = va - vb;
      break;
    case '*':
      r = va * vb;
      break;
    case '/':
      r = va / vb;
      break;
  }
  return r;
}

[[gnu::noinline]] double op_sqrt(double a) {
  volatile double va = a;
  volatile double r = __builtin_sqrt(va);
  return r;
}

// -- ODE integration (Lorenz) ------------------------------------------

void lorenz(double dt, int steps) {
  double x = 1.0, y = 1.0, z = 1.0;
  for (int i = 0; i < steps; ++i) {
    const double dx = op(10.0, '*', op(y, '-', x));
    const double dy = op(op(x, '*', op(28.0, '-', z)), '-', y);
    const double dz = op(op(x, '*', y), '-', op(8.0 / 3.0, '*', z));
    x = op(x, '+', op(dt, '*', dx));
    y = op(y, '+', op(dt, '*', dy));
    z = op(z, '+', op(dt, '*', dz));
  }
}

void lorenz_healthy() { lorenz(0.005, 5000); }
void lorenz_broken() { lorenz(1.0, 100); }  // unstable: blows up to NaN

// -- Statistics: naive variance ------------------------------------------

void variance(double offset, int n) {
  // Naive sum-of-squares variance; with a huge offset the subtraction
  // E[x^2] - E[x]^2 cancels catastrophically and goes NEGATIVE (at
  // offset 1e12, n=7 the value is about -2.7e8), so the final sqrt of it
  // is an invalid operation.
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = op(offset, '+', 1e-8 * i);
    sum = op(sum, '+', x);
    sum_sq = op(sum_sq, '+', op(x, '*', x));
  }
  const double mean = op(sum, '/', n);
  const double var = op(op(sum_sq, '/', n), '-', op(mean, '*', mean));
  (void)op_sqrt(var);  // stddev; sqrt(negative) when cancellation bites
}

void variance_healthy() { variance(0.0, 64); }
void variance_broken() { variance(1e12, 7); }

// -- Series summation -------------------------------------------------

void geometric_series_healthy() {
  // sum of (1/2)^k: converges cleanly to 2, only rounding occurs; the
  // terms are deliberately stopped before the subnormal range.
  double term = 1.0, sum = 0.0;
  for (int k = 0; k < 900; ++k) {
    sum = op(sum, '+', term);
    term = op(term, '*', 0.5);
  }
  (void)sum;
}

void geometric_series_broken() {
  // Growing series without a bound check: overflows to +inf, then the
  // "normalization" inf/inf manufactures a NaN.
  double term = 1.0, sum = 0.0;
  for (int k = 0; k < 800; ++k) {
    sum = op(sum, '+', term);
    term = op(term, '*', 10.0);
  }
  (void)op(sum, '/', term);  // inf / inf
}

// -- Geometry: normalizing a vector ----------------------------------

void normalize(double scale) {
  // Normalize (3s, 4s): naive |v| = sqrt(x^2 + y^2) squares first, so a
  // large scale overflows the squares even though the normalized result
  // (0.6, 0.8) is perfectly representable.
  const double x = op(3.0, '*', scale);
  const double y = op(4.0, '*', scale);
  const double len = op_sqrt(op(op(x, '*', x), '+', op(y, '*', y)));
  (void)op(x, '/', len);
  (void)op(y, '/', len);
}

void normalize_healthy() { normalize(1.0); }
void normalize_broken() { normalize(1e200); }  // x*x overflows

// -- Decay into the subnormal range ----------------------------------

void decay_healthy() {
  // Exponential decay crossing into the subnormal range: denormal and
  // underflow traffic is EXPECTED here and is not a bug (the suspicion
  // quiz's point about Underflow/Denorm being usually benign).
  double x = 1.0;
  for (int i = 0; i < 1100; ++i) x = op(x, '*', 0.5);
  (void)op(x, '+', 1.0);
}

mon::ConditionSet set_of(std::initializer_list<mon::Condition> cs) {
  mon::ConditionSet out;
  for (auto c : cs) out.set(c);
  return out;
}

using C = mon::Condition;

const std::array<Workload, 9> kCatalogue{{
    {"lorenz/healthy",
     "Lorenz attractor, stable step size: rounding only",
     set_of({C::kPrecision}),
     set_of({C::kInvalid, C::kOverflow, C::kDivByZero}), &lorenz_healthy},
    {"lorenz/broken",
     "Lorenz attractor, dt=1.0: divergence through overflow into NaN",
     set_of({C::kPrecision, C::kOverflow, C::kInvalid}), mon::ConditionSet{},
     &lorenz_broken},
    {"variance/healthy",
     "naive variance on small data: rounding only",
     set_of({C::kPrecision}), set_of({C::kInvalid, C::kOverflow}),
     &variance_healthy},
    {"variance/broken",
     "naive variance with offset 1e12: cancellation drives the variance "
     "negative and sqrt of it invalid",
     set_of({C::kPrecision, C::kInvalid}), set_of({C::kOverflow}),
     &variance_broken},
    {"series/healthy",
     "geometric series 1/2^k within the normal range: rounding only",
     set_of({C::kPrecision}),
     set_of({C::kInvalid, C::kOverflow, C::kUnderflow}),
     &geometric_series_healthy},
    {"series/broken",
     "unbounded growing series: overflow, then inf/inf invalid",
     set_of({C::kPrecision, C::kOverflow, C::kInvalid}),
     mon::ConditionSet{}, &geometric_series_broken},
    {"normalize/healthy",
     "2-vector normalization at ordinary scale",
     set_of({C::kPrecision}), set_of({C::kInvalid, C::kOverflow}),
     &normalize_healthy},
    {"normalize/broken",
     "naive normalization at scale 1e200: the squares overflow although "
     "the answer (0.6, 0.8) is representable",
     set_of({C::kPrecision, C::kOverflow}), set_of({C::kInvalid}),
     &normalize_broken},
    {"decay/healthy",
     "exponential decay through the subnormal range: underflow and "
     "denormal traffic is expected and benign here",
     set_of({C::kPrecision, C::kUnderflow}),
     set_of({C::kInvalid, C::kOverflow, C::kDivByZero}), &decay_healthy},
}};

}  // namespace

std::span<const Workload> catalogue() { return kCatalogue; }

mon::ConditionSet observe(const Workload& w) {
  mon::ScopedMonitor monitor;
  w.run();
  return monitor.stop();
}

bool contract_holds(const Workload& w, const mon::ConditionSet& observed) {
  for (std::size_t i = 0; i < mon::kConditionCount; ++i) {
    const auto c = static_cast<mon::Condition>(i);
    if (w.expected.test(c) && !observed.test(c)) return false;
    if (w.forbidden.test(c) && observed.test(c)) return false;
  }
  return true;
}

}  // namespace fpq::workloads
