// fpq::survey — suspicion quiz analysis (Figure 22).
//
// Computes, per exceptional condition, the distribution of reported Likert
// suspicion levels for a cohort, plus the summary quantities the paper
// discusses (ordering by mean suspicion; fraction below maximum for
// Invalid) and a comparison against fpmon's expert advice.
#pragma once

#include <array>
#include <span>
#include <string>

#include "parallel/thread_pool.hpp"
#include "stats/likert.hpp"
#include "survey/record.hpp"

namespace fpq::survey {

/// Distributions in SuspicionItemId (paper) order.
using SuspicionDistributions =
    std::array<stats::LikertDistribution, quiz::kSuspicionItemCount>;

SuspicionDistributions suspicion_distributions(
    std::span<const SurveyRecord> records);
SuspicionDistributions suspicion_distributions(
    std::span<const StudentRecord> records);

// Sharded overloads: per-chunk Likert counts merged in chunk order —
// integer counts, so bit-identical to the serial fold at every thread
// count.
SuspicionDistributions suspicion_distributions(
    std::span<const SurveyRecord> records, parallel::ThreadPool& pool);
SuspicionDistributions suspicion_distributions(
    std::span<const StudentRecord> records, parallel::ThreadPool& pool);

/// Summary of one cohort's suspicion behavior.
struct SuspicionSummary {
  /// Mean Likert level per condition, paper order.
  std::array<double, quiz::kSuspicionItemCount> mean_level{};
  /// Fraction reporting below-maximum suspicion for Invalid (the paper
  /// highlights this is ~1/3 — alarmingly high for NaN results).
  double invalid_below_max = 0.0;
  /// True when Invalid has the highest mean and Overflow the second
  /// highest (the "reasonable ranking" of §IV-D).
  bool expert_ordering_holds = false;
};

SuspicionSummary summarize_suspicion(const SuspicionDistributions& dists);

/// Mean absolute distance between a cohort's mean levels and fpmon's
/// advised levels — how far the cohort sits from expert advice.
double distance_from_advice(const SuspicionSummary& summary);

}  // namespace fpq::survey
