// fpq::survey — CSV import/export of survey records.
//
// Lets synthetic datasets leave the process (for R/pandas analysis) and
// come back. One row per respondent; multi-select fields are
// semicolon-joined index lists inside one CSV field; quiz answers are
// single characters (T/F/D/U); the level choice is its index (or D/U).
//
// The readers are hardened against hostile input: truncated rows,
// non-numeric fields, and enum codes outside the paperdata category
// tables all produce a structured ParseError naming the line and the
// offending column — never UB, never a partially-parsed record set.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "survey/record.hpp"

namespace fpq::survey {

/// Where and why a CSV read failed. `line` is 1-based (line 1 is the
/// header); 0 means the failure is not tied to a line (e.g. empty
/// input). `field` is the column name from the header, empty for
/// row-level failures (wrong field count, unterminated quote).
struct ParseError {
  std::size_t line = 0;
  std::string field;
  std::string message;

  /// "line 7, field 'area': index 23 out of range ..." — what the
  /// legacy bool API reports as its error string.
  std::string to_string() const;
};

/// Writes the header plus one row per record.
void write_csv(std::ostream& out, std::span<const SurveyRecord> records);

/// Streaming read: invokes `sink` with each parsed record as soon as its
/// row validates, so arbitrarily large files can feed the survey
/// accumulators without materializing a record vector. Stops at the first
/// malformed row and returns its ParseError; records already delivered
/// stay delivered (the caller owns any rollback semantics). Returns
/// nullopt when the whole stream parsed.
std::optional<ParseError> for_each_csv_record(
    std::istream& in, const std::function<void(SurveyRecord&&)>& sink);

/// Parses records written by write_csv. Returns the first parse error,
/// or nullopt on success (and only then replaces `records`). Background
/// enum codes are validated against the fpq::paperdata category tables.
/// Wrapper over for_each_csv_record.
std::optional<ParseError> read_csv(std::istream& in,
                                   std::vector<SurveyRecord>& records);

/// Legacy form: false + flattened error string on malformed input.
bool read_csv(std::istream& in, std::vector<SurveyRecord>& records,
              std::string& error);

/// The exact header line used by write_csv (useful for validation).
std::string csv_header();

/// Student-cohort variant (§III: suspicion responses only).
void write_student_csv(std::ostream& out,
                       std::span<const StudentRecord> records);
std::optional<ParseError> for_each_student_csv_record(
    std::istream& in, const std::function<void(StudentRecord&&)>& sink);
std::optional<ParseError> read_student_csv(
    std::istream& in, std::vector<StudentRecord>& records);
bool read_student_csv(std::istream& in, std::vector<StudentRecord>& records,
                      std::string& error);
std::string student_csv_header();

}  // namespace fpq::survey
