// fpq::survey — CSV import/export of survey records.
//
// Lets synthetic datasets leave the process (for R/pandas analysis) and
// come back. One row per respondent; multi-select fields are
// semicolon-joined index lists inside one CSV field; quiz answers are
// single characters (T/F/D/U); the level choice is its index (or D/U).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "survey/record.hpp"

namespace fpq::survey {

/// Writes the header plus one row per record.
void write_csv(std::ostream& out, std::span<const SurveyRecord> records);

/// Parses records written by write_csv. Returns false (and sets `error`)
/// on malformed input; on success replaces `records`.
bool read_csv(std::istream& in, std::vector<SurveyRecord>& records,
              std::string& error);

/// The exact header line used by write_csv (useful for validation).
std::string csv_header();

/// Student-cohort variant (§III: suspicion responses only).
void write_student_csv(std::ostream& out,
                       std::span<const StudentRecord> records);
bool read_student_csv(std::istream& in, std::vector<StudentRecord>& records,
                      std::string& error);
std::string student_csv_header();

}  // namespace fpq::survey
