// fpq::survey — the survey instrument's data model.
//
// A SurveyRecord is exactly what one participant produces: the background
// component (§II-A) as indices into the paperdata category tables, the two
// graded quizzes, and the suspicion Likert responses. The student cohort
// (§III) answered only the suspicion quiz.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/scoring.hpp"
#include "core/types.hpp"

namespace fpq::survey {

/// Background factors; each single-select field is an index into the
/// corresponding fpq::paperdata table (Figures 1-11), multi-selects are
/// index lists.
struct BackgroundProfile {
  std::size_t position = 0;          ///< into paperdata::positions()
  std::size_t area = 0;              ///< into paperdata::areas()
  std::size_t formal_training = 0;   ///< into paperdata::formal_training()
  std::vector<std::size_t> informal_training;  ///< into Fig 4 rows
  std::size_t dev_role = 0;          ///< into paperdata::dev_roles()
  std::vector<std::size_t> fp_languages;        ///< into Fig 6 rows
  std::vector<std::size_t> arb_prec_languages;  ///< into Fig 7 rows
  std::size_t contributed_size = 0;   ///< into Fig 8 rows
  std::size_t contributed_extent = 0; ///< into Fig 9 rows
  std::size_t involved_size = 0;      ///< into Fig 10 rows
  std::size_t involved_extent = 0;    ///< into Fig 11 rows
};

/// One main-cohort participant.
struct SurveyRecord {
  std::uint64_t respondent_id = 0;
  BackgroundProfile background;
  quiz::CoreSheet core;
  quiz::OptSheet opt;
  /// Likert 1..5 per SuspicionItemId, paper order.
  std::array<int, quiz::kSuspicionItemCount> suspicion{1, 1, 1, 1, 1};
};

/// One student-cohort participant (suspicion quiz only, §III).
struct StudentRecord {
  std::uint64_t respondent_id = 0;
  std::array<int, quiz::kSuspicionItemCount> suspicion{1, 1, 1, 1, 1};
};

// -- Collapsed factor groups used by the factor analysis (Figs 16-21) ----

/// Area groups in the order of paperdata::area_effect().
enum class AreaGroup { kEE = 0, kCE, kCS, kMath, kPhysSci, kEng, kOther };
inline constexpr std::size_t kAreaGroupCount = 7;

/// Maps a Figure 2 row index to its collapsed group (CS&Math -> CS,
/// CS&CE -> CE, Robotics/Biomedical/Mechanical -> Eng, small fields ->
/// Other), mirroring paperdata/factors.cpp.
AreaGroup area_group_of(std::size_t area_index) noexcept;

/// Ordered contributed-size bins of Figure 16 (smallest to largest);
/// returns the bin index, or npos for "<100" / "Not Reported" rows that
/// the paper's chart omits.
inline constexpr std::size_t kSizeBinCount = 5;
inline constexpr std::size_t kNoSizeBin = static_cast<std::size_t>(-1);
std::size_t contributed_size_bin(std::size_t fig8_row) noexcept;

/// Role rows of Figures 18/21 (same order as paperdata::role_effect());
/// returns npos for "Not Reported".
inline constexpr std::size_t kRoleCount = 4;
inline constexpr std::size_t kNoRole = static_cast<std::size_t>(-1);
std::size_t role_index(std::size_t fig5_row) noexcept;

/// Training rows of Figure 19 in increasing-training order (None,
/// Lectures, Weeks, Courses); npos for "Not reported".
inline constexpr std::size_t kTrainingCount = 4;
inline constexpr std::size_t kNoTraining = static_cast<std::size_t>(-1);
std::size_t training_index(std::size_t fig3_row) noexcept;

}  // namespace fpq::survey
