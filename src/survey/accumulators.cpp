#include "survey/accumulators.hpp"

#include <stdexcept>
#include <utility>

namespace fpq::survey {

namespace {

// Outcome slot for a grade: correct / incorrect / dont_know / unanswered.
std::size_t grade_slot(quiz::Grade g) noexcept {
  switch (g) {
    case quiz::Grade::kCorrect:
      return 0;
    case quiz::Grade::kIncorrect:
      return 1;
    case quiz::Grade::kDontKnow:
      return 2;
    case quiz::Grade::kUnanswered:
      return 3;
  }
  return 3;
}

void add_tally(std::array<std::size_t, 4>& slots,
               const quiz::QuizTally& t) noexcept {
  slots[0] += t.correct;
  slots[1] += t.incorrect;
  slots[2] += t.dont_know;
  slots[3] += t.unanswered;
}

AverageTally divide_tally(const std::array<std::size_t, 4>& slots,
                          std::size_t n) noexcept {
  AverageTally avg;
  if (n == 0) return avg;
  const auto dn = static_cast<double>(n);
  avg.correct = static_cast<double>(slots[0]) / dn;
  avg.incorrect = static_cast<double>(slots[1]) / dn;
  avg.dont_know = static_cast<double>(slots[2]) / dn;
  avg.unanswered = static_cast<double>(slots[3]) / dn;
  return avg;
}

std::vector<std::string> labels_from(
    std::span<const fpq::paperdata::FactorLevelTarget> targets) {
  std::vector<std::string> out;
  out.reserve(targets.size());
  for (const auto& t : targets) out.emplace_back(t.label);
  return out;
}

[[noreturn]] void throw_mismatch(const char* who) {
  throw std::invalid_argument(std::string(who) +
                              ": configuration mismatch");
}

}  // namespace

// -- FrequencyAccumulator -------------------------------------------------

FrequencyAccumulator::FrequencyAccumulator(
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector)
    : categories_(categories),
      selector_(selector),
      counts_(categories.size(), 0) {}

void FrequencyAccumulator::add(const SurveyRecord& record) noexcept {
  const std::size_t idx = selector_(record);
  if (idx < counts_.size()) ++counts_[idx];
  ++total_;
}

void FrequencyAccumulator::merge(FrequencyAccumulator&& other) {
  if (categories_.data() != other.categories_.data() ||
      categories_.size() != other.categories_.size() ||
      selector_ != other.selector_) {
    throw_mismatch("FrequencyAccumulator::merge");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::vector<TableRow> FrequencyAccumulator::finish() const {
  std::vector<TableRow> rows(categories_.size());
  const auto total = static_cast<double>(total_);
  for (std::size_t i = 0; i < categories_.size(); ++i) {
    rows[i].label = std::string(categories_[i].label);
    rows[i].n = counts_[i];
    rows[i].percent =
        total > 0 ? 100.0 * static_cast<double>(counts_[i]) / total : 0.0;
  }
  return rows;
}

// -- MultiSelectAccumulator -----------------------------------------------

MultiSelectAccumulator::MultiSelectAccumulator(
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector)
    : categories_(categories),
      selector_(selector),
      counts_(categories.size(), 0) {}

void MultiSelectAccumulator::add(const SurveyRecord& record) noexcept {
  for (std::size_t idx : selector_(record)) {
    if (idx < counts_.size()) ++counts_[idx];
  }
  ++total_;
}

void MultiSelectAccumulator::merge(MultiSelectAccumulator&& other) {
  if (categories_.data() != other.categories_.data() ||
      categories_.size() != other.categories_.size() ||
      selector_ != other.selector_) {
    throw_mismatch("MultiSelectAccumulator::merge");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::vector<TableRow> MultiSelectAccumulator::finish() const {
  std::vector<TableRow> rows(categories_.size());
  const auto total = static_cast<double>(total_);
  for (std::size_t i = 0; i < categories_.size(); ++i) {
    rows[i].label = std::string(categories_[i].label);
    rows[i].n = counts_[i];
    rows[i].percent =
        total > 0 ? 100.0 * static_cast<double>(counts_[i]) / total : 0.0;
  }
  return rows;
}

// -- AverageTallyAccumulator ----------------------------------------------

AverageTallyAccumulator AverageTallyAccumulator::core(
    const CoreKey& key) noexcept {
  AverageTallyAccumulator acc;
  acc.kind_ = Kind::kCore;
  acc.core_key_ = key;
  return acc;
}

AverageTallyAccumulator AverageTallyAccumulator::opt_tf(
    const OptKey& key) noexcept {
  AverageTallyAccumulator acc;
  acc.kind_ = Kind::kOptTf;
  acc.opt_key_ = key;
  return acc;
}

void AverageTallyAccumulator::add(const SurveyRecord& record) noexcept {
  add_tally(counts_, kind_ == Kind::kCore
                         ? quiz::score_core(record.core, core_key_)
                         : quiz::score_opt_tf(record.opt, opt_key_));
  ++n_;
}

void AverageTallyAccumulator::merge(AverageTallyAccumulator&& other) {
  if (kind_ != other.kind_ || core_key_ != other.core_key_ ||
      opt_key_ != other.opt_key_) {
    throw_mismatch("AverageTallyAccumulator::merge");
  }
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    counts_[k] += other.counts_[k];
  }
  n_ += other.n_;
}

AverageTally AverageTallyAccumulator::finish() const noexcept {
  return divide_tally(counts_, n_);
}

// -- ScoreHistogramAccumulator --------------------------------------------

ScoreHistogramAccumulator::ScoreHistogramAccumulator(
    const CoreKey& key) noexcept
    : key_(key), hist_(0, static_cast<int>(quiz::kCoreQuestionCount)) {}

void ScoreHistogramAccumulator::add(const SurveyRecord& record) noexcept {
  hist_.add(static_cast<int>(quiz::score_core(record.core, key_).correct));
}

void ScoreHistogramAccumulator::merge(ScoreHistogramAccumulator&& other) {
  if (key_ != other.key_) throw_mismatch("ScoreHistogramAccumulator::merge");
  hist_.merge(other.hist_);
}

// -- BreakdownAccumulator -------------------------------------------------

BreakdownAccumulator BreakdownAccumulator::core(const CoreKey& key) {
  BreakdownAccumulator acc;
  acc.kind_ = Kind::kCore;
  acc.core_key_ = key;
  acc.questions_.resize(quiz::kCoreQuestionCount);
  return acc;
}

BreakdownAccumulator BreakdownAccumulator::opt(const OptKey& key) {
  BreakdownAccumulator acc;
  acc.kind_ = Kind::kOpt;
  acc.opt_key_ = key;
  acc.questions_.resize(quiz::kOptQuestionCount);
  return acc;
}

void BreakdownAccumulator::add(const SurveyRecord& record) noexcept {
  if (kind_ == Kind::kCore) {
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      ++questions_[q].g[grade_slot(
          quiz::grade_answer(record.core.answers[q], core_key_[q]))];
    }
  } else {
    // Paper row order: MADD, Flush to Zero, Standard-compliant Level,
    // Fast-math; the T/F sheet holds [MADD, FlushToZero, FastMath].
    ++questions_[0].g[grade_slot(
        quiz::grade_answer(record.opt.tf_answers[0], opt_key_[0]))];
    ++questions_[1].g[grade_slot(
        quiz::grade_answer(record.opt.tf_answers[1], opt_key_[1]))];
    ++questions_[2].g[grade_slot(
        quiz::grade_level_choice(record.opt.level_choice))];
    ++questions_[3].g[grade_slot(
        quiz::grade_answer(record.opt.tf_answers[2], opt_key_[2]))];
  }
  ++n_;
}

void BreakdownAccumulator::merge(BreakdownAccumulator&& other) {
  if (kind_ != other.kind_ || core_key_ != other.core_key_ ||
      opt_key_ != other.opt_key_ ||
      questions_.size() != other.questions_.size()) {
    throw_mismatch("BreakdownAccumulator::merge");
  }
  for (std::size_t q = 0; q < questions_.size(); ++q) {
    for (std::size_t k = 0; k < 4; ++k) {
      questions_[q].g[k] += other.questions_[q].g[k];
    }
  }
  n_ += other.n_;
}

std::vector<BreakdownRow> BreakdownAccumulator::finish() const {
  std::vector<BreakdownRow> rows(questions_.size());
  for (std::size_t q = 0; q < rows.size(); ++q) {
    rows[q].label =
        kind_ == Kind::kCore
            ? quiz::core_question_label(static_cast<quiz::CoreQuestionId>(q))
            : quiz::opt_question_label(static_cast<quiz::OptQuestionId>(q));
  }
  if (n_ == 0) return rows;
  const auto scale = 100.0 / static_cast<double>(n_);
  for (std::size_t q = 0; q < rows.size(); ++q) {
    rows[q].pct_correct = static_cast<double>(questions_[q].g[0]) * scale;
    rows[q].pct_incorrect = static_cast<double>(questions_[q].g[1]) * scale;
    rows[q].pct_dont_know = static_cast<double>(questions_[q].g[2]) * scale;
    rows[q].pct_unanswered = static_cast<double>(questions_[q].g[3]) * scale;
  }
  return rows;
}

// -- FactorLevelAccumulator -----------------------------------------------

FactorLevelAccumulator::FactorLevelAccumulator(std::vector<std::string> labels,
                                               BucketFn bucket,
                                               const CoreKey& core_key,
                                               const OptKey& opt_key)
    : labels_(std::move(labels)),
      bucket_(bucket),
      core_key_(core_key),
      opt_key_(opt_key),
      levels_(labels_.size()) {}

FactorLevelAccumulator FactorLevelAccumulator::by_contributed_size(
    const CoreKey& core_key, const OptKey& opt_key) {
  return FactorLevelAccumulator(
      labels_from(fpq::paperdata::contributed_size_effect()),
      [](const SurveyRecord& r) {
        return contributed_size_bin(r.background.contributed_size);
      },
      core_key, opt_key);
}

FactorLevelAccumulator FactorLevelAccumulator::by_area_group(
    const CoreKey& core_key, const OptKey& opt_key) {
  return FactorLevelAccumulator(
      labels_from(fpq::paperdata::area_effect()),
      [](const SurveyRecord& r) {
        return static_cast<std::size_t>(area_group_of(r.background.area));
      },
      core_key, opt_key);
}

FactorLevelAccumulator FactorLevelAccumulator::by_role(const CoreKey& core_key,
                                                       const OptKey& opt_key) {
  return FactorLevelAccumulator(
      labels_from(fpq::paperdata::role_effect()),
      [](const SurveyRecord& r) { return role_index(r.background.dev_role); },
      core_key, opt_key);
}

FactorLevelAccumulator FactorLevelAccumulator::by_formal_training(
    const CoreKey& core_key, const OptKey& opt_key) {
  return FactorLevelAccumulator(
      labels_from(fpq::paperdata::training_effect()),
      [](const SurveyRecord& r) {
        return training_index(r.background.formal_training);
      },
      core_key, opt_key);
}

void FactorLevelAccumulator::add(const SurveyRecord& record) noexcept {
  const std::size_t bucket = bucket_(record);
  if (bucket >= levels_.size()) return;
  LevelPartial& level = levels_[bucket];
  ++level.n;
  add_tally(level.core, quiz::score_core(record.core, core_key_));
  add_tally(level.opt, quiz::score_opt_tf(record.opt, opt_key_));
}

void FactorLevelAccumulator::merge(FactorLevelAccumulator&& other) {
  if (bucket_ != other.bucket_ || labels_ != other.labels_ ||
      core_key_ != other.core_key_ || opt_key_ != other.opt_key_) {
    throw_mismatch("FactorLevelAccumulator::merge");
  }
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    levels_[level].n += other.levels_[level].n;
    for (std::size_t k = 0; k < 4; ++k) {
      levels_[level].core[k] += other.levels_[level].core[k];
      levels_[level].opt[k] += other.levels_[level].opt[k];
    }
  }
}

std::vector<FactorLevelResult> FactorLevelAccumulator::finish() const {
  std::vector<FactorLevelResult> out(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    out[i].label = labels_[i];
    out[i].n = levels_[i].n;
    out[i].core = divide_tally(levels_[i].core, levels_[i].n);
    out[i].opt = divide_tally(levels_[i].opt, levels_[i].n);
  }
  return out;
}

// -- SuspicionAccumulator -------------------------------------------------

void SuspicionAccumulator::add_levels(
    const std::array<int, quiz::kSuspicionItemCount>& levels) noexcept {
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    acc_[c].add(levels[c]);
  }
  ++n_;
}

void SuspicionAccumulator::merge(SuspicionAccumulator&& other) noexcept {
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    acc_[c].merge(other.acc_[c]);
  }
  n_ += other.n_;
}

SuspicionDistributions SuspicionAccumulator::finish() const {
  SuspicionDistributions out;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    if (acc_[c].total() > 0) out[c] = acc_[c].distribution();
  }
  return out;
}

}  // namespace fpq::survey
