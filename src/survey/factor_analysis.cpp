#include "survey/factor_analysis.hpp"

#include <algorithm>
#include <functional>

#include "paperdata/paperdata.hpp"

namespace fpq::survey {

namespace {

// Generic conditioning: `bucket_of` maps a record to a level index (or
// npos to skip); labels supplied by the caller.
std::vector<FactorLevelResult> condition_on(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, std::span<const std::string> labels,
    const std::function<std::size_t(const SurveyRecord&)>& bucket_of) {
  std::vector<FactorLevelResult> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i].label = labels[i];

  for (const auto& record : records) {
    const std::size_t bucket = bucket_of(record);
    if (bucket >= out.size()) continue;
    FactorLevelResult& level = out[bucket];
    ++level.n;
    const auto core = quiz::score_core(record.core, core_key);
    level.core.correct += static_cast<double>(core.correct);
    level.core.incorrect += static_cast<double>(core.incorrect);
    level.core.dont_know += static_cast<double>(core.dont_know);
    level.core.unanswered += static_cast<double>(core.unanswered);
    const auto opt = quiz::score_opt_tf(record.opt, opt_key);
    level.opt.correct += static_cast<double>(opt.correct);
    level.opt.incorrect += static_cast<double>(opt.incorrect);
    level.opt.dont_know += static_cast<double>(opt.dont_know);
    level.opt.unanswered += static_cast<double>(opt.unanswered);
  }
  for (auto& level : out) {
    if (level.n == 0) continue;
    const auto n = static_cast<double>(level.n);
    level.core.correct /= n;
    level.core.incorrect /= n;
    level.core.dont_know /= n;
    level.core.unanswered /= n;
    level.opt.correct /= n;
    level.opt.incorrect /= n;
    level.opt.dont_know /= n;
    level.opt.unanswered /= n;
  }
  return out;
}

std::vector<std::string> labels_from(
    std::span<const fpq::paperdata::FactorLevelTarget> targets) {
  std::vector<std::string> out;
  out.reserve(targets.size());
  for (const auto& t : targets) out.emplace_back(t.label);
  return out;
}

}  // namespace

std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::contributed_size_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return contributed_size_bin(
                            r.background.contributed_size);
                      });
}

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::area_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return static_cast<std::size_t>(
                            area_group_of(r.background.area));
                      });
}

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::role_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return role_index(r.background.dev_role);
                      });
}

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::training_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return training_index(r.background.formal_training);
                      });
}

double core_correct_spread(std::span<const FactorLevelResult> levels) {
  double lo = 1e9, hi = -1e9;
  for (const auto& level : levels) {
    if (level.n == 0) continue;
    lo = std::min(lo, level.core.correct);
    hi = std::max(hi, level.core.correct);
  }
  return hi >= lo ? hi - lo : 0.0;
}

}  // namespace fpq::survey
