// Thin wrappers over FactorLevelAccumulator (accumulators.hpp); the serial
// and pooled overloads share one tally implementation and differ only in
// whether the records are folded inline or streamed through
// parallel::accumulate_span.
#include "survey/factor_analysis.hpp"

#include <algorithm>

#include "parallel/stream.hpp"
#include "survey/accumulators.hpp"

namespace fpq::survey {

namespace {

std::vector<FactorLevelResult> run_serial(
    std::span<const SurveyRecord> records, FactorLevelAccumulator acc) {
  for (const auto& record : records) acc.add(record);
  return acc.finish();
}

template <typename MakeAcc>
std::vector<FactorLevelResult> run_pooled(
    std::span<const SurveyRecord> records, parallel::ThreadPool& pool,
    const MakeAcc& make_acc) {
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  return parallel::accumulate_span(pool, records, chunks, make_acc).finish();
}

}  // namespace

std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  return run_serial(
      records, FactorLevelAccumulator::by_contributed_size(core_key, opt_key));
}

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  return run_serial(records,
                    FactorLevelAccumulator::by_area_group(core_key, opt_key));
}

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key) {
  return run_serial(records,
                    FactorLevelAccumulator::by_role(core_key, opt_key));
}

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  return run_serial(
      records, FactorLevelAccumulator::by_formal_training(core_key, opt_key));
}

std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  return run_pooled(records, pool, [&] {
    return FactorLevelAccumulator::by_contributed_size(core_key, opt_key);
  });
}

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  return run_pooled(records, pool, [&] {
    return FactorLevelAccumulator::by_area_group(core_key, opt_key);
  });
}

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key,
                                       parallel::ThreadPool& pool) {
  return run_pooled(records, pool, [&] {
    return FactorLevelAccumulator::by_role(core_key, opt_key);
  });
}

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  return run_pooled(records, pool, [&] {
    return FactorLevelAccumulator::by_formal_training(core_key, opt_key);
  });
}

double core_correct_spread(std::span<const FactorLevelResult> levels) {
  double lo = 1e9, hi = -1e9;
  for (const auto& level : levels) {
    if (level.n == 0) continue;
    lo = std::min(lo, level.core.correct);
    hi = std::max(hi, level.core.correct);
  }
  return hi >= lo ? hi - lo : 0.0;
}

}  // namespace fpq::survey
