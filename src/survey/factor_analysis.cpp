#include "survey/factor_analysis.hpp"

#include <algorithm>
#include <functional>

#include "paperdata/paperdata.hpp"
#include "parallel/shard.hpp"

namespace fpq::survey {

namespace {

// Generic conditioning: `bucket_of` maps a record to a level index (or
// npos to skip); labels supplied by the caller.
std::vector<FactorLevelResult> condition_on(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, std::span<const std::string> labels,
    const std::function<std::size_t(const SurveyRecord&)>& bucket_of) {
  std::vector<FactorLevelResult> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i].label = labels[i];

  for (const auto& record : records) {
    const std::size_t bucket = bucket_of(record);
    if (bucket >= out.size()) continue;
    FactorLevelResult& level = out[bucket];
    ++level.n;
    const auto core = quiz::score_core(record.core, core_key);
    level.core.correct += static_cast<double>(core.correct);
    level.core.incorrect += static_cast<double>(core.incorrect);
    level.core.dont_know += static_cast<double>(core.dont_know);
    level.core.unanswered += static_cast<double>(core.unanswered);
    const auto opt = quiz::score_opt_tf(record.opt, opt_key);
    level.opt.correct += static_cast<double>(opt.correct);
    level.opt.incorrect += static_cast<double>(opt.incorrect);
    level.opt.dont_know += static_cast<double>(opt.dont_know);
    level.opt.unanswered += static_cast<double>(opt.unanswered);
  }
  for (auto& level : out) {
    if (level.n == 0) continue;
    const auto n = static_cast<double>(level.n);
    level.core.correct /= n;
    level.core.incorrect /= n;
    level.core.dont_know /= n;
    level.core.unanswered /= n;
    level.opt.correct /= n;
    level.opt.incorrect /= n;
    level.opt.dont_know /= n;
    level.opt.unanswered /= n;
  }
  return out;
}

// Sharded condition_on: each chunk accumulates integer partial tallies per
// level, combined in chunk order so the result matches the serial loop bit
// for bit (the per-record counts are small integers, exact in binary64).
struct LevelPartial {
  std::size_t n = 0;
  std::size_t core[4] = {0, 0, 0, 0};  // correct/incorrect/dk/unanswered
  std::size_t opt[4] = {0, 0, 0, 0};
};

std::vector<FactorLevelResult> condition_on_parallel(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, std::span<const std::string> labels,
    const std::function<std::size_t(const SurveyRecord&)>& bucket_of,
    parallel::ThreadPool& pool) {
  std::vector<FactorLevelResult> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i].label = labels[i];
  if (records.empty()) return out;

  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  std::vector<std::vector<LevelPartial>> partials(
      chunks, std::vector<LevelPartial>(labels.size()));
  parallel::parallel_map_chunks(
      pool, records.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t bucket = bucket_of(records[i]);
          if (bucket >= labels.size()) continue;
          LevelPartial& p = partials[chunk][bucket];
          ++p.n;
          const auto core = quiz::score_core(records[i].core, core_key);
          p.core[0] += core.correct;
          p.core[1] += core.incorrect;
          p.core[2] += core.dont_know;
          p.core[3] += core.unanswered;
          const auto opt = quiz::score_opt_tf(records[i].opt, opt_key);
          p.opt[0] += opt.correct;
          p.opt[1] += opt.incorrect;
          p.opt[2] += opt.dont_know;
          p.opt[3] += opt.unanswered;
        }
      });

  for (std::size_t level = 0; level < out.size(); ++level) {
    LevelPartial total;
    for (const auto& chunk : partials) {
      const LevelPartial& p = chunk[level];
      total.n += p.n;
      for (int k = 0; k < 4; ++k) {
        total.core[k] += p.core[k];
        total.opt[k] += p.opt[k];
      }
    }
    out[level].n = total.n;
    if (total.n == 0) continue;
    const auto n = static_cast<double>(total.n);
    out[level].core.correct = static_cast<double>(total.core[0]) / n;
    out[level].core.incorrect = static_cast<double>(total.core[1]) / n;
    out[level].core.dont_know = static_cast<double>(total.core[2]) / n;
    out[level].core.unanswered = static_cast<double>(total.core[3]) / n;
    out[level].opt.correct = static_cast<double>(total.opt[0]) / n;
    out[level].opt.incorrect = static_cast<double>(total.opt[1]) / n;
    out[level].opt.dont_know = static_cast<double>(total.opt[2]) / n;
    out[level].opt.unanswered = static_cast<double>(total.opt[3]) / n;
  }
  return out;
}

std::vector<std::string> labels_from(
    std::span<const fpq::paperdata::FactorLevelTarget> targets) {
  std::vector<std::string> out;
  out.reserve(targets.size());
  for (const auto& t : targets) out.emplace_back(t.label);
  return out;
}

}  // namespace

std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::contributed_size_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return contributed_size_bin(
                            r.background.contributed_size);
                      });
}

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::area_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return static_cast<std::size_t>(
                            area_group_of(r.background.area));
                      });
}

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::role_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return role_index(r.background.dev_role);
                      });
}

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key) {
  const auto labels = labels_from(fpq::paperdata::training_effect());
  return condition_on(records, core_key, opt_key, labels,
                      [](const SurveyRecord& r) {
                        return training_index(r.background.formal_training);
                      });
}

std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  const auto labels = labels_from(fpq::paperdata::contributed_size_effect());
  return condition_on_parallel(records, core_key, opt_key, labels,
                               [](const SurveyRecord& r) {
                                 return contributed_size_bin(
                                     r.background.contributed_size);
                               },
                               pool);
}

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  const auto labels = labels_from(fpq::paperdata::area_effect());
  return condition_on_parallel(records, core_key, opt_key, labels,
                               [](const SurveyRecord& r) {
                                 return static_cast<std::size_t>(
                                     area_group_of(r.background.area));
                               },
                               pool);
}

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key,
                                       parallel::ThreadPool& pool) {
  const auto labels = labels_from(fpq::paperdata::role_effect());
  return condition_on_parallel(records, core_key, opt_key, labels,
                               [](const SurveyRecord& r) {
                                 return role_index(r.background.dev_role);
                               },
                               pool);
}

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool) {
  const auto labels = labels_from(fpq::paperdata::training_effect());
  return condition_on_parallel(records, core_key, opt_key, labels,
                               [](const SurveyRecord& r) {
                                 return training_index(
                                     r.background.formal_training);
                               },
                               pool);
}

double core_correct_spread(std::span<const FactorLevelResult> levels) {
  double lo = 1e9, hi = -1e9;
  for (const auto& level : levels) {
    if (level.n == 0) continue;
    lo = std::min(lo, level.core.correct);
    hi = std::max(hi, level.core.correct);
  }
  return hi >= lo ? hi - lo : 0.0;
}

}  // namespace fpq::survey
