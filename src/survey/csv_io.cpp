#include "survey/csv_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>

#include "report/csv.hpp"

namespace fpq::survey {

namespace {

constexpr char kAnswerChars[] = {'T', 'F', 'D', 'U'};

char answer_to_char(quiz::Answer a) {
  return kAnswerChars[static_cast<std::size_t>(a)];
}

bool char_to_answer(char c, quiz::Answer& out) {
  switch (c) {
    case 'T':
      out = quiz::Answer::kTrue;
      return true;
    case 'F':
      out = quiz::Answer::kFalse;
      return true;
    case 'D':
      out = quiz::Answer::kDontKnow;
      return true;
    case 'U':
      out = quiz::Answer::kUnanswered;
      return true;
    default:
      return false;
  }
}

std::string join_indices(const std::vector<std::size_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ';';
    out += std::to_string(xs[i]);
  }
  return out;
}

bool parse_size(const std::string& s, std::size_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_indices(const std::string& s, std::vector<std::size_t>& out) {
  out.clear();
  if (s.empty()) return true;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t sep = s.find(';', start);
    const std::string part =
        s.substr(start, sep == std::string::npos ? sep : sep - start);
    std::size_t value = 0;
    if (!parse_size(part, value)) return false;
    out.push_back(value);
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return true;
}

std::string level_to_string(std::size_t level) {
  if (level == quiz::kOptLevelDontKnow) return "D";
  if (level >= quiz::kOptLevelChoiceCount) return "U";
  return std::to_string(level);
}

bool string_to_level(const std::string& s, std::size_t& out) {
  if (s == "D") {
    out = quiz::kOptLevelDontKnow;
    return true;
  }
  if (s == "U") {
    out = quiz::kOptLevelUnanswered;
    return true;
  }
  return parse_size(s, out) && out < quiz::kOptLevelChoiceCount;
}

}  // namespace

std::string csv_header() {
  std::string out =
      "id,position,area,formal_training,informal_training,dev_role,"
      "fp_languages,arb_prec_languages,contributed_size,contributed_extent,"
      "involved_size,involved_extent";
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    out += ",core_q" + std::to_string(q + 1);
  }
  out += ",opt_madd,opt_ftz,opt_fastmath,opt_level";
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    out += ",suspicion_" + std::to_string(c + 1);
  }
  return out;
}

void write_csv(std::ostream& out, std::span<const SurveyRecord> records) {
  out << csv_header() << '\n';
  fpq::report::CsvWriter writer(out);
  for (const auto& r : records) {
    std::vector<std::string> fields;
    fields.push_back(std::to_string(r.respondent_id));
    fields.push_back(std::to_string(r.background.position));
    fields.push_back(std::to_string(r.background.area));
    fields.push_back(std::to_string(r.background.formal_training));
    fields.push_back(join_indices(r.background.informal_training));
    fields.push_back(std::to_string(r.background.dev_role));
    fields.push_back(join_indices(r.background.fp_languages));
    fields.push_back(join_indices(r.background.arb_prec_languages));
    fields.push_back(std::to_string(r.background.contributed_size));
    fields.push_back(std::to_string(r.background.contributed_extent));
    fields.push_back(std::to_string(r.background.involved_size));
    fields.push_back(std::to_string(r.background.involved_extent));
    for (quiz::Answer a : r.core.answers) {
      fields.push_back(std::string(1, answer_to_char(a)));
    }
    for (quiz::Answer a : r.opt.tf_answers) {
      fields.push_back(std::string(1, answer_to_char(a)));
    }
    fields.push_back(level_to_string(r.opt.level_choice));
    for (int level : r.suspicion) fields.push_back(std::to_string(level));
    writer.write_row(fields);
  }
}

bool read_csv(std::istream& in, std::vector<SurveyRecord>& records,
              std::string& error) {
  std::string line;
  if (!std::getline(in, line)) {
    error = "empty input";
    return false;
  }
  if (line != csv_header()) {
    error = "unexpected header";
    return false;
  }
  const std::size_t expected_fields =
      12 + quiz::kCoreQuestionCount + quiz::kOptTrueFalseCount + 1 +
      quiz::kSuspicionItemCount;

  std::vector<SurveyRecord> parsed;
  std::vector<std::string> fields;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!fpq::report::csv_split(line, fields) ||
        fields.size() != expected_fields) {
      error = "malformed row at line " + std::to_string(line_no);
      return false;
    }
    SurveyRecord r;
    std::size_t f = 0;
    std::size_t id = 0;
    bool ok = parse_size(fields[f++], id);
    r.respondent_id = id;
    ok = ok && parse_size(fields[f++], r.background.position);
    ok = ok && parse_size(fields[f++], r.background.area);
    ok = ok && parse_size(fields[f++], r.background.formal_training);
    ok = ok && parse_indices(fields[f++], r.background.informal_training);
    ok = ok && parse_size(fields[f++], r.background.dev_role);
    ok = ok && parse_indices(fields[f++], r.background.fp_languages);
    ok = ok && parse_indices(fields[f++], r.background.arb_prec_languages);
    ok = ok && parse_size(fields[f++], r.background.contributed_size);
    ok = ok && parse_size(fields[f++], r.background.contributed_extent);
    ok = ok && parse_size(fields[f++], r.background.involved_size);
    ok = ok && parse_size(fields[f++], r.background.involved_extent);
    for (std::size_t q = 0; ok && q < quiz::kCoreQuestionCount; ++q) {
      ok = fields[f].size() == 1 &&
           char_to_answer(fields[f][0], r.core.answers[q]);
      ++f;
    }
    for (std::size_t q = 0; ok && q < quiz::kOptTrueFalseCount; ++q) {
      ok = fields[f].size() == 1 &&
           char_to_answer(fields[f][0], r.opt.tf_answers[q]);
      ++f;
    }
    ok = ok && string_to_level(fields[f++], r.opt.level_choice);
    for (std::size_t c = 0; ok && c < quiz::kSuspicionItemCount; ++c) {
      std::size_t level = 0;
      ok = parse_size(fields[f++], level) && level >= 1 && level <= 5;
      if (ok) r.suspicion[c] = static_cast<int>(level);
    }
    if (!ok) {
      error = "invalid field at line " + std::to_string(line_no);
      return false;
    }
    parsed.push_back(std::move(r));
  }
  records = std::move(parsed);
  return true;
}

std::string student_csv_header() {
  std::string out = "id";
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    out += ",suspicion_" + std::to_string(c + 1);
  }
  return out;
}

void write_student_csv(std::ostream& out,
                       std::span<const StudentRecord> records) {
  out << student_csv_header() << '\n';
  fpq::report::CsvWriter writer(out);
  for (const auto& r : records) {
    std::vector<std::string> fields;
    fields.push_back(std::to_string(r.respondent_id));
    for (int level : r.suspicion) fields.push_back(std::to_string(level));
    writer.write_row(fields);
  }
}

bool read_student_csv(std::istream& in, std::vector<StudentRecord>& records,
                      std::string& error) {
  std::string line;
  if (!std::getline(in, line)) {
    error = "empty input";
    return false;
  }
  if (line != student_csv_header()) {
    error = "unexpected header";
    return false;
  }
  std::vector<StudentRecord> parsed;
  std::vector<std::string> fields;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!fpq::report::csv_split(line, fields) ||
        fields.size() != 1 + quiz::kSuspicionItemCount) {
      error = "malformed row at line " + std::to_string(line_no);
      return false;
    }
    StudentRecord r;
    std::size_t id = 0;
    bool ok = parse_size(fields[0], id);
    r.respondent_id = id;
    for (std::size_t c = 0; ok && c < quiz::kSuspicionItemCount; ++c) {
      std::size_t level = 0;
      ok = parse_size(fields[1 + c], level) && level >= 1 && level <= 5;
      if (ok) r.suspicion[c] = static_cast<int>(level);
    }
    if (!ok) {
      error = "invalid field at line " + std::to_string(line_no);
      return false;
    }
    parsed.push_back(r);
  }
  records = std::move(parsed);
  return true;
}

}  // namespace fpq::survey
