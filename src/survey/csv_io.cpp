#include "survey/csv_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <utility>

#include "paperdata/paperdata.hpp"
#include "report/csv.hpp"

namespace fpq::survey {

namespace {

constexpr char kAnswerChars[] = {'T', 'F', 'D', 'U'};

char answer_to_char(quiz::Answer a) {
  return kAnswerChars[static_cast<std::size_t>(a)];
}

bool char_to_answer(char c, quiz::Answer& out) {
  switch (c) {
    case 'T':
      out = quiz::Answer::kTrue;
      return true;
    case 'F':
      out = quiz::Answer::kFalse;
      return true;
    case 'D':
      out = quiz::Answer::kDontKnow;
      return true;
    case 'U':
      out = quiz::Answer::kUnanswered;
      return true;
    default:
      return false;
  }
}

std::string join_indices(const std::vector<std::size_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ';';
    out += std::to_string(xs[i]);
  }
  return out;
}

bool parse_size(const std::string& s, std::size_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::string level_to_string(std::size_t level) {
  if (level == quiz::kOptLevelDontKnow) return "D";
  if (level >= quiz::kOptLevelChoiceCount) return "U";
  return std::to_string(level);
}

/// Column names of csv_header(), split out once so parse errors can name
/// the offending column without hand-maintaining a second list.
std::vector<std::string> split_names(const std::string& header) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= header.size()) {
    const std::size_t sep = header.find(',', start);
    names.push_back(header.substr(
        start, sep == std::string::npos ? sep : sep - start));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return names;
}

/// Accumulates the first error for one row; every parse_* helper is a
/// no-op once an error is set, so the happy path reads straight through.
class RowParser {
 public:
  RowParser(const std::vector<std::string>& fields,
            const std::vector<std::string>& names, std::size_t line)
      : fields_(fields), names_(names), line_(line) {}

  bool failed() const { return error_.has_value(); }
  ParseError take_error() { return std::move(*error_); }

  void parse_count(const char* what, std::size_t& out) {
    if (error_) {
      ++next_;
      return;
    }
    if (!parse_size(fields_[next_], out)) {
      fail("not a " + std::string(what) + ": '" + fields_[next_] + "'");
      return;
    }
    ++next_;
  }

  void parse_enum(std::span<const paperdata::CategoryCount> table,
                  const char* table_name, std::size_t& out) {
    if (error_) {
      ++next_;
      return;
    }
    if (!parse_size(fields_[next_], out)) {
      fail("not an index: '" + fields_[next_] + "'");
      return;
    }
    if (out >= table.size()) {
      fail("index " + std::to_string(out) + " out of range for " +
           table_name + " (" + std::to_string(table.size()) + " rows)");
      return;
    }
    ++next_;
  }

  void parse_enum_list(std::span<const paperdata::CategoryCount> table,
                       const char* table_name,
                       std::vector<std::size_t>& out) {
    if (error_) {
      ++next_;
      return;
    }
    out.clear();
    const std::string& s = fields_[next_];
    std::size_t start = 0;
    while (!s.empty() && start <= s.size()) {
      const std::size_t sep = s.find(';', start);
      const std::string part =
          s.substr(start, sep == std::string::npos ? sep : sep - start);
      std::size_t value = 0;
      if (!parse_size(part, value)) {
        fail("not an index list: '" + s + "'");
        return;
      }
      if (value >= table.size()) {
        fail("index " + std::to_string(value) + " out of range for " +
             table_name + " (" + std::to_string(table.size()) + " rows)");
        return;
      }
      out.push_back(value);
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
    ++next_;
  }

  void parse_answer(quiz::Answer& out) {
    if (error_) {
      ++next_;
      return;
    }
    if (fields_[next_].size() != 1 ||
        !char_to_answer(fields_[next_][0], out)) {
      fail("expected T, F, D or U, got '" + fields_[next_] + "'");
      return;
    }
    ++next_;
  }

  void parse_level(std::size_t& out) {
    if (error_) {
      ++next_;
      return;
    }
    const std::string& s = fields_[next_];
    if (s == "D") {
      out = quiz::kOptLevelDontKnow;
    } else if (s == "U") {
      out = quiz::kOptLevelUnanswered;
    } else if (!parse_size(s, out) || out >= quiz::kOptLevelChoiceCount) {
      fail("expected a level index below " +
           std::to_string(quiz::kOptLevelChoiceCount) + ", D or U, got '" +
           s + "'");
      return;
    }
    ++next_;
  }

  void parse_likert(int& out) {
    if (error_) {
      ++next_;
      return;
    }
    std::size_t level = 0;
    if (!parse_size(fields_[next_], level) || level < 1 || level > 5) {
      fail("Likert level must be 1..5, got '" + fields_[next_] + "'");
      return;
    }
    out = static_cast<int>(level);
    ++next_;
  }

 private:
  void fail(std::string message) {
    error_ = ParseError{line_, names_[next_], std::move(message)};
  }

  const std::vector<std::string>& fields_;
  const std::vector<std::string>& names_;
  std::size_t line_;
  std::size_t next_ = 0;
  std::optional<ParseError> error_;
};

ParseError row_shape_error(std::size_t line, std::size_t expected,
                           std::size_t got, bool split_ok) {
  if (!split_ok) {
    return {line, "", "unterminated quoted field"};
  }
  return {line, "",
          "expected " + std::to_string(expected) + " fields, got " +
              std::to_string(got) +
              (got < expected ? " (truncated row?)" : "")};
}

}  // namespace

std::string ParseError::to_string() const {
  std::string out;
  if (line != 0) out = "line " + std::to_string(line);
  if (!field.empty()) {
    out += out.empty() ? "field '" : ", field '";
    out += field + "'";
  }
  if (!out.empty()) out += ": ";
  return out + message;
}

std::string csv_header() {
  std::string out =
      "id,position,area,formal_training,informal_training,dev_role,"
      "fp_languages,arb_prec_languages,contributed_size,contributed_extent,"
      "involved_size,involved_extent";
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    out += ",core_q" + std::to_string(q + 1);
  }
  out += ",opt_madd,opt_ftz,opt_fastmath,opt_level";
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    out += ",suspicion_" + std::to_string(c + 1);
  }
  return out;
}

void write_csv(std::ostream& out, std::span<const SurveyRecord> records) {
  out << csv_header() << '\n';
  fpq::report::CsvWriter writer(out);
  for (const auto& r : records) {
    std::vector<std::string> fields;
    fields.push_back(std::to_string(r.respondent_id));
    fields.push_back(std::to_string(r.background.position));
    fields.push_back(std::to_string(r.background.area));
    fields.push_back(std::to_string(r.background.formal_training));
    fields.push_back(join_indices(r.background.informal_training));
    fields.push_back(std::to_string(r.background.dev_role));
    fields.push_back(join_indices(r.background.fp_languages));
    fields.push_back(join_indices(r.background.arb_prec_languages));
    fields.push_back(std::to_string(r.background.contributed_size));
    fields.push_back(std::to_string(r.background.contributed_extent));
    fields.push_back(std::to_string(r.background.involved_size));
    fields.push_back(std::to_string(r.background.involved_extent));
    for (quiz::Answer a : r.core.answers) {
      fields.push_back(std::string(1, answer_to_char(a)));
    }
    for (quiz::Answer a : r.opt.tf_answers) {
      fields.push_back(std::string(1, answer_to_char(a)));
    }
    fields.push_back(level_to_string(r.opt.level_choice));
    for (int level : r.suspicion) fields.push_back(std::to_string(level));
    writer.write_row(fields);
  }
}

std::optional<ParseError> for_each_csv_record(
    std::istream& in, const std::function<void(SurveyRecord&&)>& sink) {
  std::string line;
  if (!std::getline(in, line)) {
    return ParseError{0, "", "empty input"};
  }
  const std::string header = csv_header();
  if (line != header) {
    return ParseError{1, "", "unexpected header"};
  }
  const std::vector<std::string> names = split_names(header);
  const std::size_t expected_fields = names.size();

  std::vector<std::string> fields;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const bool split_ok = fpq::report::csv_split(line, fields);
    if (!split_ok || fields.size() != expected_fields) {
      return row_shape_error(line_no, expected_fields, fields.size(),
                             split_ok);
    }
    SurveyRecord r;
    RowParser p(fields, names, line_no);
    std::size_t id = 0;
    p.parse_count("respondent id", id);
    r.respondent_id = id;
    p.parse_enum(paperdata::positions(), "positions (Fig 1)",
                 r.background.position);
    p.parse_enum(paperdata::areas(), "areas (Fig 2)", r.background.area);
    p.parse_enum(paperdata::formal_training(), "formal training (Fig 3)",
                 r.background.formal_training);
    p.parse_enum_list(paperdata::informal_training(),
                      "informal training (Fig 4)",
                      r.background.informal_training);
    p.parse_enum(paperdata::dev_roles(), "dev roles (Fig 5)",
                 r.background.dev_role);
    p.parse_enum_list(paperdata::fp_languages(), "FP languages (Fig 6)",
                      r.background.fp_languages);
    p.parse_enum_list(paperdata::arb_prec_languages(),
                      "arbitrary-precision languages (Fig 7)",
                      r.background.arb_prec_languages);
    p.parse_enum(paperdata::contributed_codebase_sizes(),
                 "contributed codebase sizes (Fig 8)",
                 r.background.contributed_size);
    p.parse_enum(paperdata::contributed_fp_extent(),
                 "contributed FP extent (Fig 9)",
                 r.background.contributed_extent);
    p.parse_enum(paperdata::involved_codebase_sizes(),
                 "involved codebase sizes (Fig 10)",
                 r.background.involved_size);
    p.parse_enum(paperdata::involved_fp_extent(),
                 "involved FP extent (Fig 11)",
                 r.background.involved_extent);
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      p.parse_answer(r.core.answers[q]);
    }
    for (std::size_t q = 0; q < quiz::kOptTrueFalseCount; ++q) {
      p.parse_answer(r.opt.tf_answers[q]);
    }
    p.parse_level(r.opt.level_choice);
    for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
      p.parse_likert(r.suspicion[c]);
    }
    if (p.failed()) return p.take_error();
    sink(std::move(r));
  }
  return std::nullopt;
}

std::optional<ParseError> read_csv(std::istream& in,
                                   std::vector<SurveyRecord>& records) {
  std::vector<SurveyRecord> parsed;
  if (auto err = for_each_csv_record(
          in, [&parsed](SurveyRecord&& r) { parsed.push_back(std::move(r)); })) {
    return err;
  }
  // Replace the caller's vector only once the whole stream parsed.
  records = std::move(parsed);
  return std::nullopt;
}

bool read_csv(std::istream& in, std::vector<SurveyRecord>& records,
              std::string& error) {
  if (auto err = read_csv(in, records)) {
    error = err->to_string();
    return false;
  }
  return true;
}

std::string student_csv_header() {
  std::string out = "id";
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    out += ",suspicion_" + std::to_string(c + 1);
  }
  return out;
}

void write_student_csv(std::ostream& out,
                       std::span<const StudentRecord> records) {
  out << student_csv_header() << '\n';
  fpq::report::CsvWriter writer(out);
  for (const auto& r : records) {
    std::vector<std::string> fields;
    fields.push_back(std::to_string(r.respondent_id));
    for (int level : r.suspicion) fields.push_back(std::to_string(level));
    writer.write_row(fields);
  }
}

std::optional<ParseError> for_each_student_csv_record(
    std::istream& in, const std::function<void(StudentRecord&&)>& sink) {
  std::string line;
  if (!std::getline(in, line)) {
    return ParseError{0, "", "empty input"};
  }
  const std::string header = student_csv_header();
  if (line != header) {
    return ParseError{1, "", "unexpected header"};
  }
  const std::vector<std::string> names = split_names(header);

  std::vector<std::string> fields;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const bool split_ok = fpq::report::csv_split(line, fields);
    if (!split_ok || fields.size() != names.size()) {
      return row_shape_error(line_no, names.size(), fields.size(),
                             split_ok);
    }
    StudentRecord r;
    RowParser p(fields, names, line_no);
    std::size_t id = 0;
    p.parse_count("respondent id", id);
    r.respondent_id = id;
    for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
      p.parse_likert(r.suspicion[c]);
    }
    if (p.failed()) return p.take_error();
    sink(std::move(r));
  }
  return std::nullopt;
}

std::optional<ParseError> read_student_csv(
    std::istream& in, std::vector<StudentRecord>& records) {
  std::vector<StudentRecord> parsed;
  if (auto err = for_each_student_csv_record(
          in, [&parsed](StudentRecord&& r) { parsed.push_back(r); })) {
    return err;
  }
  records = std::move(parsed);
  return std::nullopt;
}

bool read_student_csv(std::istream& in, std::vector<StudentRecord>& records,
                      std::string& error) {
  if (auto err = read_student_csv(in, records)) {
    error = err->to_string();
    return false;
  }
  return true;
}

}  // namespace fpq::survey
