// fpq::survey — the analysis pipeline: everything the paper computed from
// its raw records, recomputed from ours.
//
// Figure mapping:
//   frequency_table()/multi_select_table()     -> Figures 1-11
//   average_core()/average_opt_tf()            -> Figure 12
//   core_score_histogram()                     -> Figure 13
//   core_question_breakdown()/opt_breakdown()  -> Figures 14-15
//   (factor_analysis.hpp)                      -> Figures 16-21
//   (suspicion_analysis.hpp)                   -> Figure 22
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/histogram.hpp"
#include "survey/record.hpp"

namespace fpq::survey {

/// A computed frequency-table row (mirrors paperdata::CategoryCount).
struct TableRow {
  std::string label;
  std::size_t n = 0;
  double percent = 0.0;
};

/// Single-select factor frequency table over the records; `categories` is
/// the paperdata table supplying labels and the category count, `selector`
/// extracts the index from a record.
using FieldSelector = std::size_t (*)(const SurveyRecord&);
std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector);

/// Multi-select membership table (Figures 4, 6, 7): row n counts records
/// whose selection list contains that row index.
using ListSelector = const std::vector<std::size_t>& (*)(const SurveyRecord&);
std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector);

/// Average per-respondent outcome counts (Figure 12 rows).
struct AverageTally {
  double correct = 0.0;
  double incorrect = 0.0;
  double dont_know = 0.0;
  double unanswered = 0.0;
};

/// Core quiz averages against the given truth key.
AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key);

/// Optimization T/F quiz averages (the level question excluded, as in
/// Figure 12).
AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key);

/// Histogram of core scores, 0..15 (Figure 13).
stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key);

/// One question's response-percentage breakdown (Figures 14-15 rows).
struct BreakdownRow {
  std::string label;
  double pct_correct = 0.0;
  double pct_incorrect = 0.0;
  double pct_dont_know = 0.0;
  double pct_unanswered = 0.0;
};

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key);

/// All four optimization questions including Standard-compliant Level.
std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key);

// Sharded overloads, streamed through the mergeable accumulators in
// accumulators.hpp (parallel::accumulate_span). Per-record tallies are
// small integers, and integer sums are exact in binary64 far past any
// cohort size we handle, so the per-chunk accumulators merged in chunk
// order reproduce the serial results bit for bit at every thread count.
std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector, parallel::ThreadPool& pool);

std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector, parallel::ThreadPool& pool);

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool);

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool);

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool);

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool);

std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool);

}  // namespace fpq::survey
