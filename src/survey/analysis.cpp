// Thin wrappers over the mergeable accumulators in accumulators.hpp: the
// serial entry points fold records into one accumulator; the pooled
// overloads stream the span through parallel::accumulate_span. Both paths
// end in the same finish() division, so they agree bit for bit.
#include "survey/analysis.hpp"

#include "parallel/stream.hpp"
#include "survey/accumulators.hpp"

namespace fpq::survey {

namespace {

template <typename Acc>
Acc fold_span(std::span<const SurveyRecord> records, Acc acc) {
  for (const auto& record : records) acc.add(record);
  return acc;
}

template <typename MakeAcc>
auto pooled(std::span<const SurveyRecord> records, parallel::ThreadPool& pool,
            const MakeAcc& make_acc) {
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  return parallel::accumulate_span(pool, records, chunks, make_acc);
}

}  // namespace

std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector) {
  return fold_span(records, FrequencyAccumulator(categories, selector))
      .finish();
}

std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector) {
  return fold_span(records, MultiSelectAccumulator(categories, selector))
      .finish();
}

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  return fold_span(records, AverageTallyAccumulator::core(key)).finish();
}

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  return fold_span(records, AverageTallyAccumulator::opt_tf(key)).finish();
}

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  return fold_span(records, ScoreHistogramAccumulator(key)).finish();
}

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  return fold_span(records, BreakdownAccumulator::core(key)).finish();
}

std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  return fold_span(records, BreakdownAccumulator::opt(key)).finish();
}

std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector, parallel::ThreadPool& pool) {
  return pooled(records, pool, [&] {
           return FrequencyAccumulator(categories, selector);
         })
      .finish();
}

std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector, parallel::ThreadPool& pool) {
  return pooled(records, pool, [&] {
           return MultiSelectAccumulator(categories, selector);
         })
      .finish();
}

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  return pooled(records, pool,
                [&] { return AverageTallyAccumulator::core(key); })
      .finish();
}

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool) {
  return pooled(records, pool,
                [&] { return AverageTallyAccumulator::opt_tf(key); })
      .finish();
}

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  return pooled(records, pool, [&] { return ScoreHistogramAccumulator(key); })
      .finish();
}

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  return pooled(records, pool, [&] { return BreakdownAccumulator::core(key); })
      .finish();
}

std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool) {
  return pooled(records, pool, [&] { return BreakdownAccumulator::opt(key); })
      .finish();
}

}  // namespace fpq::survey
