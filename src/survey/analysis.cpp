#include "survey/analysis.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/shard.hpp"

namespace fpq::survey {

std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector) {
  std::vector<TableRow> rows(categories.size());
  for (std::size_t i = 0; i < categories.size(); ++i) {
    rows[i].label = std::string(categories[i].label);
  }
  for (const auto& record : records) {
    const std::size_t idx = selector(record);
    if (idx < rows.size()) ++rows[idx].n;
  }
  const auto total = static_cast<double>(records.size());
  for (auto& row : rows) {
    row.percent = total > 0 ? 100.0 * static_cast<double>(row.n) / total
                            : 0.0;
  }
  return rows;
}

std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector) {
  std::vector<TableRow> rows(categories.size());
  for (std::size_t i = 0; i < categories.size(); ++i) {
    rows[i].label = std::string(categories[i].label);
  }
  for (const auto& record : records) {
    for (std::size_t idx : selector(record)) {
      if (idx < rows.size()) ++rows[idx].n;
    }
  }
  const auto total = static_cast<double>(records.size());
  for (auto& row : rows) {
    row.percent = total > 0 ? 100.0 * static_cast<double>(row.n) / total
                            : 0.0;
  }
  return rows;
}

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  AverageTally avg;
  if (records.empty()) return avg;
  for (const auto& record : records) {
    const quiz::QuizTally tally = quiz::score_core(record.core, key);
    avg.correct += static_cast<double>(tally.correct);
    avg.incorrect += static_cast<double>(tally.incorrect);
    avg.dont_know += static_cast<double>(tally.dont_know);
    avg.unanswered += static_cast<double>(tally.unanswered);
  }
  const auto n = static_cast<double>(records.size());
  avg.correct /= n;
  avg.incorrect /= n;
  avg.dont_know /= n;
  avg.unanswered /= n;
  return avg;
}

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  AverageTally avg;
  if (records.empty()) return avg;
  for (const auto& record : records) {
    const quiz::QuizTally tally = quiz::score_opt_tf(record.opt, key);
    avg.correct += static_cast<double>(tally.correct);
    avg.incorrect += static_cast<double>(tally.incorrect);
    avg.dont_know += static_cast<double>(tally.dont_know);
    avg.unanswered += static_cast<double>(tally.unanswered);
  }
  const auto n = static_cast<double>(records.size());
  avg.correct /= n;
  avg.incorrect /= n;
  avg.dont_know /= n;
  avg.unanswered /= n;
  return avg;
}

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  stats::IntHistogram hist(0, static_cast<int>(quiz::kCoreQuestionCount));
  for (const auto& record : records) {
    hist.add(static_cast<int>(quiz::score_core(record.core, key).correct));
  }
  return hist;
}

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  std::vector<BreakdownRow> rows(quiz::kCoreQuestionCount);
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    rows[q].label =
        quiz::core_question_label(static_cast<quiz::CoreQuestionId>(q));
  }
  if (records.empty()) return rows;
  for (const auto& record : records) {
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      switch (quiz::grade_answer(record.core.answers[q], key[q])) {
        case quiz::Grade::kCorrect:
          rows[q].pct_correct += 1.0;
          break;
        case quiz::Grade::kIncorrect:
          rows[q].pct_incorrect += 1.0;
          break;
        case quiz::Grade::kDontKnow:
          rows[q].pct_dont_know += 1.0;
          break;
        case quiz::Grade::kUnanswered:
          rows[q].pct_unanswered += 1.0;
          break;
      }
    }
  }
  const auto scale = 100.0 / static_cast<double>(records.size());
  for (auto& row : rows) {
    row.pct_correct *= scale;
    row.pct_incorrect *= scale;
    row.pct_dont_know *= scale;
    row.pct_unanswered *= scale;
  }
  return rows;
}

std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  // Rows in paper order: MADD, Flush to Zero, Standard-compliant Level,
  // Fast-math. The T/F sheet holds [MADD, FlushToZero, FastMath].
  std::vector<BreakdownRow> rows(quiz::kOptQuestionCount);
  for (std::size_t q = 0; q < quiz::kOptQuestionCount; ++q) {
    rows[q].label =
        quiz::opt_question_label(static_cast<quiz::OptQuestionId>(q));
  }
  if (records.empty()) return rows;

  auto bump = [](BreakdownRow& row, quiz::Grade g) {
    switch (g) {
      case quiz::Grade::kCorrect:
        row.pct_correct += 1.0;
        break;
      case quiz::Grade::kIncorrect:
        row.pct_incorrect += 1.0;
        break;
      case quiz::Grade::kDontKnow:
        row.pct_dont_know += 1.0;
        break;
      case quiz::Grade::kUnanswered:
        row.pct_unanswered += 1.0;
        break;
    }
  };

  for (const auto& record : records) {
    bump(rows[0], quiz::grade_answer(record.opt.tf_answers[0], key[0]));
    bump(rows[1], quiz::grade_answer(record.opt.tf_answers[1], key[1]));
    bump(rows[2], quiz::grade_level_choice(record.opt.level_choice));
    bump(rows[3], quiz::grade_answer(record.opt.tf_answers[2], key[2]));
  }
  const auto scale = 100.0 / static_cast<double>(records.size());
  for (auto& row : rows) {
    row.pct_correct *= scale;
    row.pct_incorrect *= scale;
    row.pct_dont_know *= scale;
    row.pct_unanswered *= scale;
  }
  return rows;
}

namespace {

// Per-chunk integer partial sums for the four outcome kinds. Combining
// these in chunk order matches the serial loops exactly because every
// count fits a binary64 integer.
struct PartialTally {
  std::size_t correct = 0;
  std::size_t incorrect = 0;
  std::size_t dont_know = 0;
  std::size_t unanswered = 0;
  void add(const quiz::QuizTally& t) noexcept {
    correct += t.correct;
    incorrect += t.incorrect;
    dont_know += t.dont_know;
    unanswered += t.unanswered;
  }
};

AverageTally finish_average(const std::vector<PartialTally>& partials,
                            std::size_t n) {
  PartialTally total;
  for (const auto& p : partials) {
    total.correct += p.correct;
    total.incorrect += p.incorrect;
    total.dont_know += p.dont_know;
    total.unanswered += p.unanswered;
  }
  const auto dn = static_cast<double>(n);
  AverageTally avg;
  avg.correct = static_cast<double>(total.correct) / dn;
  avg.incorrect = static_cast<double>(total.incorrect) / dn;
  avg.dont_know = static_cast<double>(total.dont_know) / dn;
  avg.unanswered = static_cast<double>(total.unanswered) / dn;
  return avg;
}

}  // namespace

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  if (records.empty()) return AverageTally{};
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  std::vector<PartialTally> partials(chunks);
  parallel::parallel_map_chunks(
      pool, records.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          partials[chunk].add(quiz::score_core(records[i].core, key));
        }
      });
  return finish_average(partials, records.size());
}

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool) {
  if (records.empty()) return AverageTally{};
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  std::vector<PartialTally> partials(chunks);
  parallel::parallel_map_chunks(
      pool, records.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          partials[chunk].add(quiz::score_opt_tf(records[i].opt, key));
        }
      });
  return finish_average(partials, records.size());
}

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  // Score every record in parallel (each shard writes only its own slot),
  // then bin serially: the histogram is insertion-order independent.
  std::vector<int> scores(records.size());
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  parallel::parallel_map_chunks(
      pool, records.size(), chunks,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          scores[i] =
              static_cast<int>(quiz::score_core(records[i].core, key).correct);
        }
      });
  stats::IntHistogram hist(0, static_cast<int>(quiz::kCoreQuestionCount));
  hist.add_all(scores);
  return hist;
}

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  std::vector<BreakdownRow> rows(quiz::kCoreQuestionCount);
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    rows[q].label =
        quiz::core_question_label(static_cast<quiz::CoreQuestionId>(q));
  }
  if (records.empty()) return rows;
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  // partials[chunk][question] counts, combined in chunk order below.
  std::vector<std::array<PartialTally, quiz::kCoreQuestionCount>> partials(
      chunks);
  parallel::parallel_map_chunks(
      pool, records.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
            quiz::QuizTally one;
            switch (quiz::grade_answer(records[i].core.answers[q], key[q])) {
              case quiz::Grade::kCorrect:
                one.correct = 1;
                break;
              case quiz::Grade::kIncorrect:
                one.incorrect = 1;
                break;
              case quiz::Grade::kDontKnow:
                one.dont_know = 1;
                break;
              case quiz::Grade::kUnanswered:
                one.unanswered = 1;
                break;
            }
            partials[chunk][q].add(one);
          }
        }
      });
  const auto scale = 100.0 / static_cast<double>(records.size());
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    PartialTally total;
    for (const auto& p : partials) {
      total.correct += p[q].correct;
      total.incorrect += p[q].incorrect;
      total.dont_know += p[q].dont_know;
      total.unanswered += p[q].unanswered;
    }
    rows[q].pct_correct = static_cast<double>(total.correct) * scale;
    rows[q].pct_incorrect = static_cast<double>(total.incorrect) * scale;
    rows[q].pct_dont_know = static_cast<double>(total.dont_know) * scale;
    rows[q].pct_unanswered = static_cast<double>(total.unanswered) * scale;
  }
  return rows;
}

}  // namespace fpq::survey
