#include "survey/analysis.hpp"

#include <algorithm>
#include <cassert>

namespace fpq::survey {

std::vector<TableRow> frequency_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    FieldSelector selector) {
  std::vector<TableRow> rows(categories.size());
  for (std::size_t i = 0; i < categories.size(); ++i) {
    rows[i].label = std::string(categories[i].label);
  }
  for (const auto& record : records) {
    const std::size_t idx = selector(record);
    if (idx < rows.size()) ++rows[idx].n;
  }
  const auto total = static_cast<double>(records.size());
  for (auto& row : rows) {
    row.percent = total > 0 ? 100.0 * static_cast<double>(row.n) / total
                            : 0.0;
  }
  return rows;
}

std::vector<TableRow> multi_select_table(
    std::span<const SurveyRecord> records,
    std::span<const fpq::paperdata::CategoryCount> categories,
    ListSelector selector) {
  std::vector<TableRow> rows(categories.size());
  for (std::size_t i = 0; i < categories.size(); ++i) {
    rows[i].label = std::string(categories[i].label);
  }
  for (const auto& record : records) {
    for (std::size_t idx : selector(record)) {
      if (idx < rows.size()) ++rows[idx].n;
    }
  }
  const auto total = static_cast<double>(records.size());
  for (auto& row : rows) {
    row.percent = total > 0 ? 100.0 * static_cast<double>(row.n) / total
                            : 0.0;
  }
  return rows;
}

AverageTally average_core(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  AverageTally avg;
  if (records.empty()) return avg;
  for (const auto& record : records) {
    const quiz::QuizTally tally = quiz::score_core(record.core, key);
    avg.correct += static_cast<double>(tally.correct);
    avg.incorrect += static_cast<double>(tally.incorrect);
    avg.dont_know += static_cast<double>(tally.dont_know);
    avg.unanswered += static_cast<double>(tally.unanswered);
  }
  const auto n = static_cast<double>(records.size());
  avg.correct /= n;
  avg.incorrect /= n;
  avg.dont_know /= n;
  avg.unanswered /= n;
  return avg;
}

AverageTally average_opt_tf(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  AverageTally avg;
  if (records.empty()) return avg;
  for (const auto& record : records) {
    const quiz::QuizTally tally = quiz::score_opt_tf(record.opt, key);
    avg.correct += static_cast<double>(tally.correct);
    avg.incorrect += static_cast<double>(tally.incorrect);
    avg.dont_know += static_cast<double>(tally.dont_know);
    avg.unanswered += static_cast<double>(tally.unanswered);
  }
  const auto n = static_cast<double>(records.size());
  avg.correct /= n;
  avg.incorrect /= n;
  avg.dont_know /= n;
  avg.unanswered /= n;
  return avg;
}

stats::IntHistogram core_score_histogram(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  stats::IntHistogram hist(0, static_cast<int>(quiz::kCoreQuestionCount));
  for (const auto& record : records) {
    hist.add(static_cast<int>(quiz::score_core(record.core, key).correct));
  }
  return hist;
}

std::vector<BreakdownRow> core_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kCoreQuestionCount>& key) {
  std::vector<BreakdownRow> rows(quiz::kCoreQuestionCount);
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    rows[q].label =
        quiz::core_question_label(static_cast<quiz::CoreQuestionId>(q));
  }
  if (records.empty()) return rows;
  for (const auto& record : records) {
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      switch (quiz::grade_answer(record.core.answers[q], key[q])) {
        case quiz::Grade::kCorrect:
          rows[q].pct_correct += 1.0;
          break;
        case quiz::Grade::kIncorrect:
          rows[q].pct_incorrect += 1.0;
          break;
        case quiz::Grade::kDontKnow:
          rows[q].pct_dont_know += 1.0;
          break;
        case quiz::Grade::kUnanswered:
          rows[q].pct_unanswered += 1.0;
          break;
      }
    }
  }
  const auto scale = 100.0 / static_cast<double>(records.size());
  for (auto& row : rows) {
    row.pct_correct *= scale;
    row.pct_incorrect *= scale;
    row.pct_dont_know *= scale;
    row.pct_unanswered *= scale;
  }
  return rows;
}

std::vector<BreakdownRow> opt_question_breakdown(
    std::span<const SurveyRecord> records,
    const std::array<quiz::Truth, quiz::kOptTrueFalseCount>& key) {
  // Rows in paper order: MADD, Flush to Zero, Standard-compliant Level,
  // Fast-math. The T/F sheet holds [MADD, FlushToZero, FastMath].
  std::vector<BreakdownRow> rows(quiz::kOptQuestionCount);
  for (std::size_t q = 0; q < quiz::kOptQuestionCount; ++q) {
    rows[q].label =
        quiz::opt_question_label(static_cast<quiz::OptQuestionId>(q));
  }
  if (records.empty()) return rows;

  auto bump = [](BreakdownRow& row, quiz::Grade g) {
    switch (g) {
      case quiz::Grade::kCorrect:
        row.pct_correct += 1.0;
        break;
      case quiz::Grade::kIncorrect:
        row.pct_incorrect += 1.0;
        break;
      case quiz::Grade::kDontKnow:
        row.pct_dont_know += 1.0;
        break;
      case quiz::Grade::kUnanswered:
        row.pct_unanswered += 1.0;
        break;
    }
  };

  for (const auto& record : records) {
    bump(rows[0], quiz::grade_answer(record.opt.tf_answers[0], key[0]));
    bump(rows[1], quiz::grade_answer(record.opt.tf_answers[1], key[1]));
    bump(rows[2], quiz::grade_level_choice(record.opt.level_choice));
    bump(rows[3], quiz::grade_answer(record.opt.tf_answers[2], key[2]));
  }
  const auto scale = 100.0 / static_cast<double>(records.size());
  for (auto& row : rows) {
    row.pct_correct *= scale;
    row.pct_incorrect *= scale;
    row.pct_dont_know *= scale;
    row.pct_unanswered *= scale;
  }
  return rows;
}

}  // namespace fpq::survey
