#include "survey/record.hpp"

namespace fpq::survey {

AreaGroup area_group_of(std::size_t area_index) noexcept {
  // Row order of paperdata::areas() (Figure 2).
  switch (area_index) {
    case 0:  // Computer Science
    case 8:  // CS&Math
      return AreaGroup::kCS;
    case 1:  // Other Physical Science Field
      return AreaGroup::kPhysSci;
    case 2:   // Other Engineering Field
    case 12:  // Robotics
    case 14:  // Biomedical Engineering
    case 17:  // Mechanical Engineering
      return AreaGroup::kEng;
    case 3:  // Computer Engineering
    case 9:  // CS&CE
      return AreaGroup::kCE;
    case 4:  // Mathematics
      return AreaGroup::kMath;
    case 5:  // Electrical Engineering
      return AreaGroup::kEE;
    default:
      return AreaGroup::kOther;
  }
}

std::size_t contributed_size_bin(std::size_t fig8_row) noexcept {
  // Figure 8 rows are ordered by popularity; the chart bins by size.
  switch (fig8_row) {
    case 2:  // 100 to 1,000
      return 0;
    case 0:  // 1,001 to 10,000
      return 1;
    case 1:  // 10,001 to 100,000
      return 2;
    case 3:  // 100,001 to 1,000,000
      return 3;
    case 4:  // >1,000,000
      return 4;
    default:  // "<100" and "Not Reported" are not charted
      return kNoSizeBin;
  }
}

std::size_t role_index(std::size_t fig5_row) noexcept {
  // Figure 5 row -> paperdata::role_effect() row.
  switch (fig5_row) {
    case 1:  // main role software engineer
      return 0;
    case 3:  // manage software engineers
      return 1;
    case 0:  // develop software to support main role
      return 2;
    case 2:  // manage support development
      return 3;
    default:  // Not Reported
      return kNoRole;
  }
}

std::size_t training_index(std::size_t fig3_row) noexcept {
  // Figure 3 row -> increasing-training order.
  switch (fig3_row) {
    case 1:  // None
      return 0;
    case 0:  // One or more lectures
      return 1;
    case 2:  // One or more weeks
      return 2;
    case 3:  // One or more courses
      return 3;
    default:  // Not reported
      return kNoTraining;
  }
}

}  // namespace fpq::survey
