// fpq::survey — factor-conditioned quiz performance (Figures 16-21).
//
// For each background factor the paper charts, computes the mean
// per-respondent outcome counts (correct / incorrect / don't-know /
// unanswered) at every factor level — core quiz out of 15 and, where the
// paper charts it, optimization T/F quiz out of 3.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "survey/analysis.hpp"

namespace fpq::survey {

/// One factor level's conditioned averages.
struct FactorLevelResult {
  std::string label;
  std::size_t n = 0;        ///< respondents at this level
  AverageTally core;        ///< out of 15
  AverageTally opt;         ///< out of 3 (T/F questions)
};

using CoreKey = std::array<quiz::Truth, quiz::kCoreQuestionCount>;
using OptKey = std::array<quiz::Truth, quiz::kOptTrueFalseCount>;

/// Figure 16: by ordered contributed-codebase-size bin.
std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key);

/// Figures 17 / 20: by collapsed area group.
std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key);

/// Figures 18 / 21: by software development role.
std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key);

/// Figure 19: by formal training level (increasing order).
std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key);

// Sharded overloads: records are bucketed per chunk into integer partial
// tallies, combined in chunk order. All sums are small integers (exact in
// binary64), so the output is bit-identical to the serial functions at
// every thread count.
std::vector<FactorLevelResult> by_contributed_size(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool);

std::vector<FactorLevelResult> by_area_group(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool);

std::vector<FactorLevelResult> by_role(std::span<const SurveyRecord> records,
                                       const CoreKey& core_key,
                                       const OptKey& opt_key,
                                       parallel::ThreadPool& pool);

std::vector<FactorLevelResult> by_formal_training(
    std::span<const SurveyRecord> records, const CoreKey& core_key,
    const OptKey& opt_key, parallel::ThreadPool& pool);

/// The spread (max - min) of mean core-correct across levels — the
/// "variation across the values of the factor" the paper reports.
double core_correct_spread(std::span<const FactorLevelResult> levels);

}  // namespace fpq::survey
