// fpq::survey — incremental, mergeable figure accumulators.
//
// Every figure analysis (Figures 1-22) is computed by one of these types:
//
//   FrequencyAccumulator      -> Figures 1-3, 5, 8-11 (single-select)
//   MultiSelectAccumulator    -> Figures 4, 6, 7
//   AverageTallyAccumulator   -> Figure 12 (core / opt T/F rows)
//   ScoreHistogramAccumulator -> Figure 13
//   BreakdownAccumulator      -> Figures 14-15
//   FactorLevelAccumulator    -> Figures 16-21
//   SuspicionAccumulator      -> Figure 22 (main + student cohorts)
//
// Shared contract (docs/survey.md):
//
//   * add(record)  — O(1) state update; never stores the record.
//   * merge(&&)    — absorbs another accumulator of the SAME
//     configuration (same category table / truth key / factor); throws
//     std::invalid_argument on a detectable configuration mismatch.
//     All state is integer counts, so merge is associative AND
//     commutative: any merge order is bit-identical to the serial
//     add-one-at-a-time fold. The streaming driver
//     (parallel::stream_accumulate) nevertheless fixes a chunk-ordered
//     tree merge so the pipeline order is deterministic by construction,
//     not by arithmetic accident.
//   * finish()     — produces the figure's result struct. The divisions
//     by respondent counts happen HERE, once, exactly as the legacy
//     vector pipeline performed them (integer counts are exact in
//     binary64 far past any cohort size we handle, so the streamed
//     results are bit-identical to the batch path). finish() on an
//     identity element (no records) returns zeroed results, never NaN.
//
// The classic span-in/vector-out entry points in analysis.hpp,
// factor_analysis.hpp and suspicion_analysis.hpp are thin wrappers over
// these types.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/likert.hpp"
#include "survey/analysis.hpp"
#include "survey/factor_analysis.hpp"
#include "survey/suspicion_analysis.hpp"

namespace fpq::survey {

/// Single-select frequency table (Figures 1-3, 5, 8-11).
class FrequencyAccumulator {
 public:
  FrequencyAccumulator(
      std::span<const fpq::paperdata::CategoryCount> categories,
      FieldSelector selector);

  void add(const SurveyRecord& record) noexcept;
  void merge(FrequencyAccumulator&& other);
  std::vector<TableRow> finish() const;

  std::size_t respondents() const noexcept { return total_; }

 private:
  std::span<const fpq::paperdata::CategoryCount> categories_;
  FieldSelector selector_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Multi-select membership table (Figures 4, 6, 7).
class MultiSelectAccumulator {
 public:
  MultiSelectAccumulator(
      std::span<const fpq::paperdata::CategoryCount> categories,
      ListSelector selector);

  void add(const SurveyRecord& record) noexcept;
  void merge(MultiSelectAccumulator&& other);
  std::vector<TableRow> finish() const;

  std::size_t respondents() const noexcept { return total_; }

 private:
  std::span<const fpq::paperdata::CategoryCount> categories_;
  ListSelector selector_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean per-respondent outcome counts (Figure 12 rows).
class AverageTallyAccumulator {
 public:
  /// Core quiz (out of 15) against the given truth key.
  static AverageTallyAccumulator core(const CoreKey& key) noexcept;
  /// Optimization T/F quiz (out of 3; level question excluded, as in
  /// Figure 12).
  static AverageTallyAccumulator opt_tf(const OptKey& key) noexcept;

  void add(const SurveyRecord& record) noexcept;
  void merge(AverageTallyAccumulator&& other);
  /// Zeros (not NaN) when no records were added.
  AverageTally finish() const noexcept;

  std::size_t respondents() const noexcept { return n_; }

 private:
  enum class Kind { kCore, kOptTf };
  AverageTallyAccumulator() = default;

  Kind kind_ = Kind::kCore;
  CoreKey core_key_{};
  OptKey opt_key_{};
  // correct / incorrect / dont_know / unanswered
  std::array<std::size_t, 4> counts_{};
  std::size_t n_ = 0;
};

/// Histogram of core scores 0..15 (Figure 13).
class ScoreHistogramAccumulator {
 public:
  explicit ScoreHistogramAccumulator(const CoreKey& key) noexcept;

  void add(const SurveyRecord& record) noexcept;
  void merge(ScoreHistogramAccumulator&& other);
  stats::IntHistogram finish() const { return hist_; }

  std::size_t respondents() const noexcept { return hist_.total(); }

 private:
  CoreKey key_{};
  stats::IntHistogram hist_;
};

/// Per-question response-percentage breakdown (Figures 14-15).
class BreakdownAccumulator {
 public:
  /// All 15 core questions.
  static BreakdownAccumulator core(const CoreKey& key);
  /// All 4 optimization questions including Standard-compliant Level.
  static BreakdownAccumulator opt(const OptKey& key);

  void add(const SurveyRecord& record) noexcept;
  void merge(BreakdownAccumulator&& other);
  /// Labeled rows; zero percentages (not NaN) when no records were added.
  std::vector<BreakdownRow> finish() const;

  std::size_t respondents() const noexcept { return n_; }

 private:
  enum class Kind { kCore, kOpt };
  BreakdownAccumulator() = default;

  struct GradeCounts {
    // correct / incorrect / dont_know / unanswered
    std::array<std::size_t, 4> g{};
  };

  Kind kind_ = Kind::kCore;
  CoreKey core_key_{};
  OptKey opt_key_{};
  std::vector<GradeCounts> questions_;
  std::size_t n_ = 0;
};

/// Factor-conditioned quiz averages (Figures 16-21).
class FactorLevelAccumulator {
 public:
  /// Maps a record to its factor level, or >= level count to skip.
  using BucketFn = std::size_t (*)(const SurveyRecord&);

  /// Figure 16: ordered contributed-codebase-size bins.
  static FactorLevelAccumulator by_contributed_size(const CoreKey& core_key,
                                                    const OptKey& opt_key);
  /// Figures 17 / 20: collapsed area groups.
  static FactorLevelAccumulator by_area_group(const CoreKey& core_key,
                                              const OptKey& opt_key);
  /// Figures 18 / 21: software development roles.
  static FactorLevelAccumulator by_role(const CoreKey& core_key,
                                        const OptKey& opt_key);
  /// Figure 19: formal training levels in increasing order.
  static FactorLevelAccumulator by_formal_training(const CoreKey& core_key,
                                                   const OptKey& opt_key);

  /// Generic conditioning for callers with their own level set.
  FactorLevelAccumulator(std::vector<std::string> labels, BucketFn bucket,
                         const CoreKey& core_key, const OptKey& opt_key);

  void add(const SurveyRecord& record) noexcept;
  void merge(FactorLevelAccumulator&& other);
  /// Labeled per-level averages; levels with n == 0 keep zero tallies.
  std::vector<FactorLevelResult> finish() const;

 private:
  struct LevelPartial {
    std::size_t n = 0;
    // correct / incorrect / dont_know / unanswered
    std::array<std::size_t, 4> core{};
    std::array<std::size_t, 4> opt{};
  };

  std::vector<std::string> labels_;
  BucketFn bucket_;
  CoreKey core_key_{};
  OptKey opt_key_{};
  std::vector<LevelPartial> levels_;
};

/// Suspicion Likert distributions (Figure 22); accepts both cohort record
/// types, so one accumulator type serves panels (a) and (b).
class SuspicionAccumulator {
 public:
  void add(const SurveyRecord& record) noexcept {
    add_levels(record.suspicion);
  }
  void add(const StudentRecord& record) noexcept {
    add_levels(record.suspicion);
  }
  void merge(SuspicionAccumulator&& other) noexcept;
  /// Conditions with no responses keep the default (uniform)
  /// distribution, matching the legacy pipeline.
  SuspicionDistributions finish() const;

  std::size_t respondents() const noexcept { return n_; }

 private:
  void add_levels(
      const std::array<int, quiz::kSuspicionItemCount>& levels) noexcept;

  std::array<stats::LikertAccumulator, quiz::kSuspicionItemCount> acc_{};
  std::size_t n_ = 0;
};

}  // namespace fpq::survey
