#include "survey/suspicion_analysis.hpp"

#include <cmath>

#include "core/question_bank.hpp"
#include "parallel/stream.hpp"
#include "survey/accumulators.hpp"

namespace fpq::survey {

namespace {

template <typename Record>
SuspicionDistributions distributions_of(std::span<const Record> records) {
  SuspicionAccumulator acc;
  for (const auto& record : records) acc.add(record);
  return acc.finish();
}

template <typename Record>
SuspicionDistributions distributions_of(std::span<const Record> records,
                                        parallel::ThreadPool& pool) {
  const std::size_t chunks =
      parallel::recommended_chunks(pool, records.size(), 64);
  return parallel::accumulate_span(pool, records, chunks,
                                   [] { return SuspicionAccumulator{}; })
      .finish();
}

}  // namespace

SuspicionDistributions suspicion_distributions(
    std::span<const SurveyRecord> records) {
  return distributions_of(records);
}

SuspicionDistributions suspicion_distributions(
    std::span<const StudentRecord> records) {
  return distributions_of(records);
}

SuspicionDistributions suspicion_distributions(
    std::span<const SurveyRecord> records, parallel::ThreadPool& pool) {
  return distributions_of(records, pool);
}

SuspicionDistributions suspicion_distributions(
    std::span<const StudentRecord> records, parallel::ThreadPool& pool) {
  return distributions_of(records, pool);
}

SuspicionSummary summarize_suspicion(const SuspicionDistributions& dists) {
  SuspicionSummary s;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    s.mean_level[c] = dists[c].mean_level();
  }
  const auto invalid = static_cast<std::size_t>(quiz::SuspicionItemId::kInvalid);
  const auto overflow =
      static_cast<std::size_t>(quiz::SuspicionItemId::kOverflow);
  s.invalid_below_max = dists[invalid].proportion_below_max();

  bool invalid_highest = true;
  bool overflow_second = true;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    if (c == invalid) continue;
    if (s.mean_level[c] >= s.mean_level[invalid]) invalid_highest = false;
    if (c != overflow && s.mean_level[c] >= s.mean_level[overflow]) {
      overflow_second = false;
    }
  }
  s.expert_ordering_holds = invalid_highest && overflow_second;
  return s;
}

double distance_from_advice(const SuspicionSummary& summary) {
  double acc = 0.0;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto advised =
        quiz::suspicion_item(static_cast<quiz::SuspicionItemId>(c))
            .advised_level;
    acc += std::fabs(summary.mean_level[c] - advised);
  }
  return acc / static_cast<double>(quiz::kSuspicionItemCount);
}

}  // namespace fpq::survey
