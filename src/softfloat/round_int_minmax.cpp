// roundToIntegralExact and minNum/maxNum (IEEE 754-2008 §5.3.1, §5.3.3).

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

template <int kBits>
Float<kBits> round_to_integral(Float<kBits> a, Env& env) noexcept {
  using C = FormatConstants<kBits>;
  if (a.is_nan()) return detail::propagate_nan(a, a, env);
  if (a.is_infinity() || a.is_zero()) return a;

  const detail::Unpacked u = detail::unpack_finite(a, env);
  if (u.sig == 0) return Float<kBits>::zero(u.sign);  // DAZ-flushed
  // Values at or beyond 2^(p-1) are already integral (the ulp is >= 1).
  if (u.exp >= C::kSigBits) return a;

  // |a| < 2^p: the integer part fits comfortably in int64; reuse the
  // integer-conversion rounding and rebuild (exactly) from the integer.
  Env convert_env(env.rounding());
  const std::int64_t n = to_int64(a, convert_env);
  if (convert_env.test(kFlagInexact)) env.raise(kFlagInexact);
  if (n == 0) return Float<kBits>::zero(a.sign());  // keep the sign of a
  Env exact;
  return from_int64<kBits>(n, exact);
}

namespace {

// Ordering for min/max with zeros ranked -0 < +0; inputs are non-NaN.
template <int kBits>
bool value_less(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  if (a.is_zero() && b.is_zero()) return a.sign() && !b.sign();
  return less(a, b, env);
}

template <int kBits>
Float<kBits> min_max_impl(Float<kBits> a, Float<kBits> b, bool want_min,
                          Env& env) noexcept {
  if (a.is_signaling_nan() || b.is_signaling_nan()) {
    return detail::invalid_result<kBits>(env);
  }
  // Quiet NaN + number: the NUMBER wins (754-2008 minNum/maxNum).
  if (a.is_nan() && b.is_nan()) return a.quieted();
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  const bool a_less = value_less(a, b, env);
  return want_min == a_less ? a : b;
}

}  // namespace

template <int kBits>
Float<kBits> min_num(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  return min_max_impl(a, b, /*want_min=*/true, env);
}

template <int kBits>
Float<kBits> max_num(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  return min_max_impl(a, b, /*want_min=*/false, env);
}

template Float16 round_to_integral<16>(Float16, Env&) noexcept;
template Float32 round_to_integral<32>(Float32, Env&) noexcept;
template Float64 round_to_integral<64>(Float64, Env&) noexcept;
template BFloat16 round_to_integral<kBFloat16>(BFloat16, Env&) noexcept;
template Float16 min_num<16>(Float16, Float16, Env&) noexcept;
template Float32 min_num<32>(Float32, Float32, Env&) noexcept;
template Float64 min_num<64>(Float64, Float64, Env&) noexcept;
template BFloat16 min_num<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template Float16 max_num<16>(Float16, Float16, Env&) noexcept;
template Float32 max_num<32>(Float32, Float32, Env&) noexcept;
template Float64 max_num<64>(Float64, Float64, Env&) noexcept;
template BFloat16 max_num<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
