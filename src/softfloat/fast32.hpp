// fpq::softfloat — binary32 fast-path primitives for the batched engines:
// the fast16 technique (see fast16.hpp) scaled up one format.
//
// Lanes hold binary32 VALUES as native doubles; arithmetic runs on the
// host FPU (pinned to round-to-nearest by the caller) and each result is
// folded back in-format through the same detail::round_pack<32> core the
// scalar engine uses. The headroom is tighter than binary16's, so the
// per-op arguments differ:
//
//  - mul of binary32 values is EXACT in binary64 (24+24 = 48 significand
//    bits against a 53-bit target), exactly like every fast16 op.
//  - add/sub are NOT exact in binary64 (aligning two 24-bit significands
//    can need far more than 53 bits), so the sum is compressed through
//    TwoSum + round-to-odd first: with 53 >= 24 + 2, rounding the
//    round-to-odd compression to binary32 equals rounding the exact sum
//    in every mode (Boldo–Melquiond). fma uses the same compression on
//    t + c after the exact product t = a*b.
//  - div/sqrt are correctly rounded in binary64, and with 53 >= 2*24 + 2
//    the extra binary64 rounding is innocuous in all five modes: a
//    quotient (root) of binary32 values is either exactly a binary32
//    rounding boundary or separated from every boundary by far more than
//    the binary64 rounding error (sweep32_ref.hpp states the exclusion
//    bounds), so the boundary comparisons inside round_pack come out the
//    same as for the exact value.
//
// Every nonzero double these paths can produce is a NORMAL double: the
// smallest magnitude is a product of two minimum subnormals
// (2^-149 * 2^-149 = 2^-298) and the largest a quotient max/minsub
// (< 2^278), both comfortably inside binary64's normal range — so
// round32()'s normal-double precondition holds and `s == 0.0` detects an
// exact zero.
//
// Anything special — NaN or infinity operands, division by zero — takes
// the scalar softfloat operation for that lane instead, which keeps NaN
// payload propagation and invalid/divide-by-zero flags canonical. This
// header is internal to the softfloat module.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat::fast32 {

inline constexpr std::uint64_t kExpMask64 = 0x7FF0000000000000ull;
inline constexpr std::uint64_t kFracMask64 = 0x000FFFFFFFFFFFFFull;

inline bool is_finite(double v) noexcept {
  return (std::bit_cast<std::uint64_t>(v) & kExpMask64) != kExpMask64;
}

/// True for a value in binary32's subnormal range (0 < |v| < 2^-126) —
/// the operands that raise kFlagDenormalInput / get flushed by DAZ.
inline bool is_subnormal32(double v) noexcept {
  return v != 0.0 && std::fabs(v) < 0x1p-126;
}

/// DAZ operand flush: binary32-subnormal magnitudes become signed zero.
inline double daz32(double v) noexcept {
  return std::fabs(v) < 0x1p-126 ? std::copysign(0.0, v) : v;
}

/// Exact widening of a binary32 encoding to its double value (including
/// NaN payloads, which land in the same bits convert<64,32> puts them in).
inline double widen(Float32 x) noexcept {
  const auto be = static_cast<std::uint64_t>(x.biased_exponent());
  const std::uint64_t sign = x.sign() ? (std::uint64_t{1} << 63) : 0;
  const auto frac = static_cast<std::uint64_t>(x.fraction());
  if (be == 0xFF) {  // infinity / NaN: payload shifts into the top bits
    return std::bit_cast<double>(sign | kExpMask64 | (frac << 29));
  }
  if (be != 0) {  // normal: rebias 127 -> 1023
    return std::bit_cast<double>(sign | ((be - 127 + 1023) << 52) |
                                 (frac << 29));
  }
  if (frac == 0) return std::bit_cast<double>(sign);
  // Subnormal: value = frac * 2^-149, normalized into a double.
  const int top = 63 - std::countl_zero(frac);  // 0..22
  const std::uint64_t mant = (frac ^ (std::uint64_t{1} << top)) << (52 - top);
  const auto bexp = static_cast<std::uint64_t>(top - 149 + 1023);
  return std::bit_cast<double>(sign | (bexp << 52) | mant);
}

/// Rounds a NORMAL nonzero double into binary32 through the scalar
/// engine's round/pack core (all five modes, FTZ, tininess-after-rounding,
/// per-mode overflow results) and returns the value re-widened to double.
/// Flags accumulate on `env` exactly as the softfloat operation would
/// raise them. The caller guarantees `x` is finite, nonzero, and not a
/// double-subnormal (see the file comment: every nonzero fast-path result
/// is a normal double).
inline double round32(double x, Env& env) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const bool sign = (b >> 63) != 0;
  const auto exp = static_cast<std::int32_t>((b >> 52) & 0x7FF) - 1023;
  const std::uint64_t sig = ((b & kFracMask64) | (std::uint64_t{1} << 52))
                            << 11;
  return widen(detail::round_pack<32>(sign, exp, sig, false, env));
}

/// Bit pattern of the largest finite binary32 value ((2-2^-23) * 2^127)
/// widened to double, sign cleared: anything above it after rounding
/// overflowed.
inline constexpr std::uint64_t kMaxMag32 =
    (std::uint64_t{1150} << 52) | (std::uint64_t{0x7FFFFF} << 29);

/// Value-only narrowing of a NORMAL nonzero double to the nearest
/// binary32 value under `mode`, returned re-widened to double. Computes
/// no flags — it exists for operand narrowing (tape kVar lanes), where
/// flags are discarded by contract. Same add-and-mask construction as
/// fast16::narrow16_value: within the binary32 value set, consecutive
/// values are a fixed pattern step apart (2^29 for normals,
/// 2^(29+shift) in the subnormal range) and the carry out of the
/// fraction walks binades, so one masked integer add rounds correctly in
/// every mode; the kept lsb of the pattern is the parity ties-to-even
/// needs.
inline double narrow32_value(double x, Rounding mode) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t sign = b & (std::uint64_t{1} << 63);
  std::uint64_t mag = b ^ sign;
  const int e = static_cast<int>(mag >> 52) - 1023;
  if (e <= -150) {
    // At or below half the smallest subnormal (2^-150): the candidates
    // are 0 and 2^-149, decided by mode and which side of half we're on.
    bool away = false;
    switch (mode) {
      case Rounding::kNearestEven:
        away = e == -150 && (mag & kFracMask64) != 0;  // ties go to 0
        break;
      case Rounding::kNearestAway: away = e == -150; break;
      case Rounding::kTowardZero: break;
      case Rounding::kUp: away = sign == 0; break;
      case Rounding::kDown: away = sign != 0; break;
    }
    return std::bit_cast<double>(
        sign | (away ? std::bit_cast<std::uint64_t>(0x1p-149) : 0));
  }
  const int q = e < -126 ? 29 + (-126 - e) : 29;  // first discarded bit
  const std::uint64_t low = (std::uint64_t{1} << q) - 1;
  switch (mode) {
    case Rounding::kNearestEven:
      mag += (low >> 1) + ((mag >> q) & 1);
      break;
    case Rounding::kNearestAway:
      mag += (low >> 1) + 1;  // exactly half: ties carry away
      break;
    case Rounding::kTowardZero: break;
    case Rounding::kUp:
      if (sign == 0) mag += low;
      break;
    case Rounding::kDown:
      if (sign != 0) mag += low;
      break;
  }
  mag &= ~low;
  if (mag > kMaxMag32) {  // per-mode overflow saturation
    const bool to_inf = mode == Rounding::kNearestEven ||
                        mode == Rounding::kNearestAway ||
                        (mode == Rounding::kUp && sign == 0) ||
                        (mode == Rounding::kDown && sign != 0);
    mag = to_inf ? kExpMask64 : kMaxMag32;
  }
  return std::bit_cast<double>(sign | mag);
}

/// Exact narrowing of an in-format (binary32-valued) double back to the
/// encoding, for handing a lane to a scalar softfloat fallback.
inline Float32 to_f32(double v) noexcept {
  Env quiet;
  return convert<32>(from_native(v), quiet);
}

/// Deterministic sign-bit flip (IEEE negate: no flags, NaN sign flips).
inline double flip_sign(double v) noexcept {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                               (std::uint64_t{1} << 63));
}

/// One ulp step toward the sign of `dir` (caller guarantees the step
/// cannot cross zero or leave the finite range).
inline double step_toward(double s, double dir) noexcept {
  std::uint64_t b = std::bit_cast<std::uint64_t>(s);
  b += ((dir > 0.0) == (s > 0.0)) ? 1u : std::uint64_t(-1);
  return std::bit_cast<double>(b);
}

/// Compresses the exact sum a + b (any two doubles whose exact sum is
/// nonzero and cannot overflow) to its 53-bit round-to-odd value: the
/// nearest double when exact, otherwise the odd-lsb neighbour — which
/// preserves, for every binary32 rounding boundary, which side of it the
/// exact sum lies on. Rounding the result to binary32 therefore equals
/// rounding the exact sum, in all five modes (53 >= 24 + 2). The caller
/// pins the host to round-to-nearest; TwoSum's error term is exact for
/// ANY two doubles (no magnitude ordering required).
inline double add_round_odd(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  if (err != 0.0 && (std::bit_cast<std::uint64_t>(s) & 1) == 0) {
    return step_toward(s, err);
  }
  return s;
}

/// The sign of an exact-zero sum (IEEE 754-2008 §6.3): positive in every
/// rounding mode except roundTowardNegative.
inline bool exact_zero_sign(Rounding mode) noexcept {
  return mode == Rounding::kDown;
}

}  // namespace fpq::softfloat::fast32
