// fpq::softfloat — batch kernel variant selection.
//
// The batch entry points in batch.hpp are backed by up to three
// interchangeable engines per operation, selected at runtime:
//
//   kScalar   — the per-lane scalar softfloat operations (the reference:
//               every other variant must be bit- and flag-identical to it).
//   kPortable — plain-C++ accelerated kernels: integer add-and-mask
//               rounding for converts/round-to-int and the fast32 native
//               double technique (softfloat/fast32.hpp) for binary32
//               arithmetic. No intrinsics; hot loops are written so the
//               compiler can auto-vectorize the integer paths.
//   kAvx2     — hand-vectorized AVX2 kernels for the unary/convert sweep
//               ops; operations without a dedicated AVX2 kernel fall
//               through to the portable implementation.
//
// The default is the best variant the CPU supports. Tests and benches can
// force a variant (set_kernel_variant_override) to prove dispatch parity:
// identical sweep fingerprints and --tape-gate parity under every variant.
//
// Caching note: batched tape results are memoized keyed on
// parallel::BatchKey, which records the active variant — a cache
// populated under one variant can never serve another, even though the
// parity gates prove the entries would be identical. Tape COMPILATION
// (Tape::cached / Tape::fingerprint) is variant-independent: the variant
// only selects the execution engine, never the compiled program.
#pragma once

#include <string_view>

namespace fpq::softfloat {

enum class KernelVariant : unsigned char {
  kScalar = 0,
  kPortable = 1,
  kAvx2 = 2,
};

/// Stable lowercase name ("scalar" / "portable" / "avx2") for manifests,
/// perf JSON env metadata, and CLI flags.
const char* kernel_variant_name(KernelVariant v) noexcept;

/// Parses a kernel_variant_name back; returns false on unknown names.
bool parse_kernel_variant(std::string_view name, KernelVariant& out) noexcept;

/// True when the variant can run on this machine (kScalar and kPortable
/// always can; kAvx2 needs both an AVX2-enabled build and an AVX2 CPU).
bool kernel_variant_available(KernelVariant v) noexcept;

/// The best available variant (kAvx2 > kPortable), detected once.
KernelVariant best_kernel_variant() noexcept;

/// The variant the batch entry points dispatch on: the override if one is
/// set, otherwise best_kernel_variant().
KernelVariant active_kernel_variant() noexcept;

/// Test/bench override. Setting an unavailable variant is ignored and
/// returns false (so forced-variant CI lanes degrade gracefully on
/// machines without AVX2). Thread-safe; affects every thread.
bool set_kernel_variant_override(KernelVariant v) noexcept;
void clear_kernel_variant_override() noexcept;

/// Raw override state for save/restore pairs: -1 = no override, else the
/// forced variant. Lets nested ScopedKernelVariant scopes compose — the
/// inner scope restores the OUTER override, not "no override".
int kernel_variant_override_raw() noexcept;
void restore_kernel_variant_override(int raw) noexcept;

/// RAII override for tests. Nests: destruction restores whatever override
/// (or lack of one) was in force at construction.
class ScopedKernelVariant {
 public:
  explicit ScopedKernelVariant(KernelVariant v) noexcept
      : saved_(kernel_variant_override_raw()) {
    applied_ = set_kernel_variant_override(v);
  }
  ~ScopedKernelVariant() { restore_kernel_variant_override(saved_); }
  ScopedKernelVariant(const ScopedKernelVariant&) = delete;
  ScopedKernelVariant& operator=(const ScopedKernelVariant&) = delete;
  /// False when the variant was unavailable and the override was ignored.
  bool applied() const noexcept { return applied_; }

 private:
  int saved_ = -1;
  bool applied_ = false;
};

}  // namespace fpq::softfloat
