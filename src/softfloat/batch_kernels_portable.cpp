// fpq::softfloat — the portable (plain C++) accelerated batch kernels:
// per-lane bodies from batch_kernels_impl.hpp in tight branch-light
// loops the compiler can pipeline, plus the fast32 native arithmetic
// loops (softfloat/fast32.hpp) for the binary ops. Bit- and
// flag-identical to the scalar batch entry points by the arguments laid
// out in those two headers, and proven so by the exhaustive sweep32
// gates and tests/softfloat/test_fast32.cpp.
#include "softfloat/batch_kernels.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "softfloat/batch_kernels_impl.hpp"
#include "softfloat/fast32.hpp"

namespace fpq::softfloat::kernels::portable {

namespace f32 = fpq::softfloat::fast32;

namespace {

/// Shared add/sub loop: subtraction is addition of the sign-flipped
/// addend (a pure bit operation on the widened value), but fallback
/// lanes and the exact-zero sign rule see the original operands.
template <bool kIsSub>
void addsub32(const Float32* a, const Float32* b, Float32* out,
              unsigned* flags, std::size_t n, Env& env) noexcept {
  const impl::FenvPin pin;
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    const Float32 xa = a[i];
    const Float32 xb = b[i];
    if (!(xa.is_finite() && xb.is_finite())) {
      env.clear_flags();
      out[i] = kIsSub ? sub(xa, xb, env) : add(xa, xb, env);
      flags[i] |= env.flags();
      continue;
    }
    unsigned fl = 0;
    double av = f32::widen(xa);
    double bv = f32::widen(xb);
    if (daz) {
      av = f32::daz32(av);
      bv = f32::daz32(bv);
    } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
      fl = kFlagDenormalInput;
    }
    if (kIsSub) bv = f32::flip_sign(bv);
    const double ro = f32::add_round_odd(av, bv);
    if (ro == 0.0) {
      const bool sa = std::signbit(av);
      const bool sb = std::signbit(bv);
      const bool zs = (av == 0.0 && bv == 0.0 && sa == sb)
                          ? sa
                          : f32::exact_zero_sign(mode);
      out[i] = Float32::zero(zs);
      flags[i] |= fl;
      continue;
    }
    out[i] = Float32::from_bits(impl::fold32(ro, mode, env, fl));
    flags[i] |= fl;
  }
}

}  // namespace

void add32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept {
  addsub32<false>(a, b, out, flags, n, env);
}

void sub32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept {
  addsub32<true>(a, b, out, flags, n, env);
}

void mul32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept {
  const impl::FenvPin pin;
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    const Float32 xa = a[i];
    const Float32 xb = b[i];
    if (!(xa.is_finite() && xb.is_finite())) {
      env.clear_flags();
      out[i] = mul(xa, xb, env);
      flags[i] |= env.flags();
      continue;
    }
    unsigned fl = 0;
    double av = f32::widen(xa);
    double bv = f32::widen(xb);
    if (daz) {
      av = f32::daz32(av);
      bv = f32::daz32(bv);
    } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
      fl = kFlagDenormalInput;
    }
    const double t = av * bv;  // exact: 24+24 significand bits
    if (t == 0.0) {            // sign is the XOR the standard wants
      out[i] = Float32::zero(std::signbit(t));
      flags[i] |= fl;
      continue;
    }
    out[i] = Float32::from_bits(impl::fold32(t, mode, env, fl));
    flags[i] |= fl;
  }
}

void div32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept {
  const impl::FenvPin pin;
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    const Float32 xa = a[i];
    const Float32 xb = b[i];
    unsigned fl = 0;
    double av = 0.0;
    double bv = 0.0;
    bool slow = !(xa.is_finite() && xb.is_finite());
    if (!slow) {
      av = f32::widen(xa);
      bv = f32::widen(xb);
      if (daz) {
        av = f32::daz32(av);
        bv = f32::daz32(bv);
      } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
        fl = kFlagDenormalInput;
      }
      slow = bv == 0.0;  // divide-by-zero / 0 over 0: canonical path
    }
    if (slow) {
      env.clear_flags();
      out[i] = div(xa, xb, env);
      flags[i] |= env.flags();
      continue;
    }
    if (av == 0.0) {  // exact zero quotient, XOR sign
      out[i] = Float32::zero(std::signbit(av) != std::signbit(bv));
      flags[i] |= fl;
      continue;
    }
    // Correctly rounded binary64 quotient; the extra rounding is
    // innocuous (53 >= 2*24 + 2) and quotients of binary32 values are
    // never rounding-boundary midpoints, so fold32's decisions equal the
    // exact quotient's.
    const double q = av / bv;
    out[i] = Float32::from_bits(impl::fold32(q, mode, env, fl));
    flags[i] |= fl;
  }
}

void fma32(const Float32* a, const Float32* b, const Float32* c, Float32* out,
           unsigned* flags, std::size_t n, Env& env) noexcept {
  const impl::FenvPin pin;
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    const Float32 xa = a[i];
    const Float32 xb = b[i];
    const Float32 xc = c[i];
    if (!(xa.is_finite() && xb.is_finite() && xc.is_finite())) {
      env.clear_flags();
      out[i] = fma(xa, xb, xc, env);
      flags[i] |= env.flags();
      continue;
    }
    unsigned fl = 0;
    double av = f32::widen(xa);
    double bv = f32::widen(xb);
    double cv = f32::widen(xc);
    if (daz) {
      av = f32::daz32(av);
      bv = f32::daz32(bv);
      cv = f32::daz32(cv);
    } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv) ||
               f32::is_subnormal32(cv)) {
      fl = kFlagDenormalInput;
    }
    const double t = av * bv;  // exact product
    const double ro = f32::add_round_odd(t, cv);
    if (ro == 0.0) {  // exact zero: |t + cv| >= 2^-298 when nonzero
      const bool psign = std::signbit(av) != std::signbit(bv);
      const bool zs = ((av == 0.0 || bv == 0.0) && cv == 0.0 &&
                       psign == std::signbit(cv))
                          ? psign
                          : f32::exact_zero_sign(mode);
      out[i] = Float32::zero(zs);
      flags[i] |= fl;
      continue;
    }
    out[i] = Float32::from_bits(impl::fold32(ro, mode, env, fl));
    flags[i] |= fl;
  }
}

void sqrt32(const Float32* a, Float32* out, unsigned* flags, std::size_t n,
            Env& env) noexcept {
  const impl::FenvPin pin;
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float32::from_bits(
        impl::sqrt32_lane(a[i].bits, mode, daz, env, fl));
    flags[i] |= fl;
  }
}

void round_int32(const Float32* a, Float32* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float32::from_bits(
        impl::round_int32_lane(a[i].bits, mode, daz, env, fl));
    flags[i] |= fl;
  }
}

void narrow_32_to_16(const Float32* a, Float16* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  const bool ftz = env.flush_to_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float16::from_bits(
        impl::narrow_32_to_16_lane(a[i].bits, mode, daz, ftz, env, fl));
    flags[i] |= fl;
  }
}

void narrow_32_to_bf16(const Float32* a, BFloat16* out, unsigned* flags,
                       std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = BFloat16::from_bits(
        impl::narrow_32_to_bf16_lane(a[i].bits, mode, daz, env, fl));
    flags[i] |= fl;
  }
}

void narrow_64_to_32(const Float64* a, Float32* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float32::from_bits(
        impl::narrow_64_to_32_lane(a[i].bits, mode, env, fl));
    flags[i] |= fl;
  }
}

void widen_16_to_32(const Float16* a, Float32* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float32::from_bits(
        impl::widen_16_to_32_lane(a[i].bits, daz, env, fl));
    flags[i] |= fl;
  }
}

void widen_bf16_to_32(const BFloat16* a, Float32* out, unsigned* flags,
                      std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float32::from_bits(
        impl::widen_bf16_to_32_lane(a[i].bits, daz, env, fl));
    flags[i] |= fl;
  }
}

void widen_32_to_64(const Float32* a, Float64* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned fl = 0;
    out[i] = Float64::from_bits(
        impl::widen_32_to_64_lane(a[i].bits, daz, env, fl));
    flags[i] |= fl;
  }
}

}  // namespace fpq::softfloat::kernels::portable
