// Addition and subtraction with correct rounding.
//
// Strategy: dispatch specials (NaN/inf/zero), then unpack both operands to
// the normalized 64-bit form and perform the magnitude add/subtract in
// 128-bit integer arithmetic so no alignment bit is ever lost before the
// rounding decision (floor + sticky; see detail.hpp).

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

namespace {

using detail::U128;

// Magnitude addition of unpacked nonzero finite values; sign already chosen.
template <int kBits>
Float<kBits> add_magnitudes(bool sign, const detail::Unpacked& big,
                            const detail::Unpacked& small, Env& env) noexcept {
  const std::int32_t shift32 = big.exp - small.exp;  // >= 0
  // Operands placed at bit 126 so the sum fits in 128 bits.
  const U128 a = U128{big.sig} << 63;
  bool sticky = false;
  U128 b;
  if (shift32 == 0) {
    b = U128{small.sig} << 63;
  } else if (shift32 <= 126) {
    const auto shift = static_cast<unsigned>(shift32);
    b = (U128{small.sig} << 63) >> shift;
    // Bits shifted below bit 0 only exist for shift > 63.
    if (shift > 63) {
      const unsigned lost_bits = shift - 63;
      sticky = (small.sig & ((std::uint64_t{1} << lost_bits) - 1)) != 0;
    }
  } else {
    b = 0;
    sticky = true;
  }
  const U128 sum = a + b;
  // value = sum * 2^(exp - 126) with exp = big.exp; helper wants bit-127
  // scaling: sum * 2^((big.exp + 1) - 127).
  return detail::normalize_round_pack<kBits>(sign, big.exp + 1, sum, sticky,
                                             env);
}

// Magnitude subtraction big - small (big has the strictly larger or equal
// magnitude); sign is the sign of the mathematical result.
template <int kBits>
Float<kBits> sub_magnitudes(bool sign, const detail::Unpacked& big,
                            const detail::Unpacked& small, Env& env) noexcept {
  const std::int32_t shift32 = big.exp - small.exp;  // >= 0
  const U128 a = U128{big.sig} << 63;
  bool sticky = false;
  U128 b;
  if (shift32 == 0) {
    b = U128{small.sig} << 63;  // exact
  } else if (shift32 <= 126) {
    const auto shift = static_cast<unsigned>(shift32);
    b = (U128{small.sig} << 63) >> shift;
    bool lost = false;
    if (shift > 63) {
      const unsigned lost_bits = shift - 63;
      lost = (small.sig & ((std::uint64_t{1} << lost_bits) - 1)) != 0;
    }
    if (lost) {
      // floor+sticky for a subtrahend: round the subtrahend up by one unit
      // in the last retained place so the difference is the floor of the
      // true difference, and mark sticky.
      b += 1;
      sticky = true;
    }
  } else {
    // The subtrahend is entirely below bit 0 but nonzero.
    b = 1;
    sticky = true;
  }
  if (a == b && !sticky) {
    return Float<kBits>::zero(detail::exact_zero_sign(env));
  }
  const U128 diff = a - b;
  if (diff == 0) {
    // a == b exactly in retained bits but a sticky remainder exists: the
    // true result is a tiny negative-of-sticky amount below zero of
    // magnitude < 2^(big.exp - 126); it underflows to zero (or to the
    // smallest subnormal in directed rounding). Feed the sticky through a
    // minimal representation: one unit at the very bottom.
    return detail::normalize_round_pack<kBits>(sign, big.exp + 1, U128{1},
                                               false, env);
  }
  return detail::normalize_round_pack<kBits>(sign, big.exp + 1, diff, sticky,
                                             env);
}

// True addition of the (signed) values a + b after special-case dispatch.
template <int kBits>
Float<kBits> add_values(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  if (a.is_nan() || b.is_nan()) return detail::propagate_nan(a, b, env);

  if (a.is_infinity() || b.is_infinity()) {
    if (a.is_infinity() && b.is_infinity()) {
      if (a.sign() != b.sign()) return detail::invalid_result<kBits>(env);
      return a;
    }
    return a.is_infinity() ? a : b;
  }

  detail::Unpacked ua = detail::unpack_finite(a, env);
  detail::Unpacked ub = detail::unpack_finite(b, env);

  if (ua.sig == 0 && ub.sig == 0) {
    // Signed-zero addition: like signs keep the sign; unlike signs give the
    // exact-zero sign for the rounding mode.
    if (ua.sign == ub.sign) return Float<kBits>::zero(ua.sign);
    return Float<kBits>::zero(detail::exact_zero_sign(env));
  }
  if (ua.sig == 0) {
    // 0 + x = x exactly, but repack so DAZ-canonicalization and any FTZ
    // flush still apply uniformly.
    return detail::round_pack<kBits>(ub.sign, ub.exp, ub.sig, false, env);
  }
  if (ub.sig == 0) {
    return detail::round_pack<kBits>(ua.sign, ua.exp, ua.sig, false, env);
  }

  if (ua.sign == ub.sign) {
    const bool a_big =
        ua.exp > ub.exp || (ua.exp == ub.exp && ua.sig >= ub.sig);
    return a_big ? add_magnitudes<kBits>(ua.sign, ua, ub, env)
                 : add_magnitudes<kBits>(ua.sign, ub, ua, env);
  }

  // Opposite signs: subtract the smaller magnitude from the larger.
  const bool a_big = ua.exp > ub.exp || (ua.exp == ub.exp && ua.sig > ub.sig);
  if (ua.exp == ub.exp && ua.sig == ub.sig) {
    return Float<kBits>::zero(detail::exact_zero_sign(env));
  }
  return a_big ? sub_magnitudes<kBits>(ua.sign, ua, ub, env)
               : sub_magnitudes<kBits>(ub.sign, ub, ua, env);
}

}  // namespace

template <int kBits>
Float<kBits> add(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  return add_values(a, b, env);
}

template <int kBits>
Float<kBits> sub(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  if (b.is_nan()) {
    // Propagate NaN without flipping its sign bit.
    return detail::propagate_nan(a, b, env);
  }
  return add_values(a, b.negated(), env);
}

template Float16 add<16>(Float16, Float16, Env&) noexcept;
template Float32 add<32>(Float32, Float32, Env&) noexcept;
template Float64 add<64>(Float64, Float64, Env&) noexcept;
template BFloat16 add<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template Float16 sub<16>(Float16, Float16, Env&) noexcept;
template Float32 sub<32>(Float32, Float32, Env&) noexcept;
template Float64 sub<64>(Float64, Float64, Env&) noexcept;
template BFloat16 sub<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
