#include "softfloat/kernels.hpp"

#include <atomic>

#include "softfloat/batch_kernels.hpp"

namespace fpq::softfloat {

namespace {

/// -1 = no override, else the forced variant.
std::atomic<int> g_override{-1};

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

const char* kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kPortable:
      return "portable";
    case KernelVariant::kAvx2:
      return "avx2";
  }
  return "?";
}

bool parse_kernel_variant(std::string_view name,
                          KernelVariant& out) noexcept {
  for (const KernelVariant v : {KernelVariant::kScalar,
                                KernelVariant::kPortable,
                                KernelVariant::kAvx2}) {
    if (name == kernel_variant_name(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

bool kernel_variant_available(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::kScalar:
    case KernelVariant::kPortable:
      return true;
    case KernelVariant::kAvx2:
      return kernels::avx2_compiled() && cpu_has_avx2();
  }
  return false;
}

KernelVariant best_kernel_variant() noexcept {
  static const KernelVariant best =
      kernel_variant_available(KernelVariant::kAvx2) ? KernelVariant::kAvx2
                                                     : KernelVariant::kPortable;
  return best;
}

KernelVariant active_kernel_variant() noexcept {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<KernelVariant>(o);
  return best_kernel_variant();
}

bool set_kernel_variant_override(KernelVariant v) noexcept {
  if (!kernel_variant_available(v)) return false;
  g_override.store(static_cast<int>(v), std::memory_order_relaxed);
  return true;
}

void clear_kernel_variant_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

int kernel_variant_override_raw() noexcept {
  return g_override.load(std::memory_order_relaxed);
}

void restore_kernel_variant_override(int raw) noexcept {
  // No availability check: the value came from the atomic, so it was
  // either -1 or a variant that passed the check when it was set.
  g_override.store(raw < 0 ? -1 : raw, std::memory_order_relaxed);
}

}  // namespace fpq::softfloat
