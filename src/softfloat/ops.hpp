// fpq::softfloat — public arithmetic operations.
//
// Every operation takes its operands by value plus an Env& that supplies
// the rounding mode / flush modes and accumulates sticky exception flags.
// All operations are correctly rounded per IEEE 754-2008 for the Env's
// rounding-direction attribute; FTZ/DAZ reproduce the x86 non-standard
// fast modes when enabled.
//
// Templates are explicitly instantiated for binary16/32/64 in the .cpp
// files; no other formats are supported.
#pragma once

#include <cstdint>

#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::softfloat {

// -- Arithmetic -------------------------------------------------------------

template <int kBits>
Float<kBits> add(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

template <int kBits>
Float<kBits> sub(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

template <int kBits>
Float<kBits> mul(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

template <int kBits>
Float<kBits> div(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

template <int kBits>
Float<kBits> sqrt(Float<kBits> a, Env& env) noexcept;

/// Fused multiply-add: a * b + c with a single rounding. This is the
/// operation the paper's MADD question is about: part of IEEE 754-2008 but
/// not of the original 754-1985, and a source of result differences when
/// compilers contract expressions.
template <int kBits>
Float<kBits> fma(Float<kBits> a, Float<kBits> b, Float<kBits> c,
                 Env& env) noexcept;

// -- Comparison ---------------------------------------------------------

/// Four-way comparison outcome; kUnordered when either operand is NaN.
enum class Ordering { kLess, kEqual, kGreater, kUnordered };

/// Quiet comparison: raises invalid only for signaling NaNs.
template <int kBits>
Ordering compare_quiet(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

/// Signaling comparison: raises invalid for ANY NaN operand (this is what
/// C's <, <=, >, >= compile to).
template <int kBits>
Ordering compare_signaling(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

/// C-operator semantics: == (quiet), < and <= (signaling).
template <int kBits>
bool equal(Float<kBits> a, Float<kBits> b, Env& env) noexcept;
template <int kBits>
bool less(Float<kBits> a, Float<kBits> b, Env& env) noexcept;
template <int kBits>
bool less_equal(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

/// IEEE 754-2008 roundToIntegralExact: rounds to an integral value in the
/// same format per the Env's rounding attribute, raising inexact iff the
/// value changed. (Signaling NaNs raise invalid and quiet.)
template <int kBits>
Float<kBits> round_to_integral(Float<kBits> a, Env& env) noexcept;

/// IEEE 754-2008 minNum / maxNum: when exactly ONE operand is a quiet NaN
/// the NUMBER is returned — the opposite of what naive NaN-propagation
/// intuition suggests, and another classic quiz-grade surprise. Signaling
/// NaNs raise invalid and produce the default NaN. Zeros are ordered
/// -0 < +0 (as in 754-2019 minimum/maximum).
template <int kBits>
Float<kBits> min_num(Float<kBits> a, Float<kBits> b, Env& env) noexcept;
template <int kBits>
Float<kBits> max_num(Float<kBits> a, Float<kBits> b, Env& env) noexcept;

// -- Conversions -------------------------------------------------------

/// Format-to-format conversion. Widening is always exact; narrowing rounds
/// and may raise overflow/underflow/inexact.
template <int kTo, int kFrom>
Float<kTo> convert(Float<kFrom> x, Env& env) noexcept;

/// Integer to floating point (rounds when the integer has more significant
/// bits than the format's precision).
template <int kBits>
Float<kBits> from_int64(std::int64_t v, Env& env) noexcept;

/// Floating point to integer, rounding per Env. Out-of-range values and
/// NaN raise invalid and return the saturated bound (NaN returns the
/// minimum, matching x86 CVTSD2SI's "integer indefinite").
template <int kBits>
std::int64_t to_int64(Float<kBits> x, Env& env) noexcept;

extern template Float16 add<16>(Float16, Float16, Env&) noexcept;
extern template Float32 add<32>(Float32, Float32, Env&) noexcept;
extern template Float64 add<64>(Float64, Float64, Env&) noexcept;
extern template Float16 sub<16>(Float16, Float16, Env&) noexcept;
extern template Float32 sub<32>(Float32, Float32, Env&) noexcept;
extern template Float64 sub<64>(Float64, Float64, Env&) noexcept;
extern template Float16 mul<16>(Float16, Float16, Env&) noexcept;
extern template Float32 mul<32>(Float32, Float32, Env&) noexcept;
extern template Float64 mul<64>(Float64, Float64, Env&) noexcept;
extern template Float16 div<16>(Float16, Float16, Env&) noexcept;
extern template Float32 div<32>(Float32, Float32, Env&) noexcept;
extern template Float64 div<64>(Float64, Float64, Env&) noexcept;
extern template Float16 sqrt<16>(Float16, Env&) noexcept;
extern template Float32 sqrt<32>(Float32, Env&) noexcept;
extern template Float64 sqrt<64>(Float64, Env&) noexcept;
extern template Float16 fma<16>(Float16, Float16, Float16, Env&) noexcept;
extern template Float32 fma<32>(Float32, Float32, Float32, Env&) noexcept;
extern template Float64 fma<64>(Float64, Float64, Float64, Env&) noexcept;
extern template Ordering compare_quiet<16>(Float16, Float16, Env&) noexcept;
extern template Ordering compare_quiet<32>(Float32, Float32, Env&) noexcept;
extern template Ordering compare_quiet<64>(Float64, Float64, Env&) noexcept;
extern template Ordering compare_signaling<16>(Float16, Float16,
                                               Env&) noexcept;
extern template Ordering compare_signaling<32>(Float32, Float32,
                                               Env&) noexcept;
extern template Ordering compare_signaling<64>(Float64, Float64,
                                               Env&) noexcept;
extern template bool equal<16>(Float16, Float16, Env&) noexcept;
extern template bool equal<32>(Float32, Float32, Env&) noexcept;
extern template bool equal<64>(Float64, Float64, Env&) noexcept;
extern template bool less<16>(Float16, Float16, Env&) noexcept;
extern template bool less<32>(Float32, Float32, Env&) noexcept;
extern template bool less<64>(Float64, Float64, Env&) noexcept;
extern template bool less_equal<16>(Float16, Float16, Env&) noexcept;
extern template bool less_equal<32>(Float32, Float32, Env&) noexcept;
extern template bool less_equal<64>(Float64, Float64, Env&) noexcept;
extern template Float16 round_to_integral<16>(Float16, Env&) noexcept;
extern template Float32 round_to_integral<32>(Float32, Env&) noexcept;
extern template Float64 round_to_integral<64>(Float64, Env&) noexcept;
extern template BFloat16 round_to_integral<kBFloat16>(BFloat16,
                                                      Env&) noexcept;
extern template Float16 min_num<16>(Float16, Float16, Env&) noexcept;
extern template Float32 min_num<32>(Float32, Float32, Env&) noexcept;
extern template Float64 min_num<64>(Float64, Float64, Env&) noexcept;
extern template Float16 max_num<16>(Float16, Float16, Env&) noexcept;
extern template Float32 max_num<32>(Float32, Float32, Env&) noexcept;
extern template Float64 max_num<64>(Float64, Float64, Env&) noexcept;
extern template Float16 convert<16, 16>(Float16, Env&) noexcept;
extern template Float32 convert<32, 32>(Float32, Env&) noexcept;
extern template Float64 convert<64, 64>(Float64, Env&) noexcept;
extern template Float16 convert<16, 32>(Float32, Env&) noexcept;
extern template Float16 convert<16, 64>(Float64, Env&) noexcept;
extern template Float32 convert<32, 16>(Float16, Env&) noexcept;
extern template Float32 convert<32, 64>(Float64, Env&) noexcept;
extern template Float64 convert<64, 16>(Float16, Env&) noexcept;
extern template Float64 convert<64, 32>(Float32, Env&) noexcept;
extern template BFloat16 convert<kBFloat16, kBFloat16>(BFloat16,
                                                       Env&) noexcept;
extern template BFloat16 convert<kBFloat16, 16>(Float16, Env&) noexcept;
extern template BFloat16 convert<kBFloat16, 32>(Float32, Env&) noexcept;
extern template BFloat16 convert<kBFloat16, 64>(Float64, Env&) noexcept;
extern template Float16 convert<16, kBFloat16>(BFloat16, Env&) noexcept;
extern template Float32 convert<32, kBFloat16>(BFloat16, Env&) noexcept;
extern template Float64 convert<64, kBFloat16>(BFloat16, Env&) noexcept;
extern template Float16 from_int64<16>(std::int64_t, Env&) noexcept;
extern template Float32 from_int64<32>(std::int64_t, Env&) noexcept;
extern template Float64 from_int64<64>(std::int64_t, Env&) noexcept;
extern template std::int64_t to_int64<16>(Float16, Env&) noexcept;
extern template std::int64_t to_int64<32>(Float32, Env&) noexcept;
extern template std::int64_t to_int64<64>(Float64, Env&) noexcept;

}  // namespace fpq::softfloat
