// Division with correct rounding: 128-bit numerator / 64-bit divisor gives
// a 64..65-bit truncated quotient; the remainder supplies the sticky bit
// (floor + sticky is exactly what the rounding step needs).

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

template <int kBits>
Float<kBits> div(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  using detail::U128;
  const bool sign = a.sign() != b.sign();

  if (a.is_nan() || b.is_nan()) return detail::propagate_nan(a, b, env);

  if (a.is_infinity()) {
    if (b.is_infinity()) return detail::invalid_result<kBits>(env);  // inf/inf
    return Float<kBits>::infinity(sign);
  }
  if (b.is_infinity()) return Float<kBits>::zero(sign);

  const detail::Unpacked ua = detail::unpack_finite(a, env);
  const detail::Unpacked ub = detail::unpack_finite(b, env);

  if (ub.sig == 0) {
    if (ua.sig == 0) return detail::invalid_result<kBits>(env);  // 0/0
    // Finite nonzero / zero: the paper's Divide By Zero question — the
    // result is an *infinity*, not a NaN, and by default no trap fires;
    // only the sticky divide-by-zero flag records the event.
    env.raise(kFlagDivByZero);
    return Float<kBits>::infinity(sign);
  }
  if (ua.sig == 0) return Float<kBits>::zero(sign);

  // quotient = (sigA << 64) / sigB in [2^63, 2^65); remainder -> sticky.
  const U128 numerator = U128{ua.sig} << 64;
  const U128 quotient = numerator / ub.sig;
  const bool sticky = numerator % ub.sig != 0;
  // value = (sigA/sigB) * 2^(ea-eb) = quotient * 2^((ea - eb + 63) - 127).
  return detail::normalize_round_pack<kBits>(sign, ua.exp - ub.exp + 63,
                                             quotient, sticky, env);
}

template Float16 div<16>(Float16, Float16, Env&) noexcept;
template Float32 div<32>(Float32, Float32, Env&) noexcept;
template Float64 div<64>(Float64, Float64, Env&) noexcept;
template BFloat16 div<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
