// fpq::softfloat — IEEE 754-2008 binary interchange format descriptions.
//
// The engine is generic over a format's bit layout; binary16, binary32 and
// binary64 are instantiations of the same code. All quantities below are
// derived from the standard's (w, t) parameters: w exponent bits, t
// trailing significand bits, precision p = t + 1.
#pragma once

#include <cstdint>

namespace fpq::softfloat {

template <int kBits>
struct FormatTraits;

template <>
struct FormatTraits<16> {
  using Storage = std::uint16_t;
  static constexpr int total_bits = 16;
  static constexpr int exponent_bits = 5;
  static constexpr int trailing_sig_bits = 10;
};

template <>
struct FormatTraits<32> {
  using Storage = std::uint32_t;
  static constexpr int total_bits = 32;
  static constexpr int exponent_bits = 8;
  static constexpr int trailing_sig_bits = 23;
};

template <>
struct FormatTraits<64> {
  using Storage = std::uint64_t;
  static constexpr int total_bits = 64;
  static constexpr int exponent_bits = 11;
  static constexpr int trailing_sig_bits = 52;
};

/// bfloat16 ("brain float"): binary32's exponent range with a 7-bit
/// trailing significand — the reduced-precision format driving the machine
/// learning expansion the paper's introduction worries about. The template
/// key kBFloat16 is distinct from the 16 of binary16 (both are 16-bit
/// encodings with different layouts).
inline constexpr int kBFloat16 = 160;

template <>
struct FormatTraits<kBFloat16> {
  using Storage = std::uint16_t;
  static constexpr int total_bits = 16;
  static constexpr int exponent_bits = 8;
  static constexpr int trailing_sig_bits = 7;
};

/// Derived constants shared by all operations on format `kBits`.
template <int kBits>
struct FormatConstants {
  using Traits = FormatTraits<kBits>;
  using Storage = typename Traits::Storage;

  static constexpr int kTotalBits = Traits::total_bits;
  static constexpr int kExpBits = Traits::exponent_bits;
  static constexpr int kSigBits = Traits::trailing_sig_bits;
  /// Precision p: significand bits including the implicit leading bit.
  static constexpr int kPrecision = kSigBits + 1;
  static constexpr int kBias = (1 << (kExpBits - 1)) - 1;
  /// Largest / smallest unbiased exponent of a normal number.
  static constexpr int kEmax = kBias;
  static constexpr int kEmin = 1 - kBias;
  /// All-ones biased exponent marks infinities and NaNs.
  static constexpr int kExpInfNan = (1 << kExpBits) - 1;

  static constexpr Storage kSignMask =
      static_cast<Storage>(Storage{1} << (kTotalBits - 1));
  static constexpr Storage kFracMask =
      static_cast<Storage>((Storage{1} << kSigBits) - 1);
  static constexpr Storage kExpMask =
      static_cast<Storage>(static_cast<Storage>(kExpInfNan) << kSigBits);
  /// Most significant fraction bit: the quiet bit of a NaN.
  static constexpr Storage kQuietBit = static_cast<Storage>(Storage{1}
                                                            << (kSigBits - 1));

  static constexpr Storage kPositiveInfinityBits = kExpMask;
  static constexpr Storage kNegativeInfinityBits =
      static_cast<Storage>(kSignMask | kExpMask);
  /// The canonical quiet NaN this engine produces for invalid operations.
  static constexpr Storage kDefaultNaNBits =
      static_cast<Storage>(kExpMask | kQuietBit);
  static constexpr Storage kMaxFiniteBits = static_cast<Storage>(
      (static_cast<Storage>(kExpInfNan - 1) << kSigBits) | kFracMask);
  /// Smallest positive subnormal (one ulp above zero).
  static constexpr Storage kMinSubnormalBits = Storage{1};
  /// Smallest positive normal (2^kEmin).
  static constexpr Storage kMinNormalBits =
      static_cast<Storage>(Storage{1} << kSigBits);
};

}  // namespace fpq::softfloat
