#include "softfloat/value.hpp"

#include <cstdio>

namespace fpq::softfloat {

template <int kBits>
std::string describe(Float<kBits> x) {
  using C = FormatConstants<kBits>;
  char hex[32];
  std::snprintf(hex, sizeof hex, "0x%0*llX", C::kTotalBits / 4,
                static_cast<unsigned long long>(x.bits));
  std::string out = hex;
  out += " (";
  out += format_name<kBits>();
  out += ' ';
  switch (x.classify()) {
    case ValueClass::kZero:
      out += x.sign() ? "-0" : "+0";
      break;
    case ValueClass::kInfinite:
      out += x.sign() ? "-inf" : "+inf";
      break;
    case ValueClass::kQuietNaN:
      out += "qNaN";
      break;
    case ValueClass::kSignalingNaN:
      out += "sNaN";
      break;
    case ValueClass::kNormal: {
      char body[64];
      std::snprintf(body, sizeof body, "%c1.%0*llX * 2^%d, normal",
                    x.sign() ? '-' : '+', (C::kSigBits + 3) / 4,
                    static_cast<unsigned long long>(x.fraction()),
                    x.biased_exponent() - C::kBias);
      out += body;
      break;
    }
    case ValueClass::kSubnormal: {
      char body[64];
      std::snprintf(body, sizeof body, "%c0.%0*llX * 2^%d, subnormal",
                    x.sign() ? '-' : '+', (C::kSigBits + 3) / 4,
                    static_cast<unsigned long long>(x.fraction()), C::kEmin);
      out += body;
      break;
    }
  }
  out += ')';
  return out;
}

template std::string describe<16>(Float16);
template std::string describe<32>(Float32);
template std::string describe<64>(Float64);
template std::string describe<kBFloat16>(BFloat16);

}  // namespace fpq::softfloat
