// fpq::softfloat — shared per-lane bodies for the accelerated batch
// kernels. The portable kernels are straight loops over these; the AVX2
// kernels vectorize the common classes and drop any remaining lane here,
// which is what makes the two variants identical by construction on the
// hard cases (NaN payloads, subnormal-result bands, FTZ).
//
// Every helper takes the batch Env both as the source of truth it was
// configured from (mode / daz / ftz are hoisted by the caller) and as
// scratch for the scalar-fallback lanes, honouring the batch contract
// that the Env's sticky flags are clobbered. Flags are OR-ed into `fl`.
//
// Rounding in the common classes is one masked integer add on the
// encoding (the fast16::narrow16_value construction): consecutive
// in-format values are a fixed encoding step apart and the carry out of
// the fraction walks binades correctly, so adding a mode-dependent bias
// below the first kept bit and masking rounds in all five modes; the
// kept lsb supplies ties-to-even parity. Each helper's class boundaries
// route every case with tininess-after-rounding or payload semantics to
// the scalar engine instead of reimplementing it.
//
// Internal header: included only by batch_kernels_portable.cpp and
// batch_kernels_avx2.cpp.
#pragma once

#include <bit>
#include <cfenv>
#include <cmath>
#include <cstdint>

#include "softfloat/detail.hpp"
#include "softfloat/env.hpp"
#include "softfloat/fast32.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat::kernels::impl {

inline constexpr std::uint32_t kSign32 = 0x80000000u;
inline constexpr std::uint32_t kInf32 = 0x7F800000u;
inline constexpr std::uint32_t kQNan32 = 0x7FC00000u;

/// Pins the host FPU to round-to-nearest for the duration of a kernel
/// that runs native double arithmetic (fast32 paths, sqrt), and restores
/// the caller's whole fenv — including exception flags, so kernels never
/// leak host flags — on exit. Integer-only kernels don't need one.
class FenvPin {
 public:
  FenvPin() noexcept {
    std::fegetenv(&saved_);
    std::fesetround(FE_TONEAREST);
  }
  ~FenvPin() { std::fesetenv(&saved_); }
  FenvPin(const FenvPin&) = delete;
  FenvPin& operator=(const FenvPin&) = delete;

 private:
  std::fenv_t saved_;
};

/// True when rounding away from zero lands on infinity rather than max
/// finite for this mode/sign (round_pack's overflow policy).
inline bool overflows_to_inf(Rounding mode, bool neg) noexcept {
  return mode == Rounding::kNearestEven || mode == Rounding::kNearestAway ||
         (mode == Rounding::kUp && !neg) || (mode == Rounding::kDown && neg);
}

/// The mode-dependent bias added below the first kept bit (bit `q`) of a
/// sign-cleared encoding before masking. `lsb` is the kept lsb for
/// ties-to-even. Directed modes return 0 or the full mask depending on
/// the operand sign.
inline std::uint64_t round_bias(Rounding mode, bool neg, std::uint64_t low,
                                std::uint64_t lsb) noexcept {
  switch (mode) {
    case Rounding::kNearestEven:
      return (low >> 1) + lsb;
    case Rounding::kNearestAway:
      return (low >> 1) + 1;
    case Rounding::kTowardZero:
      return 0;
    case Rounding::kUp:
      return neg ? 0 : low;
    case Rounding::kDown:
      return neg ? low : 0;
  }
  return 0;
}

/// detail::round_pack<32> on a nonzero NORMAL double: the full scalar
/// rounding core (tininess after rounding, FTZ, per-mode overflow), used
/// for the result bands the masked-add shortcut must not touch.
inline Float32 round_pack32(double x, Env& env) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const bool sign = (b >> 63) != 0;
  const auto exp = static_cast<std::int32_t>((b >> 52) & 0x7FF) - 1023;
  const std::uint64_t sig =
      ((b & fast32::kFracMask64) | (std::uint64_t{1} << 52)) << 11;
  return detail::round_pack<32>(sign, exp, sig, false, env);
}

/// Folds a nonzero normal double carrying a fast32 result (exact, or
/// round-to-odd compressed, or a correctly-rounded binary64 quotient /
/// root whose double rounding is innocuous — see fast32.hpp) into the
/// binary32 encoding under `mode`. Magnitudes below 2^-126 go through
/// round_pack32 so the subnormal / underflow band keeps the scalar
/// engine's exact tininess and FTZ behaviour; everything else is the
/// masked-add shortcut, whose boundary decisions on the compressed value
/// equal those on the exact one.
inline std::uint32_t fold32(double v, Rounding mode, Env& env,
                            unsigned& fl) noexcept {
  const std::uint64_t rb = std::bit_cast<std::uint64_t>(v);
  std::uint64_t mag = rb & ~(std::uint64_t{1} << 63);
  if (mag < (std::uint64_t{897} << 52)) {  // |v| < 2^-126: tiny band
    env.clear_flags();
    const Float32 r = round_pack32(v, env);
    fl |= env.flags();
    return r.bits;
  }
  const bool neg = (rb >> 63) != 0;
  const std::uint64_t low = 0x1FFFFFFFull;  // 29 discarded bits
  const std::uint64_t discarded = mag & low;
  mag = (mag + round_bias(mode, neg, low, (mag >> 29) & 1)) & ~low;
  const std::uint32_t sign = neg ? kSign32 : 0;
  if (mag > fast32::kMaxMag32) {
    fl |= kFlagOverflow | kFlagInexact;
    return sign | (overflows_to_inf(mode, neg) ? kInf32 : (kInf32 - 1));
  }
  if (discarded != 0) fl |= kFlagInexact;
  return sign |
         static_cast<std::uint32_t>((mag >> 29) - (std::uint64_t{896} << 23));
}

// -- Convert / round-to-int lane bodies (pure integer) ----------------------

/// convert<16, 32> for one lane.
inline std::uint16_t narrow_32_to_16_lane(std::uint32_t p, Rounding mode,
                                          bool daz, bool ftz, Env& env,
                                          unsigned& fl) noexcept {
  const std::uint32_t m = p & ~kSign32;
  const auto sign = static_cast<std::uint16_t>((p >> 16) & 0x8000u);
  if (m > kInf32) {  // NaN: payload narrowing / sNaN invalid → scalar
    env.clear_flags();
    const Float16 r = convert<16>(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  if (m == kInf32) return static_cast<std::uint16_t>(sign | 0x7C00u);
  if (m == 0) return sign;
  if (m < 0x00800000u) {  // binary32-subnormal operand
    if (daz) return sign;  // flushed to zero: exact, no flags
    // |v| < 2^-126, far below the binary16 grid: rounds to 0 or the
    // minimum subnormal, tiny and inexact in every mode.
    fl |= kFlagDenormalInput | kFlagUnderflow | kFlagInexact;
    if (ftz) return sign;
    const bool away = (mode == Rounding::kUp && sign == 0) ||
                      (mode == Rounding::kDown && sign != 0);
    return static_cast<std::uint16_t>(sign | (away ? 1u : 0u));
  }
  if (m < 0x33800000u) {  // 0 < |v| < 2^-24: below the whole grid
    fl |= kFlagUnderflow | kFlagInexact;
    if (ftz) return sign;
    bool away = false;
    switch (mode) {
      case Rounding::kNearestEven:
        away = m > 0x33000000u;  // the 2^-25 tie goes to even zero
        break;
      case Rounding::kNearestAway:
        away = m >= 0x33000000u;
        break;
      case Rounding::kTowardZero:
        break;
      case Rounding::kUp:
        away = sign == 0;
        break;
      case Rounding::kDown:
        away = sign != 0;
        break;
    }
    return static_cast<std::uint16_t>(sign | (away ? 1u : 0u));
  }
  if (m < 0x38800000u) {  // result in the binary16 subnormal band (or
    // rounding up out of it): exact-subnormal flags, tininess after
    // rounding, and FTZ all live in round_pack → scalar
    env.clear_flags();
    const Float16 r = convert<16>(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  // Normal-result band: masked add at q = 13 (23 - 10 fraction bits).
  const std::uint32_t low = 0x1FFFu;
  const std::uint32_t r =
      (m + static_cast<std::uint32_t>(
               round_bias(mode, sign != 0, low, (m >> 13) & 1))) &
      ~low;
  if (r > 0x477FE000u) {  // above binary16 max finite (65504)
    fl |= kFlagOverflow | kFlagInexact;
    return static_cast<std::uint16_t>(
        sign | (overflows_to_inf(mode, sign != 0) ? 0x7C00u : 0x7BFFu));
  }
  if ((m & low) != 0) fl |= kFlagInexact;
  return static_cast<std::uint16_t>(sign | ((r - 0x38000000u) >> 13));
}

/// convert<kBFloat16, 32> for one lane. bfloat16 shares binary32's
/// exponent range, so normal operands can never produce a tiny result
/// (truncating |v| >= 2^-126 onto the coarser grid still lands on
/// >= 2^-126, the shared min normal) and only the subnormal-operand /
/// subnormal-result corner needs the scalar engine.
inline std::uint16_t narrow_32_to_bf16_lane(std::uint32_t p, Rounding mode,
                                            bool daz, Env& env,
                                            unsigned& fl) noexcept {
  const std::uint32_t m = p & ~kSign32;
  const auto sign = static_cast<std::uint16_t>((p >> 16) & 0x8000u);
  if (m > kInf32) {  // NaN → scalar
    env.clear_flags();
    const BFloat16 r = convert<kBFloat16>(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  if (m == kInf32) return static_cast<std::uint16_t>(sign | 0x7F80u);
  if (m == 0) return sign;
  if (m < 0x00800000u) {  // subnormal operand
    if (daz) return sign;
    env.clear_flags();  // DE + subnormal result (tininess, FTZ) → scalar
    const BFloat16 r = convert<kBFloat16>(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  const std::uint32_t low = 0xFFFFu;
  const std::uint32_t r =
      (m + static_cast<std::uint32_t>(
               round_bias(mode, sign != 0, low, (m >> 16) & 1))) &
      ~low;
  if (r > 0x7F7F0000u) {  // above bfloat16 max finite
    fl |= kFlagOverflow | kFlagInexact;
    return static_cast<std::uint16_t>(
        sign | (overflows_to_inf(mode, sign != 0) ? 0x7F80u : 0x7F7Fu));
  }
  if ((m & low) != 0) fl |= kFlagInexact;
  return static_cast<std::uint16_t>(sign | (r >> 16));
}

/// convert<32, 64> for one lane.
inline std::uint32_t narrow_64_to_32_lane(std::uint64_t p, Rounding mode,
                                          Env& env, unsigned& fl) noexcept {
  const std::uint64_t m = p & ~(std::uint64_t{1} << 63);
  const std::uint32_t sign =
      static_cast<std::uint32_t>(p >> 32) & kSign32;
  if (m > fast32::kExpMask64) {  // NaN → scalar
    env.clear_flags();
    const Float32 r = convert<32>(Float64::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  if (m == fast32::kExpMask64) return sign | kInf32;
  if (m == 0) return sign;
  if (m < (std::uint64_t{897} << 52)) {  // |v| < 2^-126: the operand may
    // be a binary64 subnormal (DE/DAZ on the SOURCE format) and the
    // result lands in the binary32 subnormal / underflow band → scalar
    env.clear_flags();
    const Float32 r = convert<32>(Float64::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  const std::uint64_t low = 0x1FFFFFFFull;
  const std::uint64_t r =
      (m + round_bias(mode, sign != 0, low, (m >> 29) & 1)) & ~low;
  if (r > fast32::kMaxMag32) {
    fl |= kFlagOverflow | kFlagInexact;
    return sign | (overflows_to_inf(mode, sign != 0) ? kInf32 : (kInf32 - 1));
  }
  if ((m & low) != 0) fl |= kFlagInexact;
  return sign |
         static_cast<std::uint32_t>((r >> 29) - (std::uint64_t{896} << 23));
}

/// convert<32, 16> for one lane (exact; only NaN payloads go scalar).
inline std::uint32_t widen_16_to_32_lane(std::uint16_t p, bool daz, Env& env,
                                         unsigned& fl) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(p & 0x8000u) << 16;
  const std::uint32_t be = (p >> 10) & 0x1Fu;
  const std::uint32_t frac = p & 0x3FFu;
  if (be == 0x1F) {
    if (frac != 0) {  // NaN → scalar
      env.clear_flags();
      const Float32 r = convert<32>(Float16::from_bits(p), env);
      fl |= env.flags();
      return r.bits;
    }
    return sign | kInf32;
  }
  if (be != 0) return sign | (((be + 112) << 23) | (frac << 13));
  if (frac == 0) return sign;
  if (daz) return sign;  // flushed operand: exact zero, no flags
  fl |= kFlagDenormalInput;
  // Exact normalization of frac * 2^-24 (result is binary32-normal, so
  // FTZ cannot apply).
  const int top = 31 - std::countl_zero(frac);  // 0..9
  return sign | (static_cast<std::uint32_t>(top + 103) << 23) |
         ((frac ^ (1u << top)) << (23 - top));
}

/// convert<32, kBFloat16> for one lane. The value map is encoding << 16
/// (bfloat16 is binary32's top half), but NaN payloads and non-DAZ
/// subnormal operands (whose exact result is itself subnormal: DE plus
/// possible FTZ flush) go scalar.
inline std::uint32_t widen_bf16_to_32_lane(std::uint16_t p, bool daz,
                                           Env& env, unsigned& fl) noexcept {
  const std::uint32_t be = (p >> 7) & 0xFFu;
  const std::uint32_t frac = p & 0x7Fu;
  if ((be == 0xFF && frac != 0) || (be == 0 && frac != 0 && !daz)) {
    env.clear_flags();
    const Float32 r = convert<32>(BFloat16::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  if (be == 0 && frac != 0) {  // daz: flushed to signed zero, no flags
    return static_cast<std::uint32_t>(p & 0x8000u) << 16;
  }
  return static_cast<std::uint32_t>(p) << 16;
}

/// convert<64, 32> for one lane (exact; only NaN payloads go scalar).
inline std::uint64_t widen_32_to_64_lane(std::uint32_t p, bool daz, Env& env,
                                         unsigned& fl) noexcept {
  const std::uint64_t sign = static_cast<std::uint64_t>(p & kSign32) << 32;
  const std::uint32_t be = (p >> 23) & 0xFFu;
  const std::uint32_t frac = p & 0x7FFFFFu;
  if (be == 0xFF) {
    if (frac != 0) {  // NaN → scalar
      env.clear_flags();
      const Float64 r = convert<64>(Float32::from_bits(p), env);
      fl |= env.flags();
      return r.bits;
    }
    return sign | fast32::kExpMask64;
  }
  if (be != 0) {
    return sign | (static_cast<std::uint64_t>(be + 896) << 52) |
           (static_cast<std::uint64_t>(frac) << 29);
  }
  if (frac == 0) return sign;
  if (daz) return sign;
  fl |= kFlagDenormalInput;
  const int top = 31 - std::countl_zero(frac);  // 0..22
  return sign | (static_cast<std::uint64_t>(top + 874) << 52) |
         (static_cast<std::uint64_t>(frac ^ (1u << top)) << (52 - top));
}

/// round_to_integral<32> for one lane.
inline std::uint32_t round_int32_lane(std::uint32_t p, Rounding mode,
                                      bool daz, Env& env,
                                      unsigned& fl) noexcept {
  const std::uint32_t m = p & ~kSign32;
  const std::uint32_t sign = p & kSign32;
  if (m > kInf32) {  // NaN → scalar (payload / sNaN invalid)
    env.clear_flags();
    const Float32 r = round_to_integral(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  // |v| >= 2^23, infinity, and zero are already integral: exact copy.
  if (m >= 0x4B000000u || m == 0) return p;
  if (m < 0x00800000u) {  // subnormal
    if (daz) return sign;  // flushed: zero(sign), NO flags
    fl |= kFlagDenormalInput | kFlagInexact;
    const bool away = (mode == Rounding::kUp && sign == 0) ||
                      (mode == Rounding::kDown && sign != 0);
    return sign | (away ? 0x3F800000u : 0u);
  }
  if (m < 0x3F800000u) {  // 0 < |v| < 1: rounds to 0 or ±1
    fl |= kFlagInexact;
    bool away = false;
    switch (mode) {
      case Rounding::kNearestEven:
        away = m > 0x3F000000u;  // the 0.5 tie goes to even zero
        break;
      case Rounding::kNearestAway:
        away = m >= 0x3F000000u;
        break;
      case Rounding::kTowardZero:
        break;
      case Rounding::kUp:
        away = sign == 0;
        break;
      case Rounding::kDown:
        away = sign != 0;
        break;
    }
    return sign | (away ? 0x3F800000u : 0u);
  }
  // 1 <= |v| < 2^23: masked add at the binade-dependent integer bit.
  const int q = 150 - static_cast<int>(m >> 23);  // 1..23
  const std::uint32_t low = (1u << q) - 1;
  const std::uint32_t r =
      (m + static_cast<std::uint32_t>(
               round_bias(mode, sign != 0, low, (m >> q) & 1))) &
      ~low;
  if ((m & low) != 0) fl |= kFlagInexact;
  return sign | r;
}

/// sqrt<32> for one lane. The caller pinned the fenv to round-to-nearest.
inline std::uint32_t sqrt32_lane(std::uint32_t p, Rounding mode, bool daz,
                                 Env& env, unsigned& fl) noexcept {
  const std::uint32_t m = p & ~kSign32;
  if (m > kInf32) {  // NaN → scalar
    env.clear_flags();
    const Float32 r = softfloat::sqrt(Float32::from_bits(p), env);
    fl |= env.flags();
    return r.bits;
  }
  if (m == 0) return p;  // sqrt(±0) = ±0, exact
  if ((p & kSign32) != 0) {
    // Negative nonzero (including -inf and negative subnormals even
    // under DAZ: the scalar op checks the sign before unpacking).
    fl |= kFlagInvalid;
    return kQNan32;
  }
  if (m == kInf32) return p;  // sqrt(+inf) = +inf
  double dv;
  if (m < 0x00800000u) {
    if (daz) return 0;  // flushed operand: sqrt(+0) = +0, no flags
    fl |= kFlagDenormalInput;
    dv = fast32::widen(Float32::from_bits(p));  // integer normalize
  } else {
    dv = std::bit_cast<double>((static_cast<std::uint64_t>(m) << 29) +
                               (std::uint64_t{896} << 52));
  }
  // Correctly rounded binary64 root of a binary32 value: the extra
  // rounding is innocuous (53 >= 2*24 + 2), the result is in
  // [2^-75, 2^64) — never tiny, never overflowing — and it is a binary32
  // value exactly when the exact root is one, so the masked add at q=29
  // both rounds and detects inexactness correctly.
  const std::uint64_t rb = std::bit_cast<std::uint64_t>(std::sqrt(dv));
  const std::uint64_t low = 0x1FFFFFFFull;
  const std::uint64_t r =
      (rb + round_bias(mode, false, low, (rb >> 29) & 1)) & ~low;
  if ((rb & low) != 0) fl |= kFlagInexact;
  return static_cast<std::uint32_t>((r >> 29) - (std::uint64_t{896} << 23));
}

}  // namespace fpq::softfloat::kernels::impl
