// Encoding-level utilities (util.hpp) — next_up/next_down/ulp/totalOrder.
// The round-and-pack core itself is header-only (detail.hpp) so that every
// operation TU can inline it; this TU provides the non-inline utilities
// built on the same encodings.

#include "softfloat/util.hpp"

namespace fpq::softfloat {

template <int kBits>
Float<kBits> next_up(Float<kBits> x) noexcept {
  using C = FormatConstants<kBits>;
  using Storage = typename C::Storage;
  if (x.is_nan()) return x.quieted();
  if (x.is_infinity()) {
    if (!x.sign()) return x;            // +inf stays
    return Float<kBits>::max_finite(true);  // nextUp(-inf) = most negative finite
  }
  if (x.is_zero()) return Float<kBits>::min_subnormal(false);
  if (!x.sign()) {
    // Positive finite: increment the magnitude encoding (monotone); the
    // largest finite rolls over into the +inf encoding, which is correct.
    return Float<kBits>{static_cast<Storage>(x.bits + 1)};
  }
  // Negative finite: decrement the magnitude; -min_subnormal becomes -0.
  return Float<kBits>{static_cast<Storage>(x.bits - 1)};
}

template <int kBits>
Float<kBits> next_down(Float<kBits> x) noexcept {
  return next_up(x.negated()).negated();
}

template <int kBits>
Float<kBits> ulp(Float<kBits> x) noexcept {
  using C = FormatConstants<kBits>;
  if (x.is_nan() || x.is_infinity()) return Float<kBits>::quiet_nan();
  if (x.is_zero()) return Float<kBits>::min_subnormal(false);
  const int biased = x.biased_exponent();
  if (biased == 0) return Float<kBits>::min_subnormal(false);
  // ulp(x) = 2^(e - p + 1) where e is the unbiased exponent.
  const int ulp_exp = (biased - C::kBias) - C::kSigBits;
  if (ulp_exp < C::kEmin) {
    // Subnormal-scale ulp: encode directly as a subnormal.
    const int shift = ulp_exp - (C::kEmin - C::kSigBits);
    using Storage = typename C::Storage;
    return Float<kBits>{static_cast<Storage>(Storage{1} << shift)};
  }
  using Storage = typename C::Storage;
  return Float<kBits>{static_cast<Storage>(
      static_cast<Storage>(ulp_exp + C::kBias) << C::kSigBits)};
}

template <int kBits>
bool total_order(Float<kBits> a, Float<kBits> b) noexcept {
  // Flip the encoding into a monotone integer key: negative values reverse.
  using C = FormatConstants<kBits>;
  auto key = [](Float<kBits> x) {
    const auto bits = static_cast<std::uint64_t>(x.bits);
    const auto sign = (bits & static_cast<std::uint64_t>(C::kSignMask)) != 0;
    const auto mag = bits & ~static_cast<std::uint64_t>(C::kSignMask);
    return sign ? -static_cast<std::int64_t>(mag) - 1
                : static_cast<std::int64_t>(mag);
  };
  return key(a) <= key(b);
}

template Float16 next_up<16>(Float16) noexcept;
template Float32 next_up<32>(Float32) noexcept;
template Float64 next_up<64>(Float64) noexcept;
template BFloat16 next_up<kBFloat16>(BFloat16) noexcept;
template Float16 next_down<16>(Float16) noexcept;
template Float32 next_down<32>(Float32) noexcept;
template Float64 next_down<64>(Float64) noexcept;
template BFloat16 next_down<kBFloat16>(BFloat16) noexcept;
template Float16 ulp<16>(Float16) noexcept;
template Float32 ulp<32>(Float32) noexcept;
template Float64 ulp<64>(Float64) noexcept;
template BFloat16 ulp<kBFloat16>(BFloat16) noexcept;
template bool total_order<16>(Float16, Float16) noexcept;
template bool total_order<32>(Float32, Float32) noexcept;
template bool total_order<64>(Float64, Float64) noexcept;
template bool total_order<kBFloat16>(BFloat16, BFloat16) noexcept;

}  // namespace fpq::softfloat
