// fpq::softfloat — the Float<kBits> value type: bit-exact storage plus
// classification, construction, and native interop.
//
// Float is a trivially copyable wrapper around the raw encoding. All
// arithmetic lives in ops.hpp; this header is the pure "what do these bits
// mean" layer.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "softfloat/format.hpp"

namespace fpq::softfloat {

/// fpclassify-style value classes.
enum class ValueClass {
  kZero,
  kSubnormal,
  kNormal,
  kInfinite,
  kQuietNaN,
  kSignalingNaN,
};

template <int kBits>
struct Float {
  using Constants = FormatConstants<kBits>;
  using Storage = typename Constants::Storage;

  Storage bits = 0;

  constexpr Float() = default;
  constexpr explicit Float(Storage raw) : bits(raw) {}

  static constexpr Float from_bits(Storage raw) { return Float{raw}; }

  // -- Named constants ----------------------------------------------------
  static constexpr Float zero(bool negative = false) {
    return Float{negative ? Constants::kSignMask : Storage{0}};
  }
  static constexpr Float infinity(bool negative = false) {
    return Float{negative ? Constants::kNegativeInfinityBits
                          : Constants::kPositiveInfinityBits};
  }
  static constexpr Float quiet_nan() {
    return Float{Constants::kDefaultNaNBits};
  }
  static constexpr Float signaling_nan() {
    // Smallest nonzero payload with the quiet bit clear.
    return Float{static_cast<Storage>(Constants::kExpMask | Storage{1})};
  }
  static constexpr Float max_finite(bool negative = false) {
    return Float{static_cast<Storage>(
        (negative ? Constants::kSignMask : Storage{0}) |
        Constants::kMaxFiniteBits)};
  }
  static constexpr Float min_normal(bool negative = false) {
    return Float{static_cast<Storage>(
        (negative ? Constants::kSignMask : Storage{0}) |
        Constants::kMinNormalBits)};
  }
  static constexpr Float min_subnormal(bool negative = false) {
    return Float{static_cast<Storage>(
        (negative ? Constants::kSignMask : Storage{0}) |
        Constants::kMinSubnormalBits)};
  }
  static constexpr Float one(bool negative = false) {
    return Float{static_cast<Storage>(
        (negative ? Constants::kSignMask : Storage{0}) |
        (static_cast<Storage>(Constants::kBias) << Constants::kSigBits))};
  }

  // -- Field access --------------------------------------------------------
  constexpr bool sign() const { return (bits & Constants::kSignMask) != 0; }
  constexpr int biased_exponent() const {
    return static_cast<int>((bits & Constants::kExpMask) >>
                            Constants::kSigBits);
  }
  constexpr Storage fraction() const {
    return static_cast<Storage>(bits & Constants::kFracMask);
  }

  // -- Classification ------------------------------------------------------
  constexpr bool is_zero() const {
    return (bits & ~Constants::kSignMask) == 0;
  }
  constexpr bool is_subnormal() const {
    return biased_exponent() == 0 && fraction() != 0;
  }
  constexpr bool is_normal() const {
    const int e = biased_exponent();
    return e != 0 && e != Constants::kExpInfNan;
  }
  constexpr bool is_finite() const {
    return biased_exponent() != Constants::kExpInfNan;
  }
  constexpr bool is_infinity() const {
    return biased_exponent() == Constants::kExpInfNan && fraction() == 0;
  }
  constexpr bool is_nan() const {
    return biased_exponent() == Constants::kExpInfNan && fraction() != 0;
  }
  constexpr bool is_signaling_nan() const {
    return is_nan() && (bits & Constants::kQuietBit) == 0;
  }
  constexpr bool is_quiet_nan() const {
    return is_nan() && (bits & Constants::kQuietBit) != 0;
  }

  constexpr ValueClass classify() const {
    if (is_zero()) return ValueClass::kZero;
    if (is_subnormal()) return ValueClass::kSubnormal;
    if (is_normal()) return ValueClass::kNormal;
    if (is_infinity()) return ValueClass::kInfinite;
    return is_signaling_nan() ? ValueClass::kSignalingNaN
                              : ValueClass::kQuietNaN;
  }

  // -- Sign-bit operations (never raise flags, per the standard) -----------
  constexpr Float negated() const {
    return Float{static_cast<Storage>(bits ^ Constants::kSignMask)};
  }
  constexpr Float abs() const {
    return Float{static_cast<Storage>(bits & ~Constants::kSignMask)};
  }
  constexpr Float with_sign(bool negative) const {
    return Float{static_cast<Storage>(
        (bits & ~Constants::kSignMask) |
        (negative ? Constants::kSignMask : Storage{0}))};
  }

  /// Quiets a signaling NaN (sets the quiet bit); identity for other values.
  constexpr Float quieted() const {
    if (!is_nan()) return *this;
    return Float{static_cast<Storage>(bits | Constants::kQuietBit)};
  }

  /// Bit equality — NOT IEEE equality (that is compare.hpp's job; the
  /// difference between the two is quiz question "Identity").
  friend constexpr bool operator==(Float a, Float b) { return a.bits == b.bits; }
};

using Float16 = Float<16>;
using Float32 = Float<32>;
using Float64 = Float<64>;
using BFloat16 = Float<kBFloat16>;

/// Display name of a format ("binary32", "bfloat16", ...).
template <int kBits>
constexpr const char* format_name() {
  if constexpr (kBits == kBFloat16) {
    return "bfloat16";
  } else if constexpr (kBits == 16) {
    return "binary16";
  } else if constexpr (kBits == 32) {
    return "binary32";
  } else {
    return "binary64";
  }
}

// -- Native interop (bit-level; exact by construction) ----------------------
inline Float32 from_native(float x) {
  return Float32{std::bit_cast<std::uint32_t>(x)};
}
inline Float64 from_native(double x) {
  return Float64{std::bit_cast<std::uint64_t>(x)};
}
inline float to_native(Float32 x) { return std::bit_cast<float>(x.bits); }
inline double to_native(Float64 x) { return std::bit_cast<double>(x.bits); }

/// Hex + decoded rendering for diagnostics, e.g.
/// "0x3C00 (binary16 +1.0 * 2^0, normal)".
template <int kBits>
std::string describe(Float<kBits> x);

extern template std::string describe<16>(Float16);
extern template std::string describe<32>(Float32);
extern template std::string describe<64>(Float64);
extern template std::string describe<kBFloat16>(BFloat16);

}  // namespace fpq::softfloat
