#include "softfloat/env.hpp"

namespace fpq::softfloat {

std::string flags_to_string(unsigned flags) {
  if (flags == 0) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (flags & kFlagInvalid) append("invalid");
  if (flags & kFlagDivByZero) append("divbyzero");
  if (flags & kFlagOverflow) append("overflow");
  if (flags & kFlagUnderflow) append("underflow");
  if (flags & kFlagInexact) append("inexact");
  if (flags & kFlagDenormalInput) append("denormal-input");
  return out;
}

std::string rounding_to_string(Rounding r) {
  switch (r) {
    case Rounding::kNearestEven:
      return "roundTiesToEven";
    case Rounding::kTowardZero:
      return "roundTowardZero";
    case Rounding::kDown:
      return "roundTowardNegative";
    case Rounding::kUp:
      return "roundTowardPositive";
    case Rounding::kNearestAway:
      return "roundTiesToAway";
  }
  return "unknown";
}

}  // namespace fpq::softfloat
