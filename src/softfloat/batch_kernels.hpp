// fpq::softfloat — internal declarations for the accelerated batch
// kernels behind batch.cpp's dispatch (see kernels.hpp for the variant
// model). Each kernel implements EXACTLY the corresponding batch entry
// point's per-lane contract: out[i] and flags[i] |= are bit- and
// flag-identical to the scalar softfloat operation under the Env's
// rounding mode and FTZ/DAZ state, out may alias inputs, lanes run in
// order, and the Env's sticky flags are clobbered (scalar-fallback lanes
// use it as scratch).
//
// Kernels that run host floating point (the fast32 arithmetic ops and
// sqrt) pin the fenv to round-to-nearest internally — callers like the
// sweep32 shard loops invoke them under ambient, per-shard rounding
// modes. The convert / round-to-int kernels are pure integer code and
// need no pinning.
//
// Not a public header: only batch.cpp, kernels.cpp, and the kernel TUs
// (batch_kernels_portable.cpp / batch_kernels_avx2.cpp) include it.
#pragma once

#include <cstddef>

#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::softfloat::kernels {

/// True when batch_kernels_avx2.cpp was built with AVX2 code generation
/// (the build adds -mavx2 for that one TU when the compiler supports it;
/// otherwise the TU compiles portable forwarders and this returns false).
bool avx2_compiled() noexcept;

namespace portable {

void add32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept;
void sub32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept;
void mul32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept;
void div32(const Float32* a, const Float32* b, Float32* out, unsigned* flags,
           std::size_t n, Env& env) noexcept;
void fma32(const Float32* a, const Float32* b, const Float32* c, Float32* out,
           unsigned* flags, std::size_t n, Env& env) noexcept;
void sqrt32(const Float32* a, Float32* out, unsigned* flags, std::size_t n,
            Env& env) noexcept;
void round_int32(const Float32* a, Float32* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept;
void narrow_32_to_16(const Float32* a, Float16* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept;
void narrow_32_to_bf16(const Float32* a, BFloat16* out, unsigned* flags,
                       std::size_t n, Env& env) noexcept;
void narrow_64_to_32(const Float64* a, Float32* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept;
void widen_16_to_32(const Float16* a, Float32* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept;
void widen_bf16_to_32(const BFloat16* a, Float32* out, unsigned* flags,
                      std::size_t n, Env& env) noexcept;
void widen_32_to_64(const Float32* a, Float64* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept;

}  // namespace portable

// The AVX2 set covers the unary / convert sweep ops (the full-2^32
// spaces). The binary arithmetic ops stay on the portable fast32 loops
// under every vector variant: their cost is dominated by the scalar
// TwoSum / fold-back tails, not lane traversal. When avx2_compiled() is
// false these are forwarders to the portable kernels (and dispatch never
// selects them anyway).
namespace avx2 {

void sqrt32(const Float32* a, Float32* out, unsigned* flags, std::size_t n,
            Env& env) noexcept;
void round_int32(const Float32* a, Float32* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept;
void narrow_32_to_16(const Float32* a, Float16* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept;
void narrow_32_to_bf16(const Float32* a, BFloat16* out, unsigned* flags,
                       std::size_t n, Env& env) noexcept;
void widen_16_to_32(const Float16* a, Float32* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept;
void widen_bf16_to_32(const BFloat16* a, Float32* out, unsigned* flags,
                      std::size_t n, Env& env) noexcept;
void widen_32_to_64(const Float32* a, Float64* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept;

}  // namespace avx2

}  // namespace fpq::softfloat::kernels
