// fpq::softfloat — batch (SoA) entry points: one operation across a
// stride of lanes.
//
// The per-lane semantics are EXACTLY the scalar operations' — same
// correctly-rounded results, same sticky flags — run in a tight loop so a
// batched executor (fpq::ir's tape engine) pays the softfloat arithmetic
// and nothing else per lane. Each lane's flags are captured individually:
// the Env's sticky state is used as scratch (cleared before every lane)
// and each lane's raised flags are OR-ed into flags[i]. Callers that need
// the Env's own union afterwards must re-accumulate from the flag array.
#pragma once

#include <cstddef>

#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::softfloat {

/// out[i] = op(a[i], b[i]); flags[i] |= the flags lane i raised. The Env's
/// sticky flags are clobbered (used as per-lane scratch). `out` may alias
/// `a` or `b`: lane i's operands are read before lane i's result is
/// written, and lanes are processed in order.
template <int kBits>
void add_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept;
template <int kBits>
void sub_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept;
template <int kBits>
void mul_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept;
template <int kBits>
void div_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept;
template <int kBits>
void sqrt_n(const Float<kBits>* a, Float<kBits>* out, unsigned* flags,
            std::size_t n, Env& env) noexcept;
template <int kBits>
void fma_n(const Float<kBits>* a, const Float<kBits>* b,
           const Float<kBits>* c, Float<kBits>* out, unsigned* flags,
           std::size_t n, Env& env) noexcept;

/// C-operator comparison lanes, producing in-format 1.0 / 0.0 (1.0 is
/// exactly representable in every supported format). equal is the quiet
/// ==; less the signaling <.
template <int kBits>
void equal_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
             unsigned* flags, std::size_t n, Env& env) noexcept;
template <int kBits>
void less_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
            unsigned* flags, std::size_t n, Env& env) noexcept;

/// Sign-bit negation lanes: never raises flags (IEEE 5.5.1), no Env.
template <int kBits>
void neg_n(const Float<kBits>* a, Float<kBits>* out, std::size_t n) noexcept;

/// roundToIntegralExact lanes (same per-lane semantics as the scalar
/// round_to_integral: inexact iff the value changed).
template <int kBits>
void round_int_n(const Float<kBits>* a, Float<kBits>* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept;

/// Format-conversion lanes: out[i] = convert<kTo, kFrom>(a[i]). The sweep32
/// hot loops stream entire encoding spaces through these.
template <int kTo, int kFrom>
void convert_n(const Float<kFrom>* a, Float<kTo>* out, unsigned* flags,
               std::size_t n, Env& env) noexcept;

/// Narrows host doubles (read with `stride` between lanes — a column of a
/// row-major binding table) into the format. Quiet: conversion flags are
/// discarded, but the Env's rounding and DAZ modes apply — exactly the
/// evaluators' operand/literal narrowing semantics. kBits == 64 is a pure
/// bit copy.
template <int kBits>
void narrow_from_double_n(const double* in, std::size_t stride,
                          Float<kBits>* out, std::size_t n,
                          const Env& env) noexcept;

/// Widens lanes back to binary64 (exact for every supported format).
template <int kBits>
void widen_to_double_n(const Float<kBits>* in, double* out,
                       std::size_t n) noexcept;

extern template void add_n<16>(const Float16*, const Float16*, Float16*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void add_n<32>(const Float32*, const Float32*, Float32*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void add_n<64>(const Float64*, const Float64*, Float64*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void add_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                      BFloat16*, unsigned*, std::size_t,
                                      Env&) noexcept;
extern template void sub_n<16>(const Float16*, const Float16*, Float16*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void sub_n<32>(const Float32*, const Float32*, Float32*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void sub_n<64>(const Float64*, const Float64*, Float64*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void sub_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                      BFloat16*, unsigned*, std::size_t,
                                      Env&) noexcept;
extern template void mul_n<16>(const Float16*, const Float16*, Float16*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void mul_n<32>(const Float32*, const Float32*, Float32*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void mul_n<64>(const Float64*, const Float64*, Float64*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void mul_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                      BFloat16*, unsigned*, std::size_t,
                                      Env&) noexcept;
extern template void div_n<16>(const Float16*, const Float16*, Float16*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void div_n<32>(const Float32*, const Float32*, Float32*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void div_n<64>(const Float64*, const Float64*, Float64*,
                               unsigned*, std::size_t, Env&) noexcept;
extern template void div_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                      BFloat16*, unsigned*, std::size_t,
                                      Env&) noexcept;
extern template void sqrt_n<16>(const Float16*, Float16*, unsigned*,
                                std::size_t, Env&) noexcept;
extern template void sqrt_n<32>(const Float32*, Float32*, unsigned*,
                                std::size_t, Env&) noexcept;
extern template void sqrt_n<64>(const Float64*, Float64*, unsigned*,
                                std::size_t, Env&) noexcept;
extern template void sqrt_n<kBFloat16>(const BFloat16*, BFloat16*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void fma_n<16>(const Float16*, const Float16*, const Float16*,
                               Float16*, unsigned*, std::size_t,
                               Env&) noexcept;
extern template void fma_n<32>(const Float32*, const Float32*, const Float32*,
                               Float32*, unsigned*, std::size_t,
                               Env&) noexcept;
extern template void fma_n<64>(const Float64*, const Float64*, const Float64*,
                               Float64*, unsigned*, std::size_t,
                               Env&) noexcept;
extern template void fma_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                      const BFloat16*, BFloat16*, unsigned*,
                                      std::size_t, Env&) noexcept;
extern template void equal_n<16>(const Float16*, const Float16*, Float16*,
                                 unsigned*, std::size_t, Env&) noexcept;
extern template void equal_n<32>(const Float32*, const Float32*, Float32*,
                                 unsigned*, std::size_t, Env&) noexcept;
extern template void equal_n<64>(const Float64*, const Float64*, Float64*,
                                 unsigned*, std::size_t, Env&) noexcept;
extern template void equal_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                        BFloat16*, unsigned*, std::size_t,
                                        Env&) noexcept;
extern template void less_n<16>(const Float16*, const Float16*, Float16*,
                                unsigned*, std::size_t, Env&) noexcept;
extern template void less_n<32>(const Float32*, const Float32*, Float32*,
                                unsigned*, std::size_t, Env&) noexcept;
extern template void less_n<64>(const Float64*, const Float64*, Float64*,
                                unsigned*, std::size_t, Env&) noexcept;
extern template void less_n<kBFloat16>(const BFloat16*, const BFloat16*,
                                       BFloat16*, unsigned*, std::size_t,
                                       Env&) noexcept;
extern template void neg_n<16>(const Float16*, Float16*, std::size_t) noexcept;
extern template void neg_n<32>(const Float32*, Float32*, std::size_t) noexcept;
extern template void neg_n<64>(const Float64*, Float64*, std::size_t) noexcept;
extern template void neg_n<kBFloat16>(const BFloat16*, BFloat16*,
                                      std::size_t) noexcept;
extern template void round_int_n<16>(const Float16*, Float16*, unsigned*,
                                     std::size_t, Env&) noexcept;
extern template void round_int_n<32>(const Float32*, Float32*, unsigned*,
                                     std::size_t, Env&) noexcept;
extern template void round_int_n<64>(const Float64*, Float64*, unsigned*,
                                     std::size_t, Env&) noexcept;
extern template void round_int_n<kBFloat16>(const BFloat16*, BFloat16*,
                                            unsigned*, std::size_t,
                                            Env&) noexcept;
extern template void convert_n<16, 32>(const Float32*, Float16*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void convert_n<64, 32>(const Float32*, Float64*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void convert_n<kBFloat16, 32>(const Float32*, BFloat16*,
                                              unsigned*, std::size_t,
                                              Env&) noexcept;
extern template void convert_n<32, 16>(const Float16*, Float32*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void convert_n<32, kBFloat16>(const BFloat16*, Float32*,
                                              unsigned*, std::size_t,
                                              Env&) noexcept;
extern template void convert_n<32, 64>(const Float64*, Float32*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void convert_n<16, 64>(const Float64*, Float16*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void convert_n<64, 16>(const Float16*, Float64*, unsigned*,
                                       std::size_t, Env&) noexcept;
extern template void narrow_from_double_n<16>(const double*, std::size_t,
                                              Float16*, std::size_t,
                                              const Env&) noexcept;
extern template void narrow_from_double_n<32>(const double*, std::size_t,
                                              Float32*, std::size_t,
                                              const Env&) noexcept;
extern template void narrow_from_double_n<64>(const double*, std::size_t,
                                              Float64*, std::size_t,
                                              const Env&) noexcept;
extern template void narrow_from_double_n<kBFloat16>(const double*,
                                                     std::size_t, BFloat16*,
                                                     std::size_t,
                                                     const Env&) noexcept;
extern template void widen_to_double_n<16>(const Float16*, double*,
                                           std::size_t) noexcept;
extern template void widen_to_double_n<32>(const Float32*, double*,
                                           std::size_t) noexcept;
extern template void widen_to_double_n<64>(const Float64*, double*,
                                           std::size_t) noexcept;
extern template void widen_to_double_n<kBFloat16>(const BFloat16*, double*,
                                                  std::size_t) noexcept;

}  // namespace fpq::softfloat
