// fpq::softfloat — AVX2 lane kernels for the unary / convert batch ops.
//
// This TU is always part of the build; CMake adds -mavx2 for it alone
// when the compiler supports the flag, and the __AVX2__ guard below
// compiles either the real kernels or forwarders to the portable ones
// (in which case avx2_compiled() reports false and dispatch never
// selects the variant).
//
// Every kernel follows one shape: classify 8 lanes, run the dominant
// class through the same masked-add rounding the portable kernels use —
// just width-8 — and drop every other lane to the per-lane bodies in
// batch_kernels_impl.hpp, byte-identical to the portable variant on the
// hard cases by construction. Vector results land in stack buffers and a
// merge loop picks per lane, so no kernel needs cross-lane permutes.
#include "softfloat/batch_kernels.hpp"

#include <cstdint>

#include "softfloat/batch_kernels_impl.hpp"
#include "softfloat/fast32.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace fpq::softfloat::kernels {

bool avx2_compiled() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

namespace avx2 {

#if !defined(__AVX2__)

void sqrt32(const Float32* a, Float32* out, unsigned* flags, std::size_t n,
            Env& env) noexcept {
  portable::sqrt32(a, out, flags, n, env);
}
void round_int32(const Float32* a, Float32* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept {
  portable::round_int32(a, out, flags, n, env);
}
void narrow_32_to_16(const Float32* a, Float16* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept {
  portable::narrow_32_to_16(a, out, flags, n, env);
}
void narrow_32_to_bf16(const Float32* a, BFloat16* out, unsigned* flags,
                       std::size_t n, Env& env) noexcept {
  portable::narrow_32_to_bf16(a, out, flags, n, env);
}
void widen_16_to_32(const Float16* a, Float32* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  portable::widen_16_to_32(a, out, flags, n, env);
}
void widen_bf16_to_32(const BFloat16* a, Float32* out, unsigned* flags,
                      std::size_t n, Env& env) noexcept {
  portable::widen_bf16_to_32(a, out, flags, n, env);
}
void widen_32_to_64(const Float32* a, Float64* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  portable::widen_32_to_64(a, out, flags, n, env);
}

#else  // __AVX2__

namespace {

constexpr std::size_t kW = 8;  // lanes per iteration

inline unsigned mask_bits(__m256i m) noexcept {
  return static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

/// round_bias (batch_kernels_impl.hpp) across 8 lanes, fixed shift `q`.
/// `neg` holds all-ones lanes for negative operands.
inline __m256i bias_epi32(Rounding mode, __m256i mag, __m256i neg, int q,
                          std::uint32_t low) noexcept {
  const __m256i vlow = _mm256_set1_epi32(static_cast<int>(low));
  switch (mode) {
    case Rounding::kNearestEven:
      return _mm256_add_epi32(
          _mm256_set1_epi32(static_cast<int>(low >> 1)),
          _mm256_and_si256(_mm256_srli_epi32(mag, q),
                           _mm256_set1_epi32(1)));
    case Rounding::kNearestAway:
      return _mm256_set1_epi32(static_cast<int>((low >> 1) + 1));
    case Rounding::kTowardZero:
      return _mm256_setzero_si256();
    case Rounding::kUp:
      return _mm256_andnot_si256(neg, vlow);
    case Rounding::kDown:
      return _mm256_and_si256(neg, vlow);
  }
  return _mm256_setzero_si256();
}

/// Same with a per-lane shift/mask (round_int32's binade-dependent q).
inline __m256i bias_var_epi32(Rounding mode, __m256i mag, __m256i neg,
                              __m256i vq, __m256i vlow) noexcept {
  switch (mode) {
    case Rounding::kNearestEven:
      return _mm256_add_epi32(
          _mm256_srli_epi32(vlow, 1),
          _mm256_and_si256(_mm256_srlv_epi32(mag, vq),
                           _mm256_set1_epi32(1)));
    case Rounding::kNearestAway:
      return _mm256_add_epi32(_mm256_srli_epi32(vlow, 1),
                              _mm256_set1_epi32(1));
    case Rounding::kTowardZero:
      return _mm256_setzero_si256();
    case Rounding::kUp:
      return _mm256_andnot_si256(neg, vlow);
    case Rounding::kDown:
      return _mm256_and_si256(neg, vlow);
  }
  return _mm256_setzero_si256();
}

/// Lanes where rounding away lands on infinity (round_pack's overflow
/// policy) under `mode`, given the negative-lane mask.
inline __m256i to_inf_epi32(Rounding mode, __m256i neg) noexcept {
  const __m256i ones = _mm256_set1_epi32(-1);
  switch (mode) {
    case Rounding::kNearestEven:
    case Rounding::kNearestAway:
      return ones;
    case Rounding::kTowardZero:
      return _mm256_setzero_si256();
    case Rounding::kUp:
      return _mm256_andnot_si256(neg, ones);
    case Rounding::kDown:
      return neg;
  }
  return _mm256_setzero_si256();
}

inline __m256i select_epi32(__m256i mask, __m256i yes, __m256i no) noexcept {
  return _mm256_blendv_epi8(no, yes, mask);
}

/// Unsigned m <= bound for sign-cleared magnitudes (all values fit in 31
/// bits, so signed compares are safe everywhere in this file).
inline __m256i le_epi32(__m256i m, int bound) noexcept {
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(bound + 1), m);
}
inline __m256i ge_epi32(__m256i m, int bound) noexcept {
  return _mm256_cmpgt_epi32(m, _mm256_set1_epi32(bound - 1));
}

}  // namespace

void narrow_32_to_bf16(const Float32* a, BFloat16* out, unsigned* flags,
                       std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint32_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint32_t ro[kW];
  alignas(32) std::uint32_t fo[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i m =
        _mm256_and_si256(v, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i neg = _mm256_srai_epi32(v, 31);
    const __m256i sign16 = _mm256_and_si256(_mm256_srli_epi32(v, 16),
                                            _mm256_set1_epi32(0x8000));
    // Dominant class: normal operands (result can overflow but never be
    // tiny — bfloat16 shares binary32's exponent range).
    const __m256i easy = _mm256_and_si256(
        ge_epi32(m, 0x00800000),
        le_epi32(m, static_cast<int>(impl::kInf32) - 1));
    const __m256i low = _mm256_set1_epi32(0xFFFF);
    const __m256i r = _mm256_andnot_si256(
        low, _mm256_add_epi32(m, bias_epi32(mode, m, neg, 16, 0xFFFFu)));
    const __m256i ovf =
        _mm256_cmpgt_epi32(r, _mm256_set1_epi32(0x7F7F0000));
    const __m256i ovf_val =
        select_epi32(to_inf_epi32(mode, neg), _mm256_set1_epi32(0x7F80),
                     _mm256_set1_epi32(0x7F7F));
    const __m256i inexact = _mm256_xor_si256(
        _mm256_cmpeq_epi32(_mm256_and_si256(m, low),
                           _mm256_setzero_si256()),
        _mm256_set1_epi32(-1));
    const __m256i val = _mm256_or_si256(
        sign16, select_epi32(ovf, ovf_val, _mm256_srli_epi32(r, 16)));
    const __m256i fl = select_epi32(
        ovf, _mm256_set1_epi32(kFlagOverflow | kFlagInexact),
        _mm256_and_si256(inexact, _mm256_set1_epi32(kFlagInexact)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ro), val);
    _mm256_store_si256(reinterpret_cast<__m256i*>(fo), fl);
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = BFloat16::from_bits(static_cast<std::uint16_t>(ro[j]));
        flags[i + j] |= fo[j];
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = BFloat16::from_bits(
            impl::narrow_32_to_bf16_lane(in[i + j], mode, daz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = BFloat16::from_bits(static_cast<std::uint16_t>(ro[j]));
        flags[i + j] |= fo[j];
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = BFloat16::from_bits(
        impl::narrow_32_to_bf16_lane(in[i], mode, daz, env, f));
    flags[i] |= f;
  }
}

void narrow_32_to_16(const Float32* a, Float16* out, unsigned* flags,
                     std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  const bool ftz = env.flush_to_zero();
  const auto* in = reinterpret_cast<const std::uint32_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint32_t ro[kW];
  alignas(32) std::uint32_t fo[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i m =
        _mm256_and_si256(v, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i neg = _mm256_srai_epi32(v, 31);
    const __m256i sign16 = _mm256_and_si256(_mm256_srli_epi32(v, 16),
                                            _mm256_set1_epi32(0x8000));
    // Dominant class: binary16-normal results (plus overflow).
    const __m256i easy = _mm256_and_si256(
        ge_epi32(m, 0x38800000),
        le_epi32(m, static_cast<int>(impl::kInf32) - 1));
    const __m256i low = _mm256_set1_epi32(0x1FFF);
    const __m256i r = _mm256_andnot_si256(
        low, _mm256_add_epi32(m, bias_epi32(mode, m, neg, 13, 0x1FFFu)));
    const __m256i ovf =
        _mm256_cmpgt_epi32(r, _mm256_set1_epi32(0x477FE000));
    const __m256i ovf_val =
        select_epi32(to_inf_epi32(mode, neg), _mm256_set1_epi32(0x7C00),
                     _mm256_set1_epi32(0x7BFF));
    const __m256i inexact = _mm256_xor_si256(
        _mm256_cmpeq_epi32(_mm256_and_si256(m, low),
                           _mm256_setzero_si256()),
        _mm256_set1_epi32(-1));
    const __m256i narrowed = _mm256_srli_epi32(
        _mm256_sub_epi32(r, _mm256_set1_epi32(0x38000000)), 13);
    const __m256i val =
        _mm256_or_si256(sign16, select_epi32(ovf, ovf_val, narrowed));
    const __m256i fl = select_epi32(
        ovf, _mm256_set1_epi32(kFlagOverflow | kFlagInexact),
        _mm256_and_si256(inexact, _mm256_set1_epi32(kFlagInexact)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ro), val);
    _mm256_store_si256(reinterpret_cast<__m256i*>(fo), fl);
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float16::from_bits(static_cast<std::uint16_t>(ro[j]));
        flags[i + j] |= fo[j];
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = Float16::from_bits(
            impl::narrow_32_to_16_lane(in[i + j], mode, daz, ftz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float16::from_bits(static_cast<std::uint16_t>(ro[j]));
        flags[i + j] |= fo[j];
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float16::from_bits(
        impl::narrow_32_to_16_lane(in[i], mode, daz, ftz, env, f));
    flags[i] |= f;
  }
}

void widen_16_to_32(const Float16* a, Float32* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint16_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint32_t ro[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i p = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    const __m256i be = _mm256_and_si256(_mm256_srli_epi32(p, 10),
                                        _mm256_set1_epi32(0x1F));
    // Dominant class: normal operands (be in [1, 30]); the widening is
    // exact and raises nothing.
    const __m256i easy = _mm256_and_si256(
        _mm256_cmpgt_epi32(be, _mm256_setzero_si256()),
        _mm256_cmpgt_epi32(_mm256_set1_epi32(31), be));
    const __m256i sign = _mm256_slli_epi32(
        _mm256_and_si256(p, _mm256_set1_epi32(0x8000)), 16);
    const __m256i val = _mm256_or_si256(
        sign,
        _mm256_add_epi32(
            _mm256_slli_epi32(
                _mm256_and_si256(p, _mm256_set1_epi32(0x7FFF)), 13),
            _mm256_set1_epi32(0x38000000)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ro), val);
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float32::from_bits(ro[j]);
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] =
            Float32::from_bits(impl::widen_16_to_32_lane(in[i + j], daz,
                                                         env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float32::from_bits(ro[j]);
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float32::from_bits(impl::widen_16_to_32_lane(in[i], daz,
                                                          env, f));
    flags[i] |= f;
  }
}

void widen_bf16_to_32(const BFloat16* a, Float32* out, unsigned* flags,
                      std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint16_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint32_t ro[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i p = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    const __m256i be = _mm256_and_si256(_mm256_srli_epi32(p, 7),
                                        _mm256_set1_epi32(0xFF));
    const __m256i frac_zero = _mm256_cmpeq_epi32(
        _mm256_and_si256(p, _mm256_set1_epi32(0x7F)),
        _mm256_setzero_si256());
    // Hard: NaN payloads and subnormal operands; everything else is the
    // exact encoding shift with no flags.
    const __m256i boundary_be = _mm256_or_si256(
        _mm256_cmpeq_epi32(be, _mm256_setzero_si256()),
        _mm256_cmpeq_epi32(be, _mm256_set1_epi32(0xFF)));
    const __m256i easy =
        _mm256_or_si256(frac_zero,
                        _mm256_xor_si256(boundary_be,
                                         _mm256_set1_epi32(-1)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ro),
                       _mm256_slli_epi32(p, 16));
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float32::from_bits(ro[j]);
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = Float32::from_bits(
            impl::widen_bf16_to_32_lane(in[i + j], daz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float32::from_bits(ro[j]);
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float32::from_bits(impl::widen_bf16_to_32_lane(in[i], daz,
                                                            env, f));
    flags[i] |= f;
  }
}

void widen_32_to_64(const Float32* a, Float64* out, unsigned* flags,
                    std::size_t n, Env& env) noexcept {
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint32_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint64_t ro[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i m =
        _mm256_and_si256(v, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i be = _mm256_srli_epi32(m, 23);
    // Dominant class: normal operands and zeros (exact, no flags).
    const __m256i normal = _mm256_and_si256(
        _mm256_cmpgt_epi32(be, _mm256_setzero_si256()),
        _mm256_cmpgt_epi32(_mm256_set1_epi32(0xFF), be));
    const __m256i easy = _mm256_or_si256(
        normal, _mm256_cmpeq_epi32(m, _mm256_setzero_si256()));
    for (int half = 0; half < 2; ++half) {
      const __m128i lane4 = half == 0 ? _mm256_castsi256_si128(v)
                                      : _mm256_extracti128_si256(v, 1);
      const __m256i x = _mm256_cvtepu32_epi64(lane4);
      const __m256i sign64 = _mm256_slli_epi64(
          _mm256_and_si256(x, _mm256_set1_epi64x(0x80000000ll)), 32);
      const __m256i m64 = _mm256_and_si256(
          x, _mm256_set1_epi64x(0x7FFFFFFFll));
      const __m256i widened = _mm256_add_epi64(
          _mm256_slli_epi64(m64, 29),
          _mm256_set1_epi64x(static_cast<long long>(
              std::uint64_t{896} << 52)));
      // Zeros must stay zero, not pick up the rebias term.
      const __m256i zero64 =
          _mm256_cmpeq_epi64(m64, _mm256_setzero_si256());
      const __m256i val = _mm256_or_si256(
          sign64, _mm256_andnot_si256(zero64, widened));
      _mm256_store_si256(reinterpret_cast<__m256i*>(ro + 4 * half), val);
    }
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float64::from_bits(ro[j]);
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = Float64::from_bits(
            impl::widen_32_to_64_lane(in[i + j], daz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float64::from_bits(ro[j]);
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float64::from_bits(impl::widen_32_to_64_lane(in[i], daz,
                                                          env, f));
    flags[i] |= f;
  }
}

void round_int32(const Float32* a, Float32* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept {
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint32_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint32_t ro[kW];
  alignas(32) std::uint32_t fo[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i m =
        _mm256_and_si256(v, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i neg = _mm256_srai_epi32(v, 31);
    const __m256i sign =
        _mm256_and_si256(v, _mm256_set1_epi32(
                                static_cast<int>(0x80000000u)));
    // Classes handled in-vector; NaN and nonzero subnormals go scalar.
    const __m256i copy = _mm256_or_si256(
        _mm256_and_si256(ge_epi32(m, 0x4B000000),
                         le_epi32(m, static_cast<int>(impl::kInf32))),
        _mm256_cmpeq_epi32(m, _mm256_setzero_si256()));
    const __m256i sub1 = _mm256_and_si256(ge_epi32(m, 0x00800000),
                                          le_epi32(m, 0x3F7FFFFF));
    const __m256i mid = _mm256_and_si256(ge_epi32(m, 0x3F800000),
                                         le_epi32(m, 0x4AFFFFFF));
    const __m256i easy =
        _mm256_or_si256(copy, _mm256_or_si256(sub1, mid));
    // sub-one band: rounds to 0 or ±1.
    __m256i away;
    switch (mode) {
      case Rounding::kNearestEven:
        away = _mm256_cmpgt_epi32(m, _mm256_set1_epi32(0x3F000000));
        break;
      case Rounding::kNearestAway:
        away = ge_epi32(m, 0x3F000000);
        break;
      case Rounding::kTowardZero:
        away = _mm256_setzero_si256();
        break;
      case Rounding::kUp:
        away = _mm256_xor_si256(neg, _mm256_set1_epi32(-1));
        break;
      case Rounding::kDown:
        away = neg;
        break;
      default:
        away = _mm256_setzero_si256();
        break;
    }
    const __m256i sub1_val = _mm256_or_si256(
        sign, _mm256_and_si256(away, _mm256_set1_epi32(0x3F800000)));
    // integral band: masked add at the binade-dependent bit.
    const __m256i vq =
        _mm256_sub_epi32(_mm256_set1_epi32(150), _mm256_srli_epi32(m, 23));
    const __m256i vlow = _mm256_sub_epi32(
        _mm256_sllv_epi32(_mm256_set1_epi32(1), vq),
        _mm256_set1_epi32(1));
    const __m256i r = _mm256_andnot_si256(
        vlow,
        _mm256_add_epi32(m, bias_var_epi32(mode, m, neg, vq, vlow)));
    const __m256i mid_inexact = _mm256_xor_si256(
        _mm256_cmpeq_epi32(_mm256_and_si256(m, vlow),
                           _mm256_setzero_si256()),
        _mm256_set1_epi32(-1));
    const __m256i mid_val = _mm256_or_si256(sign, r);
    const __m256i val = select_epi32(
        copy, v, select_epi32(mid, mid_val, sub1_val));
    const __m256i fl = _mm256_and_si256(
        select_epi32(copy, _mm256_setzero_si256(),
                     select_epi32(mid, mid_inexact, _mm256_set1_epi32(-1))),
        _mm256_set1_epi32(kFlagInexact));
    _mm256_store_si256(reinterpret_cast<__m256i*>(ro), val);
    _mm256_store_si256(reinterpret_cast<__m256i*>(fo), fl);
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float32::from_bits(ro[j]);
        flags[i + j] |= fo[j];
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = Float32::from_bits(
            impl::round_int32_lane(in[i + j], mode, daz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float32::from_bits(ro[j]);
        flags[i + j] |= fo[j];
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float32::from_bits(
        impl::round_int32_lane(in[i], mode, daz, env, f));
    flags[i] |= f;
  }
}

void sqrt32(const Float32* a, Float32* out, unsigned* flags, std::size_t n,
            Env& env) noexcept {
  const impl::FenvPin pin;  // _mm256_sqrt_pd honours MXCSR rounding
  const Rounding mode = env.rounding();
  const bool daz = env.denormals_are_zero();
  const auto* in = reinterpret_cast<const std::uint32_t*>(a);
  std::size_t i = 0;
  alignas(32) std::uint64_t rr[kW];
  alignas(32) std::uint64_t ff[kW];
  for (; i + kW <= n; i += kW) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i m =
        _mm256_and_si256(v, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i neg = _mm256_srai_epi32(v, 31);
    // Dominant class: positive normal operands. Everything else
    // (negatives, zeros, subnormals, inf, NaN) goes scalar — those
    // lanes are branch-trivial there.
    const __m256i easy = _mm256_andnot_si256(
        neg, _mm256_and_si256(
                 ge_epi32(m, 0x00800000),
                 le_epi32(m, static_cast<int>(impl::kInf32) - 1)));
    for (int half = 0; half < 2; ++half) {
      const __m128i lane4 = half == 0 ? _mm256_castsi256_si128(m)
                                      : _mm256_extracti128_si256(m, 1);
      // Exact widen of a positive normal binary32 to binary64 bits.
      const __m256i d = _mm256_add_epi64(
          _mm256_slli_epi64(_mm256_cvtepu32_epi64(lane4), 29),
          _mm256_set1_epi64x(
              static_cast<long long>(std::uint64_t{896} << 52)));
      // Correctly rounded under the pinned round-to-nearest; the extra
      // binary64 rounding is innocuous (see batch_kernels_impl.hpp).
      const __m256i rb = _mm256_castpd_si256(
          _mm256_sqrt_pd(_mm256_castsi256_pd(d)));
      const __m256i low = _mm256_set1_epi64x(0x1FFFFFFFll);
      __m256i bias;
      switch (mode) {
        case Rounding::kNearestEven:
          bias = _mm256_add_epi64(
              _mm256_set1_epi64x(0x0FFFFFFFll),
              _mm256_and_si256(_mm256_srli_epi64(rb, 29),
                               _mm256_set1_epi64x(1)));
          break;
        case Rounding::kNearestAway:
          bias = _mm256_set1_epi64x(0x10000000ll);
          break;
        case Rounding::kUp:  // results are positive
          bias = low;
          break;
        default:  // kTowardZero, kDown
          bias = _mm256_setzero_si256();
          break;
      }
      const __m256i folded = _mm256_andnot_si256(
          low, _mm256_add_epi64(rb, bias));
      const __m256i val = _mm256_sub_epi64(
          _mm256_srli_epi64(folded, 29),
          _mm256_set1_epi64x(static_cast<long long>(
              std::uint64_t{896} << 23)));
      const __m256i inexact = _mm256_xor_si256(
          _mm256_cmpeq_epi64(_mm256_and_si256(rb, low),
                             _mm256_setzero_si256()),
          _mm256_set1_epi64x(-1));
      _mm256_store_si256(reinterpret_cast<__m256i*>(rr + 4 * half), val);
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(ff + 4 * half),
          _mm256_and_si256(inexact, _mm256_set1_epi64x(kFlagInexact)));
    }
    const unsigned hard = mask_bits(easy) ^ 0xFFu;
    if (hard == 0) {
      for (std::size_t j = 0; j < kW; ++j) {
        out[i + j] = Float32::from_bits(static_cast<std::uint32_t>(rr[j]));
        flags[i + j] |= static_cast<unsigned>(ff[j]);
      }
      continue;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      if ((hard >> j) & 1) {
        unsigned f = 0;
        out[i + j] = Float32::from_bits(
            impl::sqrt32_lane(in[i + j], mode, daz, env, f));
        flags[i + j] |= f;
      } else {
        out[i + j] = Float32::from_bits(static_cast<std::uint32_t>(rr[j]));
        flags[i + j] |= static_cast<unsigned>(ff[j]);
      }
    }
  }
  for (; i < n; ++i) {
    unsigned f = 0;
    out[i] = Float32::from_bits(
        impl::sqrt32_lane(in[i], mode, daz, env, f));
    flags[i] |= f;
  }
}

#endif  // __AVX2__

}  // namespace avx2

}  // namespace fpq::softfloat::kernels
