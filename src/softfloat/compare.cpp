// IEEE 754 comparisons.
//
// Two quiz-relevant behaviors live here: NaN compares unordered with
// everything including itself (the paper's Identity question: a == a is NOT
// always true), and +0 == -0 (the Negative Zero question: two zeros are
// never unequal).

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

namespace {

// Total order on the finite/infinite encodings: fold the sign-magnitude
// encoding into a monotone signed key. DAZ is honoured so comparisons see
// the same operand values arithmetic would.
template <int kBits>
std::int64_t magnitude_key(Float<kBits> x, const Env& env) noexcept {
  auto mag = static_cast<std::int64_t>(
      x.bits & ~FormatConstants<kBits>::kSignMask);
  if (env.denormals_are_zero() && x.is_subnormal()) mag = 0;
  return x.sign() ? -mag : mag;
}

template <int kBits>
Ordering compare_ordered(Float<kBits> a, Float<kBits> b,
                         const Env& env) noexcept {
  const std::int64_t ka = magnitude_key(a, env);
  const std::int64_t kb = magnitude_key(b, env);
  // -0 and +0 both map to key 0, so they compare equal here.
  if (ka < kb) return Ordering::kLess;
  if (ka > kb) return Ordering::kGreater;
  return Ordering::kEqual;
}

}  // namespace

template <int kBits>
Ordering compare_quiet(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  if (a.is_nan() || b.is_nan()) {
    if (a.is_signaling_nan() || b.is_signaling_nan()) {
      env.raise(kFlagInvalid);
    }
    return Ordering::kUnordered;
  }
  return compare_ordered(a, b, env);
}

template <int kBits>
Ordering compare_signaling(Float<kBits> a, Float<kBits> b,
                           Env& env) noexcept {
  if (a.is_nan() || b.is_nan()) {
    env.raise(kFlagInvalid);
    return Ordering::kUnordered;
  }
  return compare_ordered(a, b, env);
}

template <int kBits>
bool equal(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  return compare_quiet(a, b, env) == Ordering::kEqual;
}

template <int kBits>
bool less(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  return compare_signaling(a, b, env) == Ordering::kLess;
}

template <int kBits>
bool less_equal(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  const Ordering o = compare_signaling(a, b, env);
  return o == Ordering::kLess || o == Ordering::kEqual;
}

template Ordering compare_quiet<16>(Float16, Float16, Env&) noexcept;
template Ordering compare_quiet<32>(Float32, Float32, Env&) noexcept;
template Ordering compare_quiet<64>(Float64, Float64, Env&) noexcept;
template Ordering compare_quiet<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template Ordering compare_signaling<16>(Float16, Float16, Env&) noexcept;
template Ordering compare_signaling<32>(Float32, Float32, Env&) noexcept;
template Ordering compare_signaling<64>(Float64, Float64, Env&) noexcept;
template Ordering compare_signaling<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template bool equal<16>(Float16, Float16, Env&) noexcept;
template bool equal<32>(Float32, Float32, Env&) noexcept;
template bool equal<64>(Float64, Float64, Env&) noexcept;
template bool equal<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template bool less<16>(Float16, Float16, Env&) noexcept;
template bool less<32>(Float32, Float32, Env&) noexcept;
template bool less<64>(Float64, Float64, Env&) noexcept;
template bool less<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;
template bool less_equal<16>(Float16, Float16, Env&) noexcept;
template bool less_equal<32>(Float32, Float32, Env&) noexcept;
template bool less_equal<64>(Float64, Float64, Env&) noexcept;
template bool less_equal<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
