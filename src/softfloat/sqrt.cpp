// Square root with correct rounding: classic restoring (digit-by-digit)
// integer square root over a 128-bit radicand; the remainder supplies the
// sticky bit. sqrt is correctly rounded in IEEE 754 just like the four
// basic operations, which surprises many developers.

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

namespace {

using detail::U128;

// floor(sqrt(x)) for a 128-bit radicand; sets `exact` when x is a perfect
// square. Restoring method, two radicand bits per iteration.
std::uint64_t isqrt128(U128 x, bool& exact) noexcept {
  U128 rem = 0;
  U128 root = 0;
  for (int i = 0; i < 64; ++i) {
    rem = (rem << 2) | (x >> 126);
    x <<= 2;
    root <<= 1;
    const U128 trial = (root << 1) | 1;
    if (rem >= trial) {
      rem -= trial;
      root |= 1;
    }
  }
  exact = rem == 0;
  return static_cast<std::uint64_t>(root);
}

}  // namespace

template <int kBits>
Float<kBits> sqrt(Float<kBits> a, Env& env) noexcept {
  if (a.is_nan()) return detail::propagate_nan(a, a, env);
  if (a.is_zero()) return a;  // sqrt(±0) = ±0 per the standard
  if (a.sign()) return detail::invalid_result<kBits>(env);
  if (a.is_infinity()) return a;

  const detail::Unpacked u = detail::unpack_finite(a, env);
  if (u.sig == 0) return Float<kBits>::zero(false);  // DAZ-flushed input

  // Shift so the radicand exponent is even:
  //   value = sig * 2^(e-63) = (sig << s) * 2^(e-63-s), e-63-s even.
  const int s = ((u.exp & 1) == 0) ? 63 : 62;
  const U128 radicand = U128{u.sig} << s;
  bool exact = false;
  const std::uint64_t root = isqrt128(radicand, exact);
  // value = root * 2^((e-63-s)/2); helper scaling E - 127 = (e-63-s)/2.
  const std::int32_t e = (u.exp - 63 - s) / 2 + 127;
  return detail::normalize_round_pack<kBits>(false, e, U128{root}, !exact,
                                             env);
}

template Float16 sqrt<16>(Float16, Env&) noexcept;
template Float32 sqrt<32>(Float32, Env&) noexcept;
template Float64 sqrt<64>(Float64, Env&) noexcept;
template BFloat16 sqrt<kBFloat16>(BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
