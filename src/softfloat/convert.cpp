// Conversions: between binary formats, and to/from int64.
//
// Narrowing (e.g. double -> half) is where "Operation Precision" style
// surprises concentrate: values round, overflow to infinity, or flush into
// the subnormal range. Widening is always exact.

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

template <int kTo, int kFrom>
Float<kTo> convert(Float<kFrom> x, Env& env) noexcept {
  using CFrom = FormatConstants<kFrom>;
  using CTo = FormatConstants<kTo>;
  using ToStorage = typename CTo::Storage;

  if (x.is_nan()) {
    if (x.is_signaling_nan()) env.raise(kFlagInvalid);
    // Preserve sign and as much payload as fits; always quiet.
    std::uint64_t payload = static_cast<std::uint64_t>(x.fraction());
    if constexpr (CTo::kSigBits >= CFrom::kSigBits) {
      payload <<= (CTo::kSigBits - CFrom::kSigBits);
    } else {
      payload >>= (CFrom::kSigBits - CTo::kSigBits);
    }
    const auto bits = static_cast<ToStorage>(
        CTo::kExpMask | CTo::kQuietBit | static_cast<ToStorage>(payload));
    return Float<kTo>{bits}.with_sign(x.sign());
  }
  if (x.is_infinity()) return Float<kTo>::infinity(x.sign());

  const detail::Unpacked u = detail::unpack_finite(x, env);
  if (u.sig == 0) return Float<kTo>::zero(u.sign);
  return detail::round_pack<kTo>(u.sign, u.exp, u.sig, false, env);
}

template <int kBits>
Float<kBits> from_int64(std::int64_t v, Env& env) noexcept {
  if (v == 0) return Float<kBits>::zero(false);
  const bool sign = v < 0;
  const std::uint64_t mag =
      sign ? 0 - static_cast<std::uint64_t>(v) : static_cast<std::uint64_t>(v);
  const int lz = std::countl_zero(mag);
  return detail::round_pack<kBits>(sign, 63 - lz, mag << lz, false, env);
}

template <int kBits>
std::int64_t to_int64(Float<kBits> x, Env& env) noexcept {
  constexpr std::int64_t kMin = std::int64_t{-1} - 0x7FFFFFFFFFFFFFFF;
  constexpr std::int64_t kMax = 0x7FFFFFFFFFFFFFFF;
  if (x.is_nan()) {
    env.raise(kFlagInvalid);
    return kMin;  // x86 "integer indefinite"
  }
  if (x.is_infinity()) {
    env.raise(kFlagInvalid);
    return x.sign() ? kMin : kMax;
  }
  const detail::Unpacked u = detail::unpack_finite(x, env);
  if (u.sig == 0) return 0;

  std::uint64_t int_mag;
  bool round_bit = false;
  bool sticky = false;
  if (u.exp >= 64) {
    env.raise(kFlagInvalid);
    return u.sign ? kMin : kMax;
  }
  if (u.exp >= 63) {
    int_mag = u.sig;  // exp == 63: value == sig exactly
  } else {
    const int shift = 63 - u.exp;  // >= 1
    if (shift <= 63) {
      int_mag = u.sig >> shift;
      round_bit = (u.sig >> (shift - 1)) & 1;
      sticky = shift > 1 &&
               (u.sig & ((std::uint64_t{1} << (shift - 1)) - 1)) != 0;
    } else if (shift == 64) {
      int_mag = 0;
      round_bit = (u.sig >> 63) & 1;
      sticky = (u.sig & 0x7FFFFFFFFFFFFFFFULL) != 0;
    } else {
      int_mag = 0;
      round_bit = false;
      sticky = true;
    }
  }
  const bool inexact = round_bit || sticky;
  if (detail::round_increment(env.rounding(), u.sign, int_mag & 1, round_bit,
                              sticky)) {
    // Cannot wrap: int_mag < 2^63 whenever rounding bits exist.
    ++int_mag;
  }

  if (!u.sign && int_mag > static_cast<std::uint64_t>(kMax)) {
    env.raise(kFlagInvalid);
    return kMax;
  }
  if (u.sign && int_mag > (std::uint64_t{1} << 63)) {
    env.raise(kFlagInvalid);
    return kMin;
  }
  if (inexact) env.raise(kFlagInexact);
  if (u.sign) {
    return static_cast<std::int64_t>(0 - int_mag);
  }
  return static_cast<std::int64_t>(int_mag);
}

template Float16 convert<16, 16>(Float16, Env&) noexcept;
template Float32 convert<32, 32>(Float32, Env&) noexcept;
template Float64 convert<64, 64>(Float64, Env&) noexcept;
template Float16 convert<16, 32>(Float32, Env&) noexcept;
template Float16 convert<16, 64>(Float64, Env&) noexcept;
template Float32 convert<32, 16>(Float16, Env&) noexcept;
template Float32 convert<32, 64>(Float64, Env&) noexcept;
template Float64 convert<64, 16>(Float16, Env&) noexcept;
template Float64 convert<64, 32>(Float32, Env&) noexcept;
template BFloat16 convert<kBFloat16, kBFloat16>(BFloat16, Env&) noexcept;
template BFloat16 convert<kBFloat16, 16>(Float16, Env&) noexcept;
template BFloat16 convert<kBFloat16, 32>(Float32, Env&) noexcept;
template BFloat16 convert<kBFloat16, 64>(Float64, Env&) noexcept;
template Float16 convert<16, kBFloat16>(BFloat16, Env&) noexcept;
template Float32 convert<32, kBFloat16>(BFloat16, Env&) noexcept;
template Float64 convert<64, kBFloat16>(BFloat16, Env&) noexcept;
template Float16 from_int64<16>(std::int64_t, Env&) noexcept;
template Float32 from_int64<32>(std::int64_t, Env&) noexcept;
template Float64 from_int64<64>(std::int64_t, Env&) noexcept;
template BFloat16 from_int64<kBFloat16>(std::int64_t, Env&) noexcept;
template std::int64_t to_int64<16>(Float16, Env&) noexcept;
template std::int64_t to_int64<32>(Float32, Env&) noexcept;
template std::int64_t to_int64<64>(Float64, Env&) noexcept;
template std::int64_t to_int64<kBFloat16>(BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
