// fpq::softfloat — internal unpack / round / pack machinery.
//
// Internal representation of a finite nonzero value during computation:
//
//     value = (-1)^sign * sig * 2^(exp - 63)
//
// with `sig` a 64-bit significand normalized so its most significant bit
// (bit 63) is set; `exp` is then exactly the unbiased IEEE exponent. Wide
// intermediates (products, aligned sums, quotients) are carried in unsigned
// __int128 with value = D * 2^(exp - 127) and folded back through
// normalize_round_pack(). Discarded low-order bits are tracked through a
// single sticky flag, which together with the in-register guard/round bits
// is sufficient for correct rounding in all five modes (floor + sticky
// representation; see DESIGN.md).
//
// This header is internal to the softfloat module; public API is ops.hpp.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::softfloat::detail {

using U128 = unsigned __int128;

/// Unpacked finite nonzero value (see file comment for the scaling).
struct Unpacked {
  bool sign = false;
  std::int32_t exp = 0;
  std::uint64_t sig = 0;  ///< bit 63 set
};

/// Unpacks a value known to be normal or subnormal (caller has dispatched
/// specials already). Applies DAZ: a subnormal input with
/// env.denormals_are_zero() unpacks as zero — signalled by returning
/// sig == 0. Raises kFlagDenormalInput for subnormal operands when DAZ is
/// off (mirrors x86's DE bit).
template <int kBits>
inline Unpacked unpack_finite(Float<kBits> x, Env& env) noexcept {
  using C = FormatConstants<kBits>;
  Unpacked u;
  u.sign = x.sign();
  const int biased = x.biased_exponent();
  const auto frac = static_cast<std::uint64_t>(x.fraction());
  if (biased != 0) {  // normal
    const std::uint64_t sig = frac | (std::uint64_t{1} << C::kSigBits);
    u.sig = sig << (63 - C::kSigBits);
    u.exp = biased - C::kBias;
    return u;
  }
  if (frac == 0) {  // zero
    u.sig = 0;
    return u;
  }
  // Subnormal.
  if (env.denormals_are_zero()) {
    u.sig = 0;
    return u;
  }
  env.raise(kFlagDenormalInput);
  const int top = 63 - std::countl_zero(frac);  // highest set bit index
  u.sig = frac << (63 - top);
  u.exp = C::kEmin - C::kSigBits + top;
  return u;
}

/// True if rounding should increment the kept significand.
inline bool round_increment(Rounding mode, bool sign, bool lsb, bool round_bit,
                            bool sticky) noexcept {
  switch (mode) {
    case Rounding::kNearestEven:
      return round_bit && (sticky || lsb);
    case Rounding::kNearestAway:
      return round_bit;
    case Rounding::kTowardZero:
      return false;
    case Rounding::kDown:
      return sign && (round_bit || sticky);
    case Rounding::kUp:
      return !sign && (round_bit || sticky);
  }
  return false;
}

/// The overflow result mandated by the standard for each rounding mode:
/// infinity or the largest finite number, depending on direction and sign.
/// Raises overflow and inexact.
template <int kBits>
inline Float<kBits> overflow_result(bool sign, Env& env) noexcept {
  env.raise(kFlagOverflow | kFlagInexact);
  switch (env.rounding()) {
    case Rounding::kNearestEven:
    case Rounding::kNearestAway:
      return Float<kBits>::infinity(sign);
    case Rounding::kTowardZero:
      return Float<kBits>::max_finite(sign);
    case Rounding::kDown:
      return sign ? Float<kBits>::infinity(true)
                  : Float<kBits>::max_finite(false);
    case Rounding::kUp:
      return sign ? Float<kBits>::max_finite(true)
                  : Float<kBits>::infinity(false);
  }
  return Float<kBits>::infinity(sign);
}

/// Packs already-rounded fields. `kept` includes the implicit bit for
/// normals (kept in [2^(p-1), 2^p)) or is the subnormal fraction
/// (kept < 2^(p-1)) paired with exp == kEmin.
template <int kBits>
inline Float<kBits> pack(bool sign, std::int32_t exp,
                         std::uint64_t kept) noexcept {
  using C = FormatConstants<kBits>;
  using Storage = typename C::Storage;
  const std::uint64_t implicit = std::uint64_t{1} << C::kSigBits;
  Storage bits;
  if (kept >= implicit) {
    const auto biased = static_cast<std::uint64_t>(exp + C::kBias);
    bits = static_cast<Storage>((biased << C::kSigBits) | (kept - implicit));
  } else {
    bits = static_cast<Storage>(kept);  // subnormal or zero: biased exp 0
  }
  if (sign) bits |= C::kSignMask;
  return Float<kBits>{bits};
}

/// Rounds and packs a normalized significand (bit 63 of `sig` set), raising
/// inexact/overflow/underflow as appropriate and honouring FTZ. `sticky`
/// ORs in any bits already discarded by the caller.
template <int kBits>
inline Float<kBits> round_pack(bool sign, std::int32_t exp, std::uint64_t sig,
                               bool sticky, Env& env) noexcept {
  using C = FormatConstants<kBits>;
  constexpr int kP = C::kPrecision;
  constexpr int kRoundPos = 63 - kP;  // bit index of the round bit
  assert((sig >> 63) == 1);

  const Rounding mode = env.rounding();

  auto round_at = [&](std::uint64_t s, bool extra_sticky, bool& inexact,
                      bool& carry) -> std::uint64_t {
    std::uint64_t kept = s >> (64 - kP);
    const bool round_bit = (s >> kRoundPos) & 1;
    const bool low_sticky =
        (s & ((std::uint64_t{1} << kRoundPos) - 1)) != 0 || extra_sticky;
    inexact = round_bit || low_sticky;
    if (round_increment(mode, sign, kept & 1, round_bit, low_sticky)) {
      ++kept;
      if (kept == (std::uint64_t{1} << kP)) {
        kept >>= 1;
        carry = true;
        return kept;
      }
    }
    carry = false;
    return kept;
  };

  if (exp >= C::kEmin) {
    bool inexact = false;
    bool carry = false;
    const std::uint64_t kept = round_at(sig, sticky, inexact, carry);
    const std::int32_t rexp = exp + (carry ? 1 : 0);
    if (rexp > C::kEmax) return overflow_result<kBits>(sign, env);
    if (inexact) env.raise(kFlagInexact);
    return pack<kBits>(sign, rexp, kept);
  }

  // Tiny path: denormalize to exponent kEmin, then round.
  const std::int32_t shift = C::kEmin - exp;  // >= 1
  std::uint64_t dsig;
  bool dsticky = sticky;
  if (shift >= 64) {
    dsig = 0;
    dsticky = dsticky || sig != 0;
  } else {
    dsig = sig >> shift;
    dsticky = dsticky || (sig << (64 - shift)) != 0;
  }

  // Round the denormalized significand at the same in-register position.
  std::uint64_t kept = dsig >> (64 - kP);
  const bool round_bit = (dsig >> kRoundPos) & 1;
  const bool low_sticky =
      (dsig & ((std::uint64_t{1} << kRoundPos) - 1)) != 0 || dsticky;
  const bool inexact = round_bit || low_sticky;
  if (round_increment(mode, sign, kept & 1, round_bit, low_sticky)) {
    ++kept;  // may become the implicit bit: smallest normal, handled by pack
  }

  if (inexact) {
    // Tininess is detected after rounding (as on x86 SSE): the value is not
    // tiny when rounding at unbounded exponent range would have carried it
    // up to 2^kEmin, i.e. exp == kEmin - 1 and the full-width rounding
    // carries out of the significand.
    bool not_tiny = false;
    if (exp == C::kEmin - 1) {
      bool unbounded_inexact = false;
      bool unbounded_carry = false;
      (void)round_at(sig, sticky, unbounded_inexact, unbounded_carry);
      not_tiny = unbounded_carry;
    }
    env.raise(kFlagInexact);
    if (!not_tiny) env.raise(kFlagUnderflow);
  }

  if (env.flush_to_zero() && kept != 0 &&
      kept < (std::uint64_t{1} << (kP - 1))) {
    // Non-standard flush: subnormal result becomes signed zero.
    env.raise(kFlagUnderflow | kFlagInexact);
    return Float<kBits>::zero(sign);
  }
  return pack<kBits>(sign, C::kEmin, kept);
}

/// Normalizes a nonzero 128-bit intermediate D with
/// value = D * 2^(exp - 127) and rounds/packs it.
template <int kBits>
inline Float<kBits> normalize_round_pack(bool sign, std::int32_t exp, U128 d,
                                         bool sticky, Env& env) noexcept {
  assert(d != 0);
  const auto hi = static_cast<std::uint64_t>(d >> 64);
  const auto lo = static_cast<std::uint64_t>(d);
  const int top = hi != 0 ? 127 - std::countl_zero(hi)
                          : 63 - std::countl_zero(lo);
  std::uint64_t sig;
  if (top >= 64) {
    const int shift = top - 63;  // in [1, 64]
    sig = static_cast<std::uint64_t>(d >> shift);
    const U128 lost = d & ((U128{1} << shift) - 1);
    sticky = sticky || lost != 0;
  } else if (top == 63) {
    sig = lo;
  } else {
    sig = lo << (63 - top);
  }
  return round_pack<kBits>(sign, exp - 127 + top, sig, sticky, env);
}

/// NaN propagation for binary operations: the first NaN operand, quieted.
/// Raises invalid if either operand is a signaling NaN.
template <int kBits>
inline Float<kBits> propagate_nan(Float<kBits> a, Float<kBits> b,
                                  Env& env) noexcept {
  if (a.is_signaling_nan() || b.is_signaling_nan()) env.raise(kFlagInvalid);
  if (a.is_nan()) return a.quieted();
  return b.quieted();
}

/// NaN propagation for ternary operations (fma), in operand order.
template <int kBits>
inline Float<kBits> propagate_nan(Float<kBits> a, Float<kBits> b,
                                  Float<kBits> c, Env& env) noexcept {
  if (a.is_signaling_nan() || b.is_signaling_nan() || c.is_signaling_nan()) {
    env.raise(kFlagInvalid);
  }
  if (a.is_nan()) return a.quieted();
  if (b.is_nan()) return b.quieted();
  return c.quieted();
}

/// The default NaN produced by an invalid operation.
template <int kBits>
inline Float<kBits> invalid_result(Env& env) noexcept {
  env.raise(kFlagInvalid);
  return Float<kBits>::quiet_nan();
}

/// Sign of an exact-zero sum/difference: +0 in every rounding mode except
/// roundTowardNegative, where it is -0 (IEEE 754-2008 §6.3).
inline bool exact_zero_sign(Env& env) noexcept {
  return env.rounding() == Rounding::kDown;
}

}  // namespace fpq::softfloat::detail
