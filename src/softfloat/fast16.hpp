// fpq::softfloat — binary16 fast-path primitives for the batched tape
// executor.
//
// Lanes hold binary16 VALUES as native doubles; arithmetic runs on the
// host FPU (pinned to round-to-nearest by the caller) and each result is
// folded back in-format through the same detail::round_pack<16> core the
// scalar engine uses, so values and flags are bit-identical to the
// softfloat operations by construction rather than by reimplementation:
//
//  - add/sub/mul of binary16 values are EXACT in binary64 (11-bit
//    significands, |exponent| <= 24 quanta against a 53-bit target), so
//    the native result is the infinitely precise result and the one
//    round_pack rounding is the only rounding that ever happens.
//  - div/sqrt are correctly rounded in binary64, and with 53 >= 2*11 + 2
//    the extra binary64 rounding is innocuous in every rounding mode: a
//    quotient (root) of binary16 values is either exactly a binary16
//    rounding boundary or separated from every boundary by far more than
//    the binary64 rounding error, so the boundary comparisons inside
//    round_pack come out the same as for the exact value.
//  - fma residues CAN land closer to a boundary than binary64 can
//    represent (e.g. 65504 + 2^-48), so the caller compresses the exact
//    sum through TwoSum + round-to-odd before handing it to round16().
//
// Anything special — NaN or infinity operands, division by zero, sqrt of
// a negative — is expected to take the scalar softfloat operation for
// that lane instead (see tape_batch.cpp), which also keeps NaN payload
// propagation canonical. This header is internal to the softfloat module.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat::fast16 {

inline constexpr std::uint64_t kExpMask64 = 0x7FF0000000000000ull;
inline constexpr std::uint64_t kFracMask64 = 0x000FFFFFFFFFFFFFull;

inline bool is_finite(double v) noexcept {
  return (std::bit_cast<std::uint64_t>(v) & kExpMask64) != kExpMask64;
}

/// True for a value in binary16's subnormal range (0 < |v| < 2^-14) —
/// the operands that raise kFlagDenormalInput / get flushed by DAZ.
inline bool is_subnormal16(double v) noexcept {
  return v != 0.0 && std::fabs(v) < 0x1p-14;
}

/// DAZ operand flush: binary16-subnormal magnitudes become signed zero.
inline double daz16(double v) noexcept {
  return std::fabs(v) < 0x1p-14 ? std::copysign(0.0, v) : v;
}

/// Exact widening of a binary16 encoding to its double value (including
/// NaN payloads, which land in the same bits convert<64,16> puts them in).
inline double widen(Float16 x) noexcept {
  const auto be = static_cast<std::uint64_t>(x.biased_exponent());
  const std::uint64_t sign = x.sign() ? (std::uint64_t{1} << 63) : 0;
  const auto frac = static_cast<std::uint64_t>(x.fraction());
  if (be == 0x1F) {  // infinity / NaN: payload shifts into the top bits
    return std::bit_cast<double>(sign | kExpMask64 | (frac << 42));
  }
  if (be != 0) {  // normal: rebias 15 -> 1023
    return std::bit_cast<double>(sign | ((be - 15 + 1023) << 52) |
                                 (frac << 42));
  }
  if (frac == 0) return std::bit_cast<double>(sign);
  // Subnormal: value = frac * 2^-24, normalized into a double.
  const int top = 63 - std::countl_zero(frac);  // 0..9
  const std::uint64_t mant = (frac ^ (std::uint64_t{1} << top)) << (52 - top);
  const auto bexp = static_cast<std::uint64_t>(top - 24 + 1023);
  return std::bit_cast<double>(sign | (bexp << 52) | mant);
}

/// Rounds a NORMAL nonzero double into binary16 through the scalar
/// engine's round/pack core (all five modes, FTZ, tininess-after-rounding,
/// per-mode overflow results) and returns the value re-widened to double.
/// Flags accumulate on `env` exactly as the softfloat operation would
/// raise them. The caller guarantees `x` is finite, nonzero, and not a
/// double-subnormal (every nonzero result of binary16 arithmetic is a
/// normal double: the smallest magnitude any op can produce is 2^-48).
inline double round16(double x, Env& env) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const bool sign = (b >> 63) != 0;
  const auto exp = static_cast<std::int32_t>((b >> 52) & 0x7FF) - 1023;
  const std::uint64_t sig = ((b & kFracMask64) | (std::uint64_t{1} << 52))
                            << 11;
  return widen(detail::round_pack<16>(sign, exp, sig, false, env));
}

/// Bit pattern of the largest finite binary16 value (65504) widened to
/// double, sign cleared: anything above it after rounding overflowed.
inline constexpr std::uint64_t kMaxMag16 =
    (std::uint64_t{1038} << 52) | (std::uint64_t{0x3FF} << 42);

/// Value-only narrowing of a NORMAL nonzero double to the nearest
/// binary16 value under `mode`, returned re-widened to double. Computes
/// no flags — it exists for operand narrowing (tape kVar lanes), where
/// flags are discarded by contract, and is several times cheaper than
/// round16(). Works by add-and-mask rounding on the double's bit
/// pattern: within the binary16 value set, consecutive values are a
/// fixed pattern step apart (2^42 for normals, 2^(42+shift) in the
/// subnormal range) and the carry out of the fraction walks binades, so
/// one masked integer add rounds correctly in every mode; the kept lsb
/// of the pattern is the parity ties-to-even needs.
inline double narrow16_value(double x, Rounding mode) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t sign = b & (std::uint64_t{1} << 63);
  std::uint64_t mag = b ^ sign;
  const int e = static_cast<int>(mag >> 52) - 1023;
  if (e <= -25) {
    // At or below half the smallest subnormal (2^-25): the candidates
    // are 0 and 2^-24, decided by mode and which side of half we're on.
    bool away = false;
    switch (mode) {
      case Rounding::kNearestEven:
        away = e == -25 && (mag & kFracMask64) != 0;  // ties go to 0
        break;
      case Rounding::kNearestAway: away = e == -25; break;
      case Rounding::kTowardZero: break;
      case Rounding::kUp: away = sign == 0; break;
      case Rounding::kDown: away = sign != 0; break;
    }
    return std::bit_cast<double>(
        sign | (away ? std::bit_cast<std::uint64_t>(0x1p-24) : 0));
  }
  const int q = e < -14 ? 42 + (-14 - e) : 42;  // first discarded bit
  const std::uint64_t low = (std::uint64_t{1} << q) - 1;
  switch (mode) {
    case Rounding::kNearestEven:
      mag += (low >> 1) + ((mag >> q) & 1);
      break;
    case Rounding::kNearestAway:
      mag += (low >> 1) + 1;  // exactly half: ties carry away
      break;
    case Rounding::kTowardZero: break;
    case Rounding::kUp:
      if (sign == 0) mag += low;
      break;
    case Rounding::kDown:
      if (sign != 0) mag += low;
      break;
  }
  mag &= ~low;
  if (mag > kMaxMag16) {  // per-mode overflow saturation
    const bool to_inf = mode == Rounding::kNearestEven ||
                        mode == Rounding::kNearestAway ||
                        (mode == Rounding::kUp && sign == 0) ||
                        (mode == Rounding::kDown && sign != 0);
    mag = to_inf ? kExpMask64 : kMaxMag16;
  }
  return std::bit_cast<double>(sign | mag);
}

/// Exact narrowing of an in-format (binary16-valued) double back to the
/// encoding, for handing a lane to a scalar softfloat fallback.
inline Float16 to_f16(double v) noexcept {
  Env quiet;
  return convert<16>(from_native(v), quiet);
}

/// Deterministic sign-bit flip (IEEE negate: no flags, NaN sign flips).
inline double flip_sign(double v) noexcept {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                               (std::uint64_t{1} << 63));
}

/// One ulp step toward the sign of `dir` (caller guarantees the step
/// cannot cross zero or leave the finite range).
inline double step_toward(double s, double dir) noexcept {
  std::uint64_t b = std::bit_cast<std::uint64_t>(s);
  b += ((dir > 0.0) == (s > 0.0)) ? 1u : std::uint64_t(-1);
  return std::bit_cast<double>(b);
}

/// The sign of an exact-zero sum (IEEE 754-2008 §6.3): positive in every
/// rounding mode except roundTowardNegative.
inline bool exact_zero_sign(Rounding mode) noexcept {
  return mode == Rounding::kDown;
}

}  // namespace fpq::softfloat::fast16
