// fpq::softfloat — arithmetic environment: rounding mode, sticky exception
// flags, and the non-standard flush modes the paper's optimization quiz is
// about (FTZ / DAZ).
//
// An Env is passed by reference into every operation; flags accumulate
// exactly like the hardware's MXCSR/FPSR sticky bits. This is what lets the
// quiz harness demonstrate, in software, the difference between standard
// gradual underflow and flush-to-zero hardware.
#pragma once

#include <string>

namespace fpq::softfloat {

/// IEEE 754-2008 rounding-direction attributes.
enum class Rounding {
  kNearestEven,  ///< roundTiesToEven (the default everywhere)
  kTowardZero,   ///< roundTowardZero
  kDown,         ///< roundTowardNegative
  kUp,           ///< roundTowardPositive
  kNearestAway,  ///< roundTiesToAway
};

/// The five IEEE exception flags, plus a diagnostic flag this engine adds:
/// kDenormalInput records that an operation consumed a subnormal operand
/// (mirroring x86's DE bit, which fpmon and the suspicion quiz care about).
enum Flag : unsigned {
  kFlagInvalid = 1u << 0,
  kFlagDivByZero = 1u << 1,
  kFlagOverflow = 1u << 2,
  kFlagUnderflow = 1u << 3,
  kFlagInexact = 1u << 4,
  kFlagDenormalInput = 1u << 5,
};

inline constexpr unsigned kAllFlags = kFlagInvalid | kFlagDivByZero |
                                      kFlagOverflow | kFlagUnderflow |
                                      kFlagInexact | kFlagDenormalInput;

/// Human-readable rendering such as "invalid|inexact" ("none" when empty).
std::string flags_to_string(unsigned flags);

/// Human-readable rounding mode name.
std::string rounding_to_string(Rounding r);

/// The arithmetic environment. Copyable value type; no global state.
class Env {
 public:
  Env() noexcept = default;
  explicit Env(Rounding r) noexcept : rounding_(r) {}

  Rounding rounding() const noexcept { return rounding_; }
  void set_rounding(Rounding r) noexcept { rounding_ = r; }

  /// Non-standard mode: flush subnormal *results* to signed zero
  /// (raises underflow and inexact when it fires), like x86 FTZ.
  bool flush_to_zero() const noexcept { return ftz_; }
  void set_flush_to_zero(bool on) noexcept { ftz_ = on; }

  /// Non-standard mode: treat subnormal *inputs* as signed zero,
  /// like x86 DAZ.
  bool denormals_are_zero() const noexcept { return daz_; }
  void set_denormals_are_zero(bool on) noexcept { daz_ = on; }

  void raise(unsigned flags) noexcept { flags_ |= flags; }
  bool test(unsigned flags) const noexcept { return (flags_ & flags) != 0; }
  unsigned flags() const noexcept { return flags_; }
  void clear_flags() noexcept { flags_ = 0; }

  /// True when this Env is configured exactly as IEEE default arithmetic:
  /// round-to-nearest-even, no flush modes.
  bool is_ieee_default() const noexcept {
    return rounding_ == Rounding::kNearestEven && !ftz_ && !daz_;
  }

 private:
  Rounding rounding_ = Rounding::kNearestEven;
  unsigned flags_ = 0;
  bool ftz_ = false;
  bool daz_ = false;
};

}  // namespace fpq::softfloat
