// Fused multiply-add: a * b + c with one rounding at the end.
//
// The full 128-bit product is kept exact; the addend is widened to the same
// 128-bit significand scale, both are normalized to bit 127, and the
// addition/subtraction is performed before a single normalize/round/pack.
// This operation is the subject of the paper's MADD optimization-quiz
// question: it is part of IEEE 754-2008 but absent from 754-1985, and a
// contracted a*b+c generally differs from mul-then-add in the last place.

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

namespace {

using detail::U128;

constexpr U128 kTopBit = U128{1} << 127;

// A 128-bit significand normalized to bit 127 with its exponent:
// value = sig * 2^(exp - 127).
struct Wide {
  std::int32_t exp = 0;
  U128 sig = 0;
};

}  // namespace

template <int kBits>
Float<kBits> fma(Float<kBits> a, Float<kBits> b, Float<kBits> c,
                 Env& env) noexcept {
  const bool prod_sign = a.sign() != b.sign();
  const bool zero_times_inf = (a.is_zero() && b.is_infinity()) ||
                              (a.is_infinity() && b.is_zero());

  if (a.is_nan() || b.is_nan() || c.is_nan()) {
    // 0 * inf is invalid even when the addend is a quiet NaN (matching the
    // x86 FMA instructions).
    if (zero_times_inf) env.raise(kFlagInvalid);
    return detail::propagate_nan(a, b, c, env);
  }
  if (zero_times_inf) return detail::invalid_result<kBits>(env);

  if (a.is_infinity() || b.is_infinity()) {
    if (c.is_infinity() && c.sign() != prod_sign) {
      return detail::invalid_result<kBits>(env);  // inf - inf
    }
    return Float<kBits>::infinity(prod_sign);
  }
  if (c.is_infinity()) return c;

  const detail::Unpacked ua = detail::unpack_finite(a, env);
  const detail::Unpacked ub = detail::unpack_finite(b, env);
  const detail::Unpacked uc = detail::unpack_finite(c, env);

  if (ua.sig == 0 || ub.sig == 0) {
    // Exact product zero: result is 0 + c.
    if (uc.sig == 0) {
      if (prod_sign == uc.sign) return Float<kBits>::zero(prod_sign);
      return Float<kBits>::zero(detail::exact_zero_sign(env));
    }
    return detail::round_pack<kBits>(uc.sign, uc.exp, uc.sig, false, env);
  }

  // Exact product, normalized to bit 127.
  Wide prod;
  prod.sig = U128{ua.sig} * ub.sig;          // in [2^126, 2^128)
  prod.exp = ua.exp + ub.exp + 1;            // value = sig * 2^(exp - 127)
  if ((prod.sig & kTopBit) == 0) {
    prod.sig <<= 1;
    prod.exp -= 1;
  }

  if (uc.sig == 0) {
    return detail::normalize_round_pack<kBits>(prod_sign, prod.exp, prod.sig,
                                               false, env);
  }

  // Addend widened to the same scale and normalized to bit 127.
  Wide add;
  add.sig = U128{uc.sig} << 64;              // bit 127 set
  add.exp = uc.exp;                          // sigC*2^64 * 2^(ec-127) = value

  const bool prod_is_big =
      prod.exp > add.exp || (prod.exp == add.exp && prod.sig >= add.sig);
  const Wide& big = prod_is_big ? prod : add;
  const Wide& small = prod_is_big ? add : prod;
  const bool big_sign = prod_is_big ? prod_sign : uc.sign;
  const auto shift = static_cast<unsigned>(big.exp - small.exp);

  if (prod_sign == uc.sign) {
    // Magnitude addition.
    U128 small_shifted;
    bool sticky = false;
    if (shift == 0) {
      small_shifted = small.sig;
    } else if (shift <= 127) {
      small_shifted = small.sig >> shift;
      sticky = (small.sig & ((U128{1} << shift) - 1)) != 0;
    } else {
      small_shifted = 0;
      sticky = true;
    }
    U128 sum = big.sig + small_shifted;
    std::int32_t exp = big.exp;
    if (sum < big.sig) {  // carry out of bit 127
      sticky = sticky || (sum & 1) != 0;
      sum = (sum >> 1) | kTopBit;
      exp += 1;
    }
    return detail::normalize_round_pack<kBits>(big_sign, exp, sum, sticky,
                                               env);
  }

  // Magnitude subtraction big - small.
  if (shift == 0) {
    if (big.sig == small.sig) {
      return Float<kBits>::zero(detail::exact_zero_sign(env));
    }
    // Exact subtraction; cancellation is handled by normalization.
    return detail::normalize_round_pack<kBits>(big_sign, big.exp,
                                               big.sig - small.sig, false,
                                               env);
  }
  U128 small_shifted;
  bool sticky = false;
  if (shift <= 127) {
    small_shifted = small.sig >> shift;
    if ((small.sig & ((U128{1} << shift) - 1)) != 0) {
      small_shifted += 1;  // floor+sticky for a subtrahend
      sticky = true;
    }
  } else {
    small_shifted = 1;
    sticky = true;
  }
  const U128 diff = big.sig - small_shifted;
  if (diff == 0) {
    // Only reachable with shift == 1 and an odd small significand; the true
    // difference is then exactly one half unit of the last 128-bit place.
    return detail::normalize_round_pack<kBits>(big_sign, big.exp - 1, U128{1},
                                               false, env);
  }
  return detail::normalize_round_pack<kBits>(big_sign, big.exp, diff, sticky,
                                             env);
}

template Float16 fma<16>(Float16, Float16, Float16, Env&) noexcept;
template Float32 fma<32>(Float32, Float32, Float32, Env&) noexcept;
template Float64 fma<64>(Float64, Float64, Float64, Env&) noexcept;
template BFloat16 fma<kBFloat16>(BFloat16, BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
