#include "softfloat/batch.hpp"

#include "softfloat/batch_kernels.hpp"
#include "softfloat/kernels.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

namespace {

// Kernel dispatch happens here, inside the batch entry points, so every
// caller — tape execution, the sweep32 shard loops, direct users — flows
// through the accelerated kernels without changes. Only the ops with
// accelerated binary32 implementations branch; everything else (and the
// kScalar variant) keeps the scalar reference loops below.
inline bool use_kernels() noexcept {
  return active_kernel_variant() != KernelVariant::kScalar;
}
inline bool use_avx2() noexcept {
  return active_kernel_variant() == KernelVariant::kAvx2;
}

// One binary-op lane loop; the op itself is the scalar entry point, so
// per-lane semantics (rounding, FTZ/DAZ, flags) are the scalar engine's
// by construction.
template <int kBits, typename Op>
void binary_lanes(const Float<kBits>* a, const Float<kBits>* b,
                  Float<kBits>* out, unsigned* flags, std::size_t n,
                  Env& env, Op op) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    out[i] = op(a[i], b[i], env);
    flags[i] |= env.flags();
  }
}

}  // namespace

template <int kBits>
void add_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_kernels()) {
      kernels::portable::add32(a, b, out, flags, n, env);
      return;
    }
  }
  binary_lanes<kBits>(a, b, out, flags, n, env,
                      [](Float<kBits> x, Float<kBits> y, Env& e) {
                        return add(x, y, e);
                      });
}

template <int kBits>
void sub_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_kernels()) {
      kernels::portable::sub32(a, b, out, flags, n, env);
      return;
    }
  }
  binary_lanes<kBits>(a, b, out, flags, n, env,
                      [](Float<kBits> x, Float<kBits> y, Env& e) {
                        return sub(x, y, e);
                      });
}

template <int kBits>
void mul_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_kernels()) {
      kernels::portable::mul32(a, b, out, flags, n, env);
      return;
    }
  }
  binary_lanes<kBits>(a, b, out, flags, n, env,
                      [](Float<kBits> x, Float<kBits> y, Env& e) {
                        return mul(x, y, e);
                      });
}

template <int kBits>
void div_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
           unsigned* flags, std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_kernels()) {
      kernels::portable::div32(a, b, out, flags, n, env);
      return;
    }
  }
  binary_lanes<kBits>(a, b, out, flags, n, env,
                      [](Float<kBits> x, Float<kBits> y, Env& e) {
                        return div(x, y, e);
                      });
}

template <int kBits>
void sqrt_n(const Float<kBits>* a, Float<kBits>* out, unsigned* flags,
            std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_avx2()) {
      kernels::avx2::sqrt32(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::sqrt32(a, out, flags, n, env);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    out[i] = sqrt(a[i], env);
    flags[i] |= env.flags();
  }
}

template <int kBits>
void fma_n(const Float<kBits>* a, const Float<kBits>* b,
           const Float<kBits>* c, Float<kBits>* out, unsigned* flags,
           std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_kernels()) {
      kernels::portable::fma32(a, b, c, out, flags, n, env);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    out[i] = fma(a[i], b[i], c[i], env);
    flags[i] |= env.flags();
  }
}

template <int kBits>
void equal_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
             unsigned* flags, std::size_t n, Env& env) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    const bool r = equal(a[i], b[i], env);
    flags[i] |= env.flags();
    out[i] = r ? Float<kBits>::one() : Float<kBits>::zero();
  }
}

template <int kBits>
void less_n(const Float<kBits>* a, const Float<kBits>* b, Float<kBits>* out,
            unsigned* flags, std::size_t n, Env& env) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    const bool r = less(a[i], b[i], env);
    flags[i] |= env.flags();
    out[i] = r ? Float<kBits>::one() : Float<kBits>::zero();
  }
}

template <int kBits>
void neg_n(const Float<kBits>* a, Float<kBits>* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i].negated();
}

template <int kBits>
void round_int_n(const Float<kBits>* a, Float<kBits>* out, unsigned* flags,
                 std::size_t n, Env& env) noexcept {
  if constexpr (kBits == 32) {
    if (use_avx2()) {
      kernels::avx2::round_int32(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::round_int32(a, out, flags, n, env);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    out[i] = round_to_integral(a[i], env);
    flags[i] |= env.flags();
  }
}

template <int kTo, int kFrom>
void convert_n(const Float<kFrom>* a, Float<kTo>* out, unsigned* flags,
               std::size_t n, Env& env) noexcept {
  if constexpr (kTo == 16 && kFrom == 32) {
    if (use_avx2()) {
      kernels::avx2::narrow_32_to_16(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::narrow_32_to_16(a, out, flags, n, env);
      return;
    }
  } else if constexpr (kTo == kBFloat16 && kFrom == 32) {
    if (use_avx2()) {
      kernels::avx2::narrow_32_to_bf16(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::narrow_32_to_bf16(a, out, flags, n, env);
      return;
    }
  } else if constexpr (kTo == 32 && kFrom == 16) {
    if (use_avx2()) {
      kernels::avx2::widen_16_to_32(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::widen_16_to_32(a, out, flags, n, env);
      return;
    }
  } else if constexpr (kTo == 32 && kFrom == kBFloat16) {
    if (use_avx2()) {
      kernels::avx2::widen_bf16_to_32(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::widen_bf16_to_32(a, out, flags, n, env);
      return;
    }
  } else if constexpr (kTo == 64 && kFrom == 32) {
    if (use_avx2()) {
      kernels::avx2::widen_32_to_64(a, out, flags, n, env);
      return;
    }
    if (use_kernels()) {
      kernels::portable::widen_32_to_64(a, out, flags, n, env);
      return;
    }
  } else if constexpr (kTo == 32 && kFrom == 64) {
    // No AVX2 kernel (the hard band spans the whole binary32-subnormal
    // result range); portable still beats scalar.
    if (use_kernels()) {
      kernels::portable::narrow_64_to_32(a, out, flags, n, env);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    env.clear_flags();
    out[i] = convert<kTo, kFrom>(a[i], env);
    flags[i] |= env.flags();
  }
}

template <int kBits>
void narrow_from_double_n(const double* in, std::size_t stride,
                          Float<kBits>* out, std::size_t n,
                          const Env& env) noexcept {
  if constexpr (kBits == 64) {
    (void)env;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = from_native(in[i * stride]);
    }
  } else {
    // Quiet conversion with the caller's rounding and DAZ modes: flags a
    // narrowing raises are discarded, like the evaluators' literal and
    // operand narrowing.
    Env quiet(env.rounding());
    quiet.set_denormals_are_zero(env.denormals_are_zero());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = convert<kBits>(from_native(in[i * stride]), quiet);
    }
  }
}

template <int kBits>
void widen_to_double_n(const Float<kBits>* in, double* out,
                       std::size_t n) noexcept {
  if constexpr (kBits == 64) {
    for (std::size_t i = 0; i < n; ++i) out[i] = to_native(in[i]);
  } else {
    Env quiet;  // widening is exact
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = to_native(convert<64>(in[i], quiet));
    }
  }
}

template void add_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                        std::size_t, Env&) noexcept;
template void add_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                        std::size_t, Env&) noexcept;
template void add_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                        std::size_t, Env&) noexcept;
template void add_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                               unsigned*, std::size_t, Env&) noexcept;
template void sub_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                        std::size_t, Env&) noexcept;
template void sub_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                        std::size_t, Env&) noexcept;
template void sub_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                        std::size_t, Env&) noexcept;
template void sub_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                               unsigned*, std::size_t, Env&) noexcept;
template void mul_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                        std::size_t, Env&) noexcept;
template void mul_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                        std::size_t, Env&) noexcept;
template void mul_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                        std::size_t, Env&) noexcept;
template void mul_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                               unsigned*, std::size_t, Env&) noexcept;
template void div_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                        std::size_t, Env&) noexcept;
template void div_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                        std::size_t, Env&) noexcept;
template void div_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                        std::size_t, Env&) noexcept;
template void div_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                               unsigned*, std::size_t, Env&) noexcept;
template void sqrt_n<16>(const Float16*, Float16*, unsigned*, std::size_t,
                         Env&) noexcept;
template void sqrt_n<32>(const Float32*, Float32*, unsigned*, std::size_t,
                         Env&) noexcept;
template void sqrt_n<64>(const Float64*, Float64*, unsigned*, std::size_t,
                         Env&) noexcept;
template void sqrt_n<kBFloat16>(const BFloat16*, BFloat16*, unsigned*,
                                std::size_t, Env&) noexcept;
template void fma_n<16>(const Float16*, const Float16*, const Float16*,
                        Float16*, unsigned*, std::size_t, Env&) noexcept;
template void fma_n<32>(const Float32*, const Float32*, const Float32*,
                        Float32*, unsigned*, std::size_t, Env&) noexcept;
template void fma_n<64>(const Float64*, const Float64*, const Float64*,
                        Float64*, unsigned*, std::size_t, Env&) noexcept;
template void fma_n<kBFloat16>(const BFloat16*, const BFloat16*,
                               const BFloat16*, BFloat16*, unsigned*,
                               std::size_t, Env&) noexcept;
template void equal_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                          std::size_t, Env&) noexcept;
template void equal_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                          std::size_t, Env&) noexcept;
template void equal_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                          std::size_t, Env&) noexcept;
template void equal_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                                 unsigned*, std::size_t, Env&) noexcept;
template void less_n<16>(const Float16*, const Float16*, Float16*, unsigned*,
                         std::size_t, Env&) noexcept;
template void less_n<32>(const Float32*, const Float32*, Float32*, unsigned*,
                         std::size_t, Env&) noexcept;
template void less_n<64>(const Float64*, const Float64*, Float64*, unsigned*,
                         std::size_t, Env&) noexcept;
template void less_n<kBFloat16>(const BFloat16*, const BFloat16*, BFloat16*,
                                unsigned*, std::size_t, Env&) noexcept;
template void neg_n<16>(const Float16*, Float16*, std::size_t) noexcept;
template void neg_n<32>(const Float32*, Float32*, std::size_t) noexcept;
template void neg_n<64>(const Float64*, Float64*, std::size_t) noexcept;
template void neg_n<kBFloat16>(const BFloat16*, BFloat16*,
                               std::size_t) noexcept;
template void round_int_n<16>(const Float16*, Float16*, unsigned*,
                              std::size_t, Env&) noexcept;
template void round_int_n<32>(const Float32*, Float32*, unsigned*,
                              std::size_t, Env&) noexcept;
template void round_int_n<64>(const Float64*, Float64*, unsigned*,
                              std::size_t, Env&) noexcept;
template void round_int_n<kBFloat16>(const BFloat16*, BFloat16*, unsigned*,
                                     std::size_t, Env&) noexcept;
template void convert_n<16, 32>(const Float32*, Float16*, unsigned*,
                                std::size_t, Env&) noexcept;
template void convert_n<64, 32>(const Float32*, Float64*, unsigned*,
                                std::size_t, Env&) noexcept;
template void convert_n<kBFloat16, 32>(const Float32*, BFloat16*, unsigned*,
                                       std::size_t, Env&) noexcept;
template void convert_n<32, 16>(const Float16*, Float32*, unsigned*,
                                std::size_t, Env&) noexcept;
template void convert_n<32, kBFloat16>(const BFloat16*, Float32*, unsigned*,
                                       std::size_t, Env&) noexcept;
template void convert_n<32, 64>(const Float64*, Float32*, unsigned*,
                                std::size_t, Env&) noexcept;
template void convert_n<16, 64>(const Float64*, Float16*, unsigned*,
                                std::size_t, Env&) noexcept;
template void convert_n<64, 16>(const Float16*, Float64*, unsigned*,
                                std::size_t, Env&) noexcept;
template void narrow_from_double_n<16>(const double*, std::size_t, Float16*,
                                       std::size_t, const Env&) noexcept;
template void narrow_from_double_n<32>(const double*, std::size_t, Float32*,
                                       std::size_t, const Env&) noexcept;
template void narrow_from_double_n<64>(const double*, std::size_t, Float64*,
                                       std::size_t, const Env&) noexcept;
template void narrow_from_double_n<kBFloat16>(const double*, std::size_t,
                                              BFloat16*, std::size_t,
                                              const Env&) noexcept;
template void widen_to_double_n<16>(const Float16*, double*,
                                    std::size_t) noexcept;
template void widen_to_double_n<32>(const Float32*, double*,
                                    std::size_t) noexcept;
template void widen_to_double_n<64>(const Float64*, double*,
                                    std::size_t) noexcept;
template void widen_to_double_n<kBFloat16>(const BFloat16*, double*,
                                           std::size_t) noexcept;

}  // namespace fpq::softfloat
