// fpq::softfloat — encoding-level utilities: neighbours, ulp, total order.
//
// These are the tools the quiz's witness generators use to construct edge
// values ("the largest double for which x + 1.0 == x", "the value one ulp
// below 2^emin", ...).
#pragma once

#include "softfloat/value.hpp"

namespace fpq::softfloat {

/// The next representable value toward +infinity. nextUp of the largest
/// finite value is +inf; nextUp(-min_subnormal) is -0; nextUp(+inf) is
/// +inf; NaN propagates quieted. Never raises flags (IEEE nextUp is
/// quiet for qNaN).
template <int kBits>
Float<kBits> next_up(Float<kBits> x) noexcept;

/// The next representable value toward -infinity (mirror of next_up).
template <int kBits>
Float<kBits> next_down(Float<kBits> x) noexcept;

/// The magnitude of one unit in the last place of x (finite, nonzero):
/// the gap between x and the adjacent representable value away from zero.
/// For zero returns the smallest subnormal; for inf/NaN returns NaN.
template <int kBits>
Float<kBits> ulp(Float<kBits> x) noexcept;

/// IEEE 754-2008 totalOrder predicate: a <= b in the total order where
/// -NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN, with NaNs ordered by
/// payload.
template <int kBits>
bool total_order(Float<kBits> a, Float<kBits> b) noexcept;

extern template Float16 next_up<16>(Float16) noexcept;
extern template Float32 next_up<32>(Float32) noexcept;
extern template Float64 next_up<64>(Float64) noexcept;
extern template Float16 next_down<16>(Float16) noexcept;
extern template Float32 next_down<32>(Float32) noexcept;
extern template Float64 next_down<64>(Float64) noexcept;
extern template Float16 ulp<16>(Float16) noexcept;
extern template Float32 ulp<32>(Float32) noexcept;
extern template Float64 ulp<64>(Float64) noexcept;
extern template bool total_order<16>(Float16, Float16) noexcept;
extern template bool total_order<32>(Float32, Float32) noexcept;
extern template bool total_order<64>(Float64, Float64) noexcept;

}  // namespace fpq::softfloat
