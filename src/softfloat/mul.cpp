// Multiplication with correct rounding: full 64x64 -> 128-bit product, then
// one normalize/round/pack step.

#include "softfloat/detail.hpp"
#include "softfloat/ops.hpp"

namespace fpq::softfloat {

template <int kBits>
Float<kBits> mul(Float<kBits> a, Float<kBits> b, Env& env) noexcept {
  using detail::U128;
  const bool sign = a.sign() != b.sign();

  if (a.is_nan() || b.is_nan()) return detail::propagate_nan(a, b, env);

  if (a.is_infinity() || b.is_infinity()) {
    // inf * 0 is invalid; inf * anything-else keeps the xor sign.
    const Float<kBits> other = a.is_infinity() ? b : a;
    if (other.is_zero()) return detail::invalid_result<kBits>(env);
    return Float<kBits>::infinity(sign);
  }

  const detail::Unpacked ua = detail::unpack_finite(a, env);
  const detail::Unpacked ub = detail::unpack_finite(b, env);
  if (ua.sig == 0 || ub.sig == 0) return Float<kBits>::zero(sign);

  // value = (sigA * 2^(ea-63)) * (sigB * 2^(eb-63))
  //       = product * 2^((ea + eb + 1) - 127).
  const U128 product = U128{ua.sig} * ub.sig;
  return detail::normalize_round_pack<kBits>(sign, ua.exp + ub.exp + 1,
                                             product, false, env);
}

template Float16 mul<16>(Float16, Float16, Env&) noexcept;
template Float32 mul<32>(Float32, Float32, Env&) noexcept;
template Float64 mul<64>(Float64, Float64, Env&) noexcept;
template BFloat16 mul<kBFloat16>(BFloat16, BFloat16, Env&) noexcept;

}  // namespace fpq::softfloat
