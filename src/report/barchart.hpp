// fpq::report — plain-text bar charts and histograms.
//
// Figures 13, 16-21, and 22 of the paper are charts; the bench harness
// renders them as horizontal ASCII bars so the series shape (monotone
// trends, chance lines, crossovers) is visible directly in terminal output.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace fpq::report {

/// One labelled bar.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Options for bar rendering.
struct BarChartOptions {
  std::size_t max_width = 50;   ///< characters for the longest bar
  int decimals = 1;             ///< numeric annotation precision
  double reference = 0.0;       ///< optional reference line (e.g. chance)
  bool show_reference = false;  ///< annotate bars relative to reference
};

/// Renders labelled horizontal bars scaled to the maximum value.
/// Values must be non-negative.
std::string bar_chart(std::span<const Bar> bars, const BarChartOptions& opts);

/// Renders an integer histogram (Figure 13 style): one bar per value.
std::string int_histogram_chart(const fpq::stats::IntHistogram& hist,
                                std::size_t max_width = 50);

/// Renders grouped series (Figure 22 style): for each group label a row of
/// per-series values, plus per-series sparkline bars.
struct GroupedSeries {
  std::string group;                ///< e.g. "Overflow"
  std::vector<double> values;       ///< one per x position, e.g. levels 1..5
};

std::string grouped_series_chart(std::span<const std::string> x_labels,
                                 std::span<const GroupedSeries> series,
                                 int decimals = 1);

}  // namespace fpq::report
