// fpq::report — plain-text table rendering.
//
// The bench harness reproduces the paper's tables by *printing* them, so a
// small, dependency-free table renderer is part of the deliverable. Cells
// are strings; alignment is per column; the output style matches what you
// would paste into a lab notebook:
//
//   +----------------+-----+------+
//   | Position       |   n |    % |
//   +----------------+-----+------+
//   | Ph.D. student  |  73 | 36.7 |
//   ...
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace fpq::report {

enum class Align { kLeft, kRight };

/// A rectangular text table with a header row.
class Table {
 public:
  /// Creates a table with the given column headers; alignment defaults to
  /// left for the first column and right for the rest (the common shape of
  /// the paper's tables).
  explicit Table(std::vector<std::string> headers);

  /// Overrides one column's alignment.
  void set_align(std::size_t column, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers for row construction.
  static std::string fmt(double value, int decimals);
  static std::string fmt(std::size_t value);
  static std::string fmt(int value);
  static std::string percent(double fraction, int decimals = 1);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return headers_.size(); }

  /// Renders the full table, trailing newline included.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a titled section: title, underline, body, blank line.
std::string section(const std::string& title, const std::string& body);

}  // namespace fpq::report
