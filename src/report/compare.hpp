// fpq::report — paper-vs-measured comparison rendering.
//
// Every bench in bench/ ends by printing a comparison block: for each
// quantity the paper reports, the paper's value, our measured value, the
// absolute deviation, and a pass/fail judgement against a tolerance. The
// same rows feed EXPERIMENTS.md.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fpq::report {

/// One paper-vs-measured quantity.
struct ComparisonRow {
  std::string quantity;   ///< e.g. "core quiz mean score"
  double paper = 0.0;     ///< value reported in the paper
  double measured = 0.0;  ///< value this reproduction measured
  double tolerance = 0.0; ///< acceptable |paper - measured|
};

/// Aggregate verdict over a comparison block.
struct ComparisonSummary {
  std::size_t total = 0;
  std::size_t within_tolerance = 0;
  double max_abs_deviation = 0.0;
  bool all_within() const noexcept { return within_tolerance == total; }
};

/// Computes the summary for a block of rows.
ComparisonSummary summarize_comparison(std::span<const ComparisonRow> rows);

/// Renders the block as a table with OK/DEVIATES markers plus a summary
/// line. `decimals` controls numeric formatting.
std::string render_comparison(const std::string& title,
                              std::span<const ComparisonRow> rows,
                              int decimals = 2);

}  // namespace fpq::report
