#include "report/csv.hpp"

#include <ostream>

namespace fpq::report {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += csv_escape(fields[i]);
  }
  return out;
}

bool csv_split(std::string_view line, std::vector<std::string>& fields) {
  fields.clear();
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) return false;
  fields.push_back(std::move(current));
  return true;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_join(fields) << '\n';
  ++rows_;
}

}  // namespace fpq::report
