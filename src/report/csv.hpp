// fpq::report — minimal RFC-4180-style CSV writing and parsing.
//
// Survey records round-trip through CSV (see survey/csv_io.hpp) so that
// synthetic datasets can be exported for external analysis (R, pandas) and
// reimported; this module is the quoting/escaping layer underneath.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fpq::report {

/// Quotes a field if it contains a comma, quote, or newline; doubles
/// embedded quotes.
std::string csv_escape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string csv_join(const std::vector<std::string>& fields);

/// Splits one CSV line into fields, honouring quoted fields with embedded
/// commas and doubled quotes. Returns false on malformed input (unbalanced
/// quote).
bool csv_split(std::string_view line, std::vector<std::string>& fields);

/// Streams rows to an output stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace fpq::report
