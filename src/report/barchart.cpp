#include "report/barchart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "report/table.hpp"

namespace fpq::report {

std::string bar_chart(std::span<const Bar> bars, const BarChartOptions& opts) {
  assert(opts.max_width > 0);
  double max_value = opts.show_reference ? opts.reference : 0.0;
  std::size_t label_width = 0;
  for (const auto& bar : bars) {
    assert(bar.value >= 0.0);
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::string out;
  for (const auto& bar : bars) {
    const auto width = static_cast<std::size_t>(
        std::lround(bar.value / max_value * static_cast<double>(opts.max_width)));
    out += bar.label;
    out.append(label_width - bar.label.size(), ' ');
    out += " | ";
    out.append(width, '#');
    out += ' ';
    out += Table::fmt(bar.value, opts.decimals);
    if (opts.show_reference) {
      const double delta = bar.value - opts.reference;
      out += " (";
      if (delta >= 0.0) out += '+';
      out += Table::fmt(delta, opts.decimals);
      out += " vs ref ";
      out += Table::fmt(opts.reference, opts.decimals);
      out += ')';
    }
    out += '\n';
  }
  return out;
}

std::string int_histogram_chart(const fpq::stats::IntHistogram& hist,
                                std::size_t max_width) {
  std::vector<Bar> bars;
  bars.reserve(hist.bin_count());
  for (int v = hist.lo(); v <= hist.hi(); ++v) {
    bars.push_back(Bar{Table::fmt(v), static_cast<double>(hist.count(v))});
  }
  BarChartOptions opts;
  opts.max_width = max_width;
  opts.decimals = 0;
  return bar_chart(bars, opts);
}

std::string grouped_series_chart(std::span<const std::string> x_labels,
                                 std::span<const GroupedSeries> series,
                                 int decimals) {
  std::vector<std::string> headers{""};
  headers.insert(headers.end(), x_labels.begin(), x_labels.end());
  Table table(std::move(headers));
  for (const auto& s : series) {
    assert(s.values.size() == x_labels.size());
    std::vector<std::string> row{s.group};
    for (double v : s.values) row.push_back(Table::fmt(v, decimals));
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace fpq::report
