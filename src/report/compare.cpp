#include "report/compare.hpp"

#include <cmath>

#include "report/table.hpp"

namespace fpq::report {

ComparisonSummary summarize_comparison(std::span<const ComparisonRow> rows) {
  ComparisonSummary s;
  s.total = rows.size();
  for (const auto& row : rows) {
    const double dev = std::fabs(row.paper - row.measured);
    s.max_abs_deviation = std::max(s.max_abs_deviation, dev);
    if (dev <= row.tolerance) ++s.within_tolerance;
  }
  return s;
}

std::string render_comparison(const std::string& title,
                              std::span<const ComparisonRow> rows,
                              int decimals) {
  Table table({"quantity", "paper", "measured", "|dev|", "tol", "verdict"});
  for (const auto& row : rows) {
    const double dev = std::fabs(row.paper - row.measured);
    table.add_row({row.quantity, Table::fmt(row.paper, decimals),
                   Table::fmt(row.measured, decimals),
                   Table::fmt(dev, decimals), Table::fmt(row.tolerance, decimals),
                   dev <= row.tolerance ? "OK" : "DEVIATES"});
  }
  const ComparisonSummary s = summarize_comparison(rows);
  std::string body = table.render();
  body += "summary: ";
  body += Table::fmt(s.within_tolerance);
  body += '/';
  body += Table::fmt(s.total);
  body += " within tolerance, max |dev| = ";
  body += Table::fmt(s.max_abs_deviation, decimals);
  body += '\n';
  return section(title, body);
}

}  // namespace fpq::report
