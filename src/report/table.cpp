#include "report/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace fpq::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  assert(column < aligns_.size());
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string Table::fmt(std::size_t value) { return std::to_string(value); }

std::string Table::fmt(int value) { return std::to_string(value); }

std::string Table::percent(double fraction, int decimals) {
  return fmt(100.0 * fraction, decimals);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      out += ' ';
      if (aligns_[c] == Align::kRight) out.append(pad, ' ');
      out += cells[c];
      if (aligns_[c] == Align::kLeft) out.append(pad, ' ');
      out += " |";
    }
    out += '\n';
    return out;
  };

  std::string out = rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string section(const std::string& title, const std::string& body) {
  std::string out = title + '\n';
  out.append(title.size(), '=');
  out += '\n';
  out += body;
  out += '\n';
  return out;
}

}  // namespace fpq::report
