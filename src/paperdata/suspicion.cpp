// Figure 22: suspicion Likert distributions for the main (n=199) and
// student (n=52) cohorts.
//
// RECONSTRUCTED: the paper plots these without printed values. Anchors
// from §IV-D:
//   * both groups are most suspicious of Invalid, then Overflow;
//   * about 1/3 of BOTH groups report less-than-maximum suspicion for
//     Invalid (here: 35% each);
//   * the student group is overall less suspicious about Underflow and
//     Denorm, and also less suspicious of Overflow;
//   * Precision behaves similarly in both groups;
//   * Underflow / Precision / Denorm sit well below Overflow.

#include <array>

#include "paperdata/paperdata.hpp"

namespace fpq::paperdata {

namespace {

constexpr std::array<SuspicionTarget, 5> kSuspicion{{
    {"Overflow",
     {5.0, 10.0, 20.0, 30.0, 35.0},
     {10.0, 15.0, 25.0, 28.0, 22.0}},
    {"Underflow",
     {25.0, 30.0, 25.0, 12.0, 8.0},
     {35.0, 30.0, 20.0, 10.0, 5.0}},
    {"Precision",
     {30.0, 30.0, 22.0, 12.0, 6.0},
     {30.0, 30.0, 22.0, 12.0, 6.0}},
    {"Invalid",
     {3.0, 5.0, 10.0, 17.0, 65.0},
     {4.0, 6.0, 10.0, 15.0, 65.0}},
    {"Denorm",
     {25.0, 28.0, 25.0, 14.0, 8.0},
     {35.0, 30.0, 20.0, 10.0, 5.0}},
}};

}  // namespace

std::span<const SuspicionTarget> suspicion_targets() noexcept {
  return kSuspicion;
}

}  // namespace fpq::paperdata
