// Figures 12, 14, 15: quiz performance tables, verbatim from the paper.

#include <array>

#include "paperdata/paperdata.hpp"

namespace fpq::paperdata {

QuizAverages core_quiz_averages() noexcept {
  return {8.5, 4.0, 2.3, 0.2, 7.5};  // Figure 12, top half
}

QuizAverages opt_quiz_averages() noexcept {
  return {0.6, 0.2, 2.2, 0.1, 1.5};  // Figure 12, bottom half
}

namespace {

// Figure 14. Boldfaced-at-chance rows: the six whose correct rate is
// statistically indistinguishable from 50%. Italicized rows: answered
// incorrectly by most participants.
constexpr std::array<QuestionBreakdown, 15> kCoreBreakdown{{
    {"Commutativity", 53.3, 27.6, 18.6, 0.5, true, false},
    {"Associativity", 69.3, 14.1, 15.6, 1.0, false, false},
    {"Distributivity", 81.9, 6.0, 10.6, 1.5, false, false},
    {"Ordering", 80.4, 6.0, 12.6, 1.0, false, false},
    {"Identity", 16.6, 76.9, 5.5, 1.0, false, true},
    {"Negative Zero", 58.8, 28.1, 11.6, 1.5, true, false},
    {"Square", 47.2, 35.2, 16.6, 1.0, true, false},
    {"Overflow", 60.8, 24.1, 11.1, 4.0, false, false},
    {"Divide by Zero", 11.6, 76.4, 11.1, 1.0, false, true},
    {"Zero Divide By Zero", 70.4, 9.0, 19.6, 1.0, false, false},
    {"Saturation Plus", 54.8, 26.1, 17.6, 1.5, true, false},
    {"Saturation Minus", 53.3, 25.6, 19.6, 1.5, true, false},
    {"Denormal Precision", 52.3, 24.6, 22.1, 1.0, true, false},
    {"Operation Precision", 73.4, 9.0, 16.6, 1.0, false, false},
    {"Exception Signal", 69.3, 10.1, 19.6, 1.0, false, false},
}};

// Figure 15. Every question was reported unknown by more than half the
// participants.
constexpr std::array<QuestionBreakdown, 4> kOptBreakdown{{
    {"MADD", 15.6, 10.0, 72.4, 2.0, false, false},
    {"Flush to Zero", 13.6, 7.5, 76.9, 2.0, false, false},
    {"Standard-compliant Level", 8.5, 20.7, 68.8, 2.0, false, false},
    {"Fast-math", 29.1, 3.0, 65.8, 2.0, false, false},
}};

}  // namespace

std::span<const QuestionBreakdown> core_breakdown() noexcept {
  return kCoreBreakdown;
}

std::span<const QuestionBreakdown> opt_breakdown() noexcept {
  return kOptBreakdown;
}

}  // namespace fpq::paperdata
