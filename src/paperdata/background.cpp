// Figures 1-11: participant background tables, verbatim from the paper.

#include <array>

#include "paperdata/paperdata.hpp"

namespace fpq::paperdata {

namespace {

// Figure 1: Positions of participants.
constexpr std::array<CategoryCount, 10> kPositions{{
    {"Ph.D. student", 73, 36.7},
    {"Faculty", 49, 24.6},
    {"Software engineer", 23, 11.6},
    {"Research staff", 17, 8.5},
    {"Research scientist", 11, 5.6},
    {"M.S. student", 8, 4.0},
    {"Undergraduate", 7, 3.5},
    {"Postdoc", 4, 2.0},
    {"Manager", 3, 1.5},
    {"Other", 5, 2.5},
}};

// Figure 2: Areas of participants.
constexpr std::array<CategoryCount, 19> kAreas{{
    {"Computer Science", 80, 40.2},
    {"Other Physical Science Field", 38, 19.1},
    {"Other Engineering Field", 26, 13.1},
    {"Computer Engineering", 19, 9.5},
    {"Mathematics", 10, 5.0},
    {"Electrical Engineering", 9, 4.5},
    {"Economics", 2, 1.1},
    {"Other Non-Physical Science Field", 2, 1.1},
    {"CS&Math", 2, 1.1},
    {"CS&CE", 2, 1.1},
    {"Political Science and Statistics", 1, 0.5},
    {"Social Sciences", 1, 0.5},
    {"Robotics", 1, 0.5},
    {"Econometrics", 1, 0.5},
    {"Biomedical Engineering", 1, 0.5},
    {"MMSS", 1, 0.5},
    {"Statistics", 1, 0.5},
    {"Mechanical Engineering", 1, 0.5},
    {"Unreported", 1, 0.5},
}};

// Figure 3: Formal training in floating point.
constexpr std::array<CategoryCount, 5> kFormalTraining{{
    {"One or more lectures in course", 62, 31.2},
    {"None", 52, 26.1},
    {"One or more weeks within a course", 49, 24.6},
    {"One or more courses", 35, 17.6},
    {"Not reported", 1, 0.5},
}};

// Figure 4: Informal training (top 5; multi-select, so percents exceed
// 100 in total).
constexpr std::array<CategoryCount, 5> kInformalTraining{{
    {"Googled when necessary", 138, 69.4},
    {"Read about it", 136, 68.3},
    {"Discussed with coworkers/etc", 89, 44.7},
    {"Trained by adviser/mentor", 38, 19.1},
    {"Watched video", 22, 11.1},
}};

// Figure 5: Software development roles.
constexpr std::array<CategoryCount, 5> kDevRoles{{
    {"I develop software to support my main role", 119, 59.8},
    {"My main role is as a software engineer", 50, 25.1},
    {"I manage others who develop software to support my main role", 19,
     9.5},
    {"My main role is to manage software engineers", 6, 3.0},
    {"Not Reported", 5, 2.5},
}};

// Figure 6: Floating point language experience (n >= 5; multi-select).
constexpr std::array<CategoryCount, 13> kFpLanguages{{
    {"Python", 142, 71.4},
    {"C", 139, 69.9},
    {"C++", 136, 68.3},
    {"Matlab", 105, 52.8},
    {"Java", 100, 50.3},
    {"Fortran", 65, 32.7},
    {"R", 48, 24.1},
    {"C#", 26, 13.1},
    {"Perl", 25, 12.6},
    {"Scheme/Racket", 17, 8.5},
    {"Haskell", 12, 6.0},
    {"ML", 9, 4.5},
    {"JavaScript", 6, 3.0},
}};

// Figure 7: Arbitrary precision language experience (n >= 5).
constexpr std::array<CategoryCount, 9> kArbPrecLanguages{{
    {"Mathematica", 71, 35.7},
    {"Maple", 29, 14.6},
    {"Other language", 20, 10.0},
    {"MPFR/GNU MultiPrecision Library", 19, 9.6},
    {"Scheme/Racket/LISP with BigNums", 13, 6.5},
    {"Other library", 13, 6.5},
    {"Matlab MultiPrecision Toolbox", 10, 5.0},
    {"Haskell with arb. prec. and rationals", 8, 4.0},
    {"Macsyma", 5, 2.5},
}};

// Figure 8: Contributed codebase sizes.
constexpr std::array<CategoryCount, 7> kContributedSizes{{
    {"1,001 to 10,000 lines of code", 79, 39.7},
    {"10,001 to 100,000 lines of code", 65, 32.7},
    {"100 to 1,000 lines of code", 27, 13.6},
    {"100,001 to 1,000,000 lines of code", 17, 8.5},
    {">1,000,000 lines of code", 9, 4.5},
    {"<100 lines of code", 1, 0.5},
    {"Not Reported", 1, 0.5},
}};

// Figure 9: Contributed codebase floating point extent.
constexpr std::array<CategoryCount, 7> kContributedExtent{{
    {"FP incidental", 77, 38.7},
    {"FP intrinsic", 63, 31.7},
    {"FP intrinsic, I did numerical correctness", 29, 14.6},
    {"FP intrinsic, other team did numerical correctness", 10, 5.0},
    {"FP intrinsic, my team did numeric correctness", 10, 5.0},
    {"No FP involved", 9, 4.5},
    {"No Report", 1, 0.5},
}};

// Figure 10: Involved codebase sizes.
constexpr std::array<CategoryCount, 7> kInvolvedSizes{{
    {"10,001 to 100,000 lines of code", 61, 30.7},
    {"1,001 to 10,000 lines of code", 53, 26.6},
    {">1,000,000 lines of code", 36, 18.1},
    {"100,001 to 1,000,000 lines of code", 36, 18.1},
    {"100 to 1,000 lines of code", 8, 4.0},
    {"<100 lines of code", 2, 1.0},
    {"No Report", 3, 1.5},
}};

// Figure 11: Involved codebase floating point extent.
constexpr std::array<CategoryCount, 7> kInvolvedExtent{{
    {"FP incidental", 71, 35.7},
    {"FP intrinsic", 55, 27.6},
    {"FP intrinsic, I did numerical correctness", 23, 11.6},
    {"FP intrinsic, other team did numerical correctness", 17, 8.5},
    {"No FP involved", 15, 7.5},
    {"FP intrinsic, my team did numeric correctness", 13, 6.5},
    {"No Report", 5, 2.5},
}};

}  // namespace

std::span<const CategoryCount> positions() noexcept { return kPositions; }
std::span<const CategoryCount> areas() noexcept { return kAreas; }
std::span<const CategoryCount> formal_training() noexcept {
  return kFormalTraining;
}
std::span<const CategoryCount> informal_training() noexcept {
  return kInformalTraining;
}
std::span<const CategoryCount> dev_roles() noexcept { return kDevRoles; }
std::span<const CategoryCount> fp_languages() noexcept {
  return kFpLanguages;
}
std::span<const CategoryCount> arb_prec_languages() noexcept {
  return kArbPrecLanguages;
}
std::span<const CategoryCount> contributed_codebase_sizes() noexcept {
  return kContributedSizes;
}
std::span<const CategoryCount> contributed_fp_extent() noexcept {
  return kContributedExtent;
}
std::span<const CategoryCount> involved_codebase_sizes() noexcept {
  return kInvolvedSizes;
}
std::span<const CategoryCount> involved_fp_extent() noexcept {
  return kInvolvedExtent;
}

}  // namespace fpq::paperdata
