// Figures 16-21: factor effects on quiz scores.
//
// RECONSTRUCTED: the paper shows these as bar charts without printed
// values. Every reconstruction below is anchored to the prose of §IV-B
// and §IV-C:
//   * overall core mean 8.5/15 (Figure 12) — every factor table's
//     participant-weighted mean reproduces it to within 0.1;
//   * Contributed Codebase Size is the most predictive factor, best value
//     ~11/15, spread 4/15, monotone in size, and million-line authors
//     still miss ~4 questions (Figure 16);
//   * Area: EE/CS/CE best, at best ~11/15, spread 3.5/15, with Other
//     Physical Science and Other Engineering at chance (Figure 17);
//   * Role: primary software engineers slightly better (Figure 18);
//   * Formal Training: max gain ~1/15 over the overall mean, spread
//     ~2/15 (Figure 19);
//   * Optimization quiz (overall mean 0.6/3): effects cap at +0.7 for
//     Role and +0.5 for Area with spreads ~1.4 and ~0.8 (Figures 20-21).
// Interpolated values between anchors are marked in EXPERIMENTS.md.

#include <array>

#include "paperdata/paperdata.hpp"

namespace fpq::paperdata {

namespace {

// Figure 16 (core correct by Contributed Codebase Size; ordered bins).
// Weighted mean: (7*27 + 8*79 + 9*65 + 10*17 + 11*9) / 197 = 8.50.
constexpr std::array<FactorLevelTarget, 5> kContributedSize{{
    {"100-1K", 27, 7.0, 0.0},
    {"1K-10K", 79, 8.0, 0.0},
    {"10K-100K", 65, 9.0, 0.0},
    {"100K-1M", 17, 10.0, 0.0},
    {">1M", 9, 11.0, 0.0},
}};

// Figures 17 (core) and 20 (opt) by collapsed Area group. The collapse of
// Figure 2's 19 rows: CS&Math -> CS; CS&CE -> CE; Robotics, Biomedical and
// Mechanical Engineering -> Eng; the remaining small fields -> Other.
// Counts sum to 199. Core weighted mean 8.59; opt weighted mean 0.62.
constexpr std::array<FactorLevelTarget, 7> kArea{{
    {"EE", 9, 11.0, 1.1},
    {"CE", 21, 9.5, 0.9},
    {"CS", 82, 9.0, 0.8},
    {"Math", 10, 9.0, 0.5},
    {"PhysSci", 38, 7.5, 0.3},
    {"Eng", 29, 7.5, 0.3},
    {"Other", 10, 8.0, 0.4},
}};

// Figures 18 (core) and 21 (opt) by Software Development Role.
// Core weighted mean 8.42; opt weighted mean 0.63.
constexpr std::array<FactorLevelTarget, 4> kRole{{
    {"My main role is software engineer", 50, 9.5, 1.3},
    {"I manage software engineers", 6, 9.0, 0.9},
    {"I develop software to support my main role", 119, 8.0, 0.4},
    {"I manage software development in support of my main role", 19, 8.0,
     0.2},
}};

// Figure 19 (core by Formal Training).
// Weighted mean (7.7*52 + 8.3*62 + 8.8*49 + 9.5*35) / 198 = 8.48.
constexpr std::array<FactorLevelTarget, 4> kTraining{{
    {"None", 52, 7.7, 0.0},
    {"One or more lectures", 62, 8.3, 0.0},
    {"One or more weeks", 49, 8.8, 0.0},
    {"One or more courses", 35, 9.5, 0.0},
}};

}  // namespace

std::span<const FactorLevelTarget> contributed_size_effect() noexcept {
  return kContributedSize;
}
std::span<const FactorLevelTarget> area_effect() noexcept { return kArea; }
std::span<const FactorLevelTarget> role_effect() noexcept { return kRole; }
std::span<const FactorLevelTarget> training_effect() noexcept {
  return kTraining;
}

}  // namespace fpq::paperdata
