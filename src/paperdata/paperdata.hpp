// fpq::paperdata — every table and figure the paper publishes, as typed
// constant data.
//
// Two kinds of entries:
//   * VERBATIM: numbers printed in the paper (Figures 1-15 tables, the
//     Figure 12 averages, cohort sizes).
//   * RECONSTRUCTED: Figures 16-22 are charts without printed values; the
//     constants here are reconstructions anchored to every number the
//     prose does give (see factors.cpp / suspicion.cpp comments and
//     EXPERIMENTS.md for the anchor list).
//
// The respondent model samples from these targets and the bench harness
// prints paper-vs-measured rows against them.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace fpq::paperdata {

inline constexpr std::size_t kMainCohortSize = 199;     // §III
inline constexpr std::size_t kStudentCohortSize = 52;   // §III

/// One row of a background frequency table (Figures 1-11).
struct CategoryCount {
  std::string_view label;
  std::size_t n;
  double percent;  ///< as printed in the paper
};

// -- Figures 1-5: who the participants are (VERBATIM) -----------------------
std::span<const CategoryCount> positions() noexcept;          // Fig 1
std::span<const CategoryCount> areas() noexcept;              // Fig 2
std::span<const CategoryCount> formal_training() noexcept;    // Fig 3
std::span<const CategoryCount> informal_training() noexcept;  // Fig 4 (top 5, multi-select)
std::span<const CategoryCount> dev_roles() noexcept;          // Fig 5

// -- Figures 6-7: language experience (VERBATIM, multi-select) --------------
std::span<const CategoryCount> fp_languages() noexcept;        // Fig 6
std::span<const CategoryCount> arb_prec_languages() noexcept;  // Fig 7

// -- Figures 8-11: codebase experience (VERBATIM) ----------------------------
std::span<const CategoryCount> contributed_codebase_sizes() noexcept;  // Fig 8
std::span<const CategoryCount> contributed_fp_extent() noexcept;       // Fig 9
std::span<const CategoryCount> involved_codebase_sizes() noexcept;     // Fig 10
std::span<const CategoryCount> involved_fp_extent() noexcept;          // Fig 11

// -- Figure 12: average quiz performance (VERBATIM) --------------------------
struct QuizAverages {
  double correct;
  double incorrect;
  double dont_know;
  double unanswered;
  double chance;
};
QuizAverages core_quiz_averages() noexcept;  // 8.5 / 4.0 / 2.3 / 0.2 / 7.5
QuizAverages opt_quiz_averages() noexcept;   // 0.6 / 0.2 / 2.2 / 0.1 / 1.5

// -- Figure 13: core score histogram (mean VERBATIM; shape reconstructed) ----
/// Mean of the core-quiz score distribution.
inline constexpr double kCoreScoreMean = 8.5;

// -- Figures 14-15: per-question breakdowns (VERBATIM) -----------------------
struct QuestionBreakdown {
  std::string_view label;
  double pct_correct;
  double pct_incorrect;
  double pct_dont_know;
  double pct_unanswered;
  bool at_chance_level;  ///< boldfaced rows of Figure 14
  bool majority_wrong;   ///< italicized rows of Figure 14
};
std::span<const QuestionBreakdown> core_breakdown() noexcept;  // Fig 14
std::span<const QuestionBreakdown> opt_breakdown() noexcept;   // Fig 15

// -- Figures 16-21: factor effects (RECONSTRUCTED; anchors in factors.cpp) --
/// One factor level's mean per-respondent tallies (out of 15 for the core
/// quiz, out of 3 for the optimization T/F quiz).
struct FactorLevelTarget {
  std::string_view label;
  std::size_t n;           ///< participants at this level (from Figs 1-11)
  double core_correct;     ///< mean core-quiz correct (Figs 16-19)
  double opt_correct;      ///< mean opt-quiz correct (Figs 20-21; 0 when
                           ///< the paper shows no chart for this factor)
};
std::span<const FactorLevelTarget> contributed_size_effect() noexcept;  // Fig 16
std::span<const FactorLevelTarget> area_effect() noexcept;       // Figs 17+20
std::span<const FactorLevelTarget> role_effect() noexcept;       // Figs 18+21
std::span<const FactorLevelTarget> training_effect() noexcept;   // Fig 19

// -- Figure 22: suspicion distributions (RECONSTRUCTED; anchors in
//    suspicion.cpp) ---------------------------------------------------------
/// Percent of respondents reporting each Likert level 1..5.
struct SuspicionTarget {
  std::string_view condition;          ///< "Overflow", ...
  std::array<double, 5> percent_main;  ///< Figure 22(a), n = 199
  std::array<double, 5> percent_students;  ///< Figure 22(b), n = 52
};
std::span<const SuspicionTarget> suspicion_targets() noexcept;

}  // namespace fpq::paperdata
