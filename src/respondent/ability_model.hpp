// fpq::respondent — the latent-ability model.
//
// A respondent's expected quiz performance is an additive function of
// their background, with effects read directly from the paperdata factor
// targets (Figures 16-21):
//
//   core_target = mu_core + D_size + D_area + D_role + D_training + noise
//   opt_target  = mu_opt  + D_area_opt + D_role_opt + noise
//
// where each D_f(level) = target_f(level) - weighted_mean_f is the
// centered factor effect. Because factors are sampled independently
// (background_model.hpp), each factor's *conditional* population mean
// reproduces its published chart: the cross terms average to zero.
#pragma once

#include "stats/prng.hpp"
#include "survey/record.hpp"

namespace fpq::respondent {

/// Latent ability and answering style of one synthetic respondent.
struct Ability {
  /// Expected number of correct core-quiz answers (0..15 scale).
  double core_target = 8.5;
  /// Expected number of correct optimization T/F answers (0..3 scale).
  double opt_target = 0.6;
  /// Multiplies the per-question don't-know rates (mean 1 over the
  /// population): some respondents hedge more than others.
  double dont_know_propensity = 1.0;
};

/// Centered core-quiz effect of each charted factor (0 for levels the
/// paper does not chart, e.g. "Not Reported").
double core_effect_contributed_size(std::size_t fig8_row) noexcept;
double core_effect_area(std::size_t fig2_row) noexcept;
double core_effect_role(std::size_t fig5_row) noexcept;
double core_effect_training(std::size_t fig3_row) noexcept;

/// Centered optimization-quiz effects (Figures 20-21).
double opt_effect_area(std::size_t fig2_row) noexcept;
double opt_effect_role(std::size_t fig5_row) noexcept;

/// Residual spread around the factor-implied mean (score points). The
/// individual variation the factors do NOT explain — the paper found no
/// particularly strong factor, so this is sizeable.
inline constexpr double kCoreResidualSigma = 1.6;
inline constexpr double kOptResidualSigma = 0.25;

/// Derives ability for a background, adding individual noise.
Ability derive_ability(const survey::BackgroundProfile& background,
                       stats::Xoshiro256pp& g);

}  // namespace fpq::respondent
