#include "respondent/ability_model.hpp"

#include <algorithm>

#include "paperdata/paperdata.hpp"

namespace fpq::respondent {

namespace {

namespace pd = fpq::paperdata;

// Participant-weighted mean of a factor target table (core column).
double weighted_core_mean(std::span<const pd::FactorLevelTarget> levels) {
  double num = 0.0, den = 0.0;
  for (const auto& l : levels) {
    num += static_cast<double>(l.n) * l.core_correct;
    den += static_cast<double>(l.n);
  }
  return num / den;
}

double weighted_opt_mean(std::span<const pd::FactorLevelTarget> levels) {
  double num = 0.0, den = 0.0;
  for (const auto& l : levels) {
    num += static_cast<double>(l.n) * l.opt_correct;
    den += static_cast<double>(l.n);
  }
  return num / den;
}

}  // namespace

double core_effect_contributed_size(std::size_t fig8_row) noexcept {
  const auto bin = survey::contributed_size_bin(fig8_row);
  if (bin == survey::kNoSizeBin) return 0.0;
  const auto targets = pd::contributed_size_effect();
  return targets[bin].core_correct - weighted_core_mean(targets);
}

double core_effect_area(std::size_t fig2_row) noexcept {
  const auto group =
      static_cast<std::size_t>(survey::area_group_of(fig2_row));
  const auto targets = pd::area_effect();
  return targets[group].core_correct - weighted_core_mean(targets);
}

double core_effect_role(std::size_t fig5_row) noexcept {
  const auto idx = survey::role_index(fig5_row);
  if (idx == survey::kNoRole) return 0.0;
  const auto targets = pd::role_effect();
  return targets[idx].core_correct - weighted_core_mean(targets);
}

double core_effect_training(std::size_t fig3_row) noexcept {
  const auto idx = survey::training_index(fig3_row);
  if (idx == survey::kNoTraining) return 0.0;
  const auto targets = pd::training_effect();
  return targets[idx].core_correct - weighted_core_mean(targets);
}

double opt_effect_area(std::size_t fig2_row) noexcept {
  const auto group =
      static_cast<std::size_t>(survey::area_group_of(fig2_row));
  const auto targets = pd::area_effect();
  return targets[group].opt_correct - weighted_opt_mean(targets);
}

double opt_effect_role(std::size_t fig5_row) noexcept {
  const auto idx = survey::role_index(fig5_row);
  if (idx == survey::kNoRole) return 0.0;
  const auto targets = pd::role_effect();
  return targets[idx].opt_correct - weighted_opt_mean(targets);
}

Ability derive_ability(const survey::BackgroundProfile& background,
                       stats::Xoshiro256pp& g) {
  Ability a;
  a.core_target = pd::core_quiz_averages().correct +
                  core_effect_contributed_size(background.contributed_size) +
                  core_effect_area(background.area) +
                  core_effect_role(background.dev_role) +
                  core_effect_training(background.formal_training) +
                  stats::normal(g, 0.0, kCoreResidualSigma);
  a.core_target = std::clamp(a.core_target, 0.5, 14.5);

  a.opt_target = pd::opt_quiz_averages().correct +
                 opt_effect_area(background.area) +
                 opt_effect_role(background.dev_role) +
                 stats::normal(g, 0.0, kOptResidualSigma);
  a.opt_target = std::clamp(a.opt_target, 0.0, 3.0);

  a.dont_know_propensity =
      std::clamp(stats::normal(g, 1.0, 0.35), 0.2, 2.2);
  return a;
}

}  // namespace fpq::respondent
