#include "respondent/background_model.hpp"

#include <vector>

#include "paperdata/paperdata.hpp"
#include "stats/categorical.hpp"

namespace fpq::respondent {

namespace {

namespace pd = fpq::paperdata;

stats::CategoricalDistribution from_counts(
    std::span<const pd::CategoryCount> rows) {
  std::vector<double> weights;
  weights.reserve(rows.size());
  for (const auto& row : rows) {
    weights.push_back(static_cast<double>(row.n));
  }
  return stats::CategoricalDistribution(weights);
}

std::vector<std::size_t> sample_multi(
    std::span<const pd::CategoryCount> rows, stats::Xoshiro256pp& g) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double p = static_cast<double>(rows[i].n) /
                     static_cast<double>(pd::kMainCohortSize);
    if (stats::bernoulli(g, p)) selected.push_back(i);
  }
  return selected;
}

}  // namespace

survey::BackgroundProfile sample_background(stats::Xoshiro256pp& g) {
  // The categorical tables are tiny; rebuilding them per call would be
  // wasteful in generation loops, so they are constructed once.
  static const auto positions = from_counts(pd::positions());
  static const auto areas = from_counts(pd::areas());
  static const auto training = from_counts(pd::formal_training());
  static const auto roles = from_counts(pd::dev_roles());
  static const auto contributed = from_counts(pd::contributed_codebase_sizes());
  static const auto contributed_extent = from_counts(pd::contributed_fp_extent());
  static const auto involved = from_counts(pd::involved_codebase_sizes());
  static const auto involved_extent = from_counts(pd::involved_fp_extent());

  survey::BackgroundProfile b;
  b.position = positions.sample(g);
  b.area = areas.sample(g);
  b.formal_training = training.sample(g);
  b.informal_training = sample_multi(pd::informal_training(), g);
  b.dev_role = roles.sample(g);
  b.fp_languages = sample_multi(pd::fp_languages(), g);
  b.arb_prec_languages = sample_multi(pd::arb_prec_languages(), g);
  b.contributed_size = contributed.sample(g);
  b.contributed_extent = contributed_extent.sample(g);
  b.involved_size = involved.sample(g);
  b.involved_extent = involved_extent.sample(g);
  return b;
}

}  // namespace fpq::respondent
