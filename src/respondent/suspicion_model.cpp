#include "respondent/suspicion_model.hpp"

#include "paperdata/paperdata.hpp"
#include "stats/likert.hpp"

namespace fpq::respondent {

std::array<int, quiz::kSuspicionItemCount> sample_suspicion(
    Cohort cohort, stats::Xoshiro256pp& g) {
  const auto targets = fpq::paperdata::suspicion_targets();
  std::array<int, quiz::kSuspicionItemCount> out{};
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto& pct = cohort == Cohort::kMain
                          ? targets[c].percent_main
                          : targets[c].percent_students;
    std::array<double, stats::kLikertLevels> weights{};
    for (std::size_t i = 0; i < stats::kLikertLevels; ++i) {
      weights[i] = pct[i];
    }
    out[c] = stats::LikertDistribution(weights).sample(g);
  }
  return out;
}

}  // namespace fpq::respondent
