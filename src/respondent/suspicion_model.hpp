// fpq::respondent — sampling suspicion-quiz responses.
//
// Responses are drawn per condition from the cohort's reconstructed
// Figure 22 distributions. Sampling is independent across conditions so
// the published marginals are reproduced exactly in expectation (the
// paper reports only marginals; any cross-condition correlation structure
// would be invention beyond the data).
#pragma once

#include <array>

#include "core/types.hpp"
#include "stats/prng.hpp"

namespace fpq::respondent {

/// Which cohort's Figure 22 panel to sample from.
enum class Cohort { kMain, kStudents };

/// Draws one respondent's five Likert levels (1..5), paper order.
std::array<int, quiz::kSuspicionItemCount> sample_suspicion(
    Cohort cohort, stats::Xoshiro256pp& g);

}  // namespace fpq::respondent
