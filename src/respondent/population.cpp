#include "respondent/population.hpp"

#include "respondent/background_model.hpp"
#include "respondent/calibration.hpp"
#include "respondent/suspicion_model.hpp"

namespace fpq::respondent {

namespace {

// The calibrated model is a function of the published marginals and its
// own internal calibration seed only — NOT of any cohort's seed — so
// different cohorts are draws from one fixed model. Shared by every
// generator and wrapper.
const CalibratedQuizModel& calibrated_model() {
  static const CalibratedQuizModel model =
      CalibratedQuizModel::fit(0xCA11B8A7EDULL);
  return model;
}

}  // namespace

CohortGenerator::CohortGenerator(std::uint64_t seed) noexcept
    : seed_(seed), root_(seed) {}

void CohortGenerator::seek(std::size_t index) noexcept {
  if (index < pos_) {
    root_ = stats::Xoshiro256pp(seed_);
    pos_ = 0;
  }
  // split(i) consumes exactly two root draws; replay them without paying
  // for the skipped respondents' model sampling.
  while (pos_ < index) {
    root_();
    root_();
    ++pos_;
  }
}

survey::SurveyRecord CohortGenerator::next() {
  auto g = root_.split(pos_);
  survey::SurveyRecord r;
  r.respondent_id = pos_ + 1;
  r.background = sample_background(g);
  const Ability ability = derive_ability(r.background, g);
  r.core = calibrated_model().sample_core(ability, g);
  r.opt = calibrated_model().sample_opt(ability, g);
  r.suspicion = sample_suspicion(Cohort::kMain, g);
  ++pos_;
  return r;
}

survey::SurveyRecord CohortGenerator::record(std::size_t index) {
  seek(index);
  return next();
}

StudentCohortGenerator::StudentCohortGenerator(std::uint64_t seed) noexcept
    : seed_(seed), root_(seed) {}

void StudentCohortGenerator::seek(std::size_t index) noexcept {
  if (index < pos_) {
    root_ = stats::Xoshiro256pp(seed_);
    pos_ = 0;
  }
  while (pos_ < index) {
    root_();
    root_();
    ++pos_;
  }
}

survey::StudentRecord StudentCohortGenerator::next() {
  auto g = root_.split(pos_);
  survey::StudentRecord r;
  r.respondent_id = pos_ + 1;
  r.suspicion = sample_suspicion(Cohort::kStudents, g);
  ++pos_;
  return r;
}

survey::StudentRecord StudentCohortGenerator::record(std::size_t index) {
  seek(index);
  return next();
}

std::vector<survey::SurveyRecord> generate_main_cohort(std::uint64_t seed,
                                                       std::size_t n) {
  CohortGenerator gen(seed);
  std::vector<survey::SurveyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(gen.next());
  return records;
}

std::vector<survey::StudentRecord> generate_student_cohort(
    std::uint64_t seed, std::size_t n) {
  StudentCohortGenerator gen(seed);
  std::vector<survey::StudentRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(gen.next());
  return records;
}

}  // namespace fpq::respondent
