#include "respondent/population.hpp"

#include "respondent/background_model.hpp"
#include "respondent/calibration.hpp"
#include "respondent/suspicion_model.hpp"

namespace fpq::respondent {

std::vector<survey::SurveyRecord> generate_main_cohort(std::uint64_t seed,
                                                       std::size_t n) {
  // The calibrated model is a function of the published marginals and its
  // own internal calibration seed only — NOT of this cohort's seed — so
  // different cohorts are draws from one fixed model.
  static const CalibratedQuizModel model =
      CalibratedQuizModel::fit(0xCA11B8A7EDULL);

  stats::Xoshiro256pp root(seed);
  std::vector<survey::SurveyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto g = root.split(i);
    survey::SurveyRecord r;
    r.respondent_id = i + 1;
    r.background = sample_background(g);
    const Ability ability = derive_ability(r.background, g);
    r.core = model.sample_core(ability, g);
    r.opt = model.sample_opt(ability, g);
    r.suspicion = sample_suspicion(Cohort::kMain, g);
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<survey::StudentRecord> generate_student_cohort(
    std::uint64_t seed, std::size_t n) {
  stats::Xoshiro256pp root(seed);
  std::vector<survey::StudentRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto g = root.split(i);
    survey::StudentRecord r;
    r.respondent_id = i + 1;
    r.suspicion = sample_suspicion(Cohort::kStudents, g);
    records.push_back(r);
  }
  return records;
}

}  // namespace fpq::respondent
