// fpq::respondent — cohort generation: the top of the synthetic-subjects
// substitution. One call produces the full raw dataset the paper's
// analysis consumed.
#pragma once

#include <cstdint>
#include <vector>

#include "survey/record.hpp"

namespace fpq::respondent {

/// Generates the main cohort (default n = 199, §III): backgrounds from
/// the published marginals, quiz sheets from the calibrated item-response
/// model, suspicion responses from the Figure 22(a) panel. Deterministic
/// in `seed`.
std::vector<survey::SurveyRecord> generate_main_cohort(
    std::uint64_t seed, std::size_t n = 199);

/// Generates the student cohort (default n = 52, §III): suspicion quiz
/// only, from the Figure 22(b) panel.
std::vector<survey::StudentRecord> generate_student_cohort(
    std::uint64_t seed, std::size_t n = 52);

}  // namespace fpq::respondent
