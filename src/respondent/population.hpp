// fpq::respondent — cohort generation: the top of the synthetic-subjects
// substitution. One call produces the full raw dataset the paper's
// analysis consumed — or, at serving scale, a streaming generator hands
// out one record at a time so the dataset never has to exist in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/prng.hpp"
#include "survey/record.hpp"

namespace fpq::respondent {

/// Streams the main cohort one record at a time, bit-identical to
/// generate_main_cohort(seed, n): record(i) of any generator with the same
/// seed equals generate_main_cohort(seed, n)[i] for every n > i.
///
/// Shard-addressable: respondent i's sample stream is root.split(i), and
/// split() consumes exactly two root draws, so seek(i) fast-forwards the
/// root generator in two cheap xoshiro steps per skipped respondent —
/// no background/quiz sampling for the skipped prefix, O(1) memory.
/// Shards seek to their chunk's begin index and stream their range.
class CohortGenerator {
 public:
  explicit CohortGenerator(std::uint64_t seed) noexcept;

  /// Index of the record the next call to next() will produce.
  std::size_t position() const noexcept { return pos_; }

  /// Repositions the stream so next() produces record `index`. Seeking
  /// backward rewinds to the seed and replays forward.
  void seek(std::size_t index) noexcept;

  /// Produces the record at position() and advances by one.
  survey::SurveyRecord next();

  /// Random access: seek(index) + next().
  survey::SurveyRecord record(std::size_t index);

 private:
  std::uint64_t seed_;
  stats::Xoshiro256pp root_;
  std::size_t pos_ = 0;
};

/// Streaming counterpart of generate_student_cohort with the same
/// addressing contract as CohortGenerator.
class StudentCohortGenerator {
 public:
  explicit StudentCohortGenerator(std::uint64_t seed) noexcept;

  std::size_t position() const noexcept { return pos_; }
  void seek(std::size_t index) noexcept;
  survey::StudentRecord next();
  survey::StudentRecord record(std::size_t index);

 private:
  std::uint64_t seed_;
  stats::Xoshiro256pp root_;
  std::size_t pos_ = 0;
};

/// Generates the main cohort (default n = 199, §III): backgrounds from
/// the published marginals, quiz sheets from the calibrated item-response
/// model, suspicion responses from the Figure 22(a) panel. Deterministic
/// in `seed`. Wrapper over CohortGenerator.
std::vector<survey::SurveyRecord> generate_main_cohort(
    std::uint64_t seed, std::size_t n = 199);

/// Generates the student cohort (default n = 52, §III): suspicion quiz
/// only, from the Figure 22(b) panel. Wrapper over StudentCohortGenerator.
std::vector<survey::StudentRecord> generate_student_cohort(
    std::uint64_t seed, std::size_t n = 52);

}  // namespace fpq::respondent
