// fpq::respondent — calibrating the item-response model to the published
// per-question marginals.
//
// Response model for a true/false question q and respondent r:
//
//   P(unanswered)          = u_q                      (Figure 14/15 column)
//   P(don't know)          = clamp(d_q * delta_r)     (d_q from the table,
//                                                      delta_r respondent)
//   P(correct | answered)  = sigmoid(theta_r + beta_q)
//
// with theta_r = gamma * (core_target_r - mu). Calibration solves, per
// question, for the easiness beta_q such that the POPULATION mean correct
// rate equals the published one (bisection against a fixed calibration
// sample of abilities), and tunes gamma so one point of ability target
// moves the expected score by one point (fixed-point iteration on the
// mean logistic slope).
//
// The OPTIMIZATION quiz uses a different shape: with don't-know rates near
// 70% (Figure 15), a unit-slope logistic model cannot exist (there is not
// a full point of answerable mass per ability point). Instead, ability
// scales the published correct rates proportionally — P(correct) =
// c_q * opt_target/mu — and the remaining mass is split between don't-know
// and incorrect in the published ratio; respondents with higher targets
// therefore both answer more and answer better, which is what makes the
// Figure 20/21 category means reachable.
#pragma once

#include <array>
#include <cstdint>

#include "core/scoring.hpp"
#include "respondent/ability_model.hpp"
#include "stats/prng.hpp"

namespace fpq::respondent {

/// A fitted quiz response model; immutable after fit().
class CalibratedQuizModel {
 public:
  /// Fits to the published marginals using `seed` for the calibration
  /// population (deterministic: same seed, same model).
  static CalibratedQuizModel fit(std::uint64_t seed);

  /// Samples one respondent's core answer sheet.
  quiz::CoreSheet sample_core(const Ability& a, stats::Xoshiro256pp& g) const;

  /// Samples one respondent's optimization answer sheet (T/F questions
  /// plus the multiple-choice level question).
  quiz::OptSheet sample_opt(const Ability& a, stats::Xoshiro256pp& g) const;

  // -- Introspection for tests and docs ----------------------------------
  double gamma_core() const noexcept { return gamma_core_; }
  double core_beta(std::size_t q) const noexcept { return core_beta_[q]; }

  /// Expected core score for a given ability under the fitted model
  /// (used by tests to verify the unit-slope property).
  double expected_core_score(const Ability& a) const noexcept;

  /// Expected optimization T/F score for a given ability (proportional
  /// model; linear in opt_target by construction, modulo clamping).
  double expected_opt_score(const Ability& a) const noexcept;

 private:
  CalibratedQuizModel() = default;

  std::array<double, quiz::kCoreQuestionCount> core_beta_{};
  double gamma_core_ = 0.4;
  double mu_core_ = 8.5;
  double mu_opt_ = 0.6;
};

}  // namespace fpq::respondent
