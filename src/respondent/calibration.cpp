#include "respondent/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "respondent/background_model.hpp"

namespace fpq::respondent {

namespace {

namespace pd = fpq::paperdata;

constexpr std::size_t kCalibrationSample = 4000;

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

// Mean over the calibration thetas of answered-probability * sigmoid.
double population_correct_rate(const std::vector<double>& thetas,
                               double answered_rate, double beta) {
  double acc = 0.0;
  for (double theta : thetas) acc += sigmoid(theta + beta);
  return answered_rate * acc / static_cast<double>(thetas.size());
}

// Solves beta so the population correct rate hits `target`.
double solve_beta(const std::vector<double>& thetas, double answered_rate,
                  double target) {
  double lo = -12.0, hi = 12.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (population_correct_rate(thetas, answered_rate, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

quiz::Answer wrong_answer(quiz::Truth truth) noexcept {
  return truth == quiz::Truth::kTrue ? quiz::Answer::kFalse
                                     : quiz::Answer::kTrue;
}

}  // namespace

CalibratedQuizModel CalibratedQuizModel::fit(std::uint64_t seed) {
  CalibratedQuizModel model;
  model.mu_core_ = pd::core_quiz_averages().correct;
  model.mu_opt_ = pd::opt_quiz_averages().correct;

  // Calibration population: ability targets implied by sampled
  // backgrounds (the same generative path the cohort uses).
  stats::Xoshiro256pp g(seed);
  std::vector<double> core_targets, opt_targets;
  core_targets.reserve(kCalibrationSample);
  opt_targets.reserve(kCalibrationSample);
  for (std::size_t i = 0; i < kCalibrationSample; ++i) {
    const auto background = sample_background(g);
    const Ability a = derive_ability(background, g);
    core_targets.push_back(a.core_target);
    opt_targets.push_back(a.opt_target);
  }

  (void)opt_targets;  // the proportional opt model needs no fitting
  const auto core_rows = pd::core_breakdown();

  // Alternate beta-fitting and gamma (unit-slope) tuning; converges in a
  // couple of rounds because the slope varies slowly with beta.
  for (int round = 0; round < 4; ++round) {
    std::vector<double> thetas(core_targets.size());
    for (std::size_t i = 0; i < core_targets.size(); ++i) {
      thetas[i] = model.gamma_core_ * (core_targets[i] - model.mu_core_);
    }
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      const auto& row = core_rows[q];
      const double answered_rate =
          1.0 - (row.pct_dont_know + row.pct_unanswered) / 100.0;
      model.core_beta_[q] =
          solve_beta(thetas, answered_rate, row.pct_correct / 100.0);
    }
    // Mean d(score)/d(theta); want gamma * slope == 1.
    double slope = 0.0;
    for (double theta : thetas) {
      for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
        const auto& row = core_rows[q];
        const double answered_rate =
            1.0 - (row.pct_dont_know + row.pct_unanswered) / 100.0;
        const double p = sigmoid(theta + model.core_beta_[q]);
        slope += answered_rate * p * (1.0 - p);
      }
    }
    slope /= static_cast<double>(thetas.size());
    model.gamma_core_ = 1.0 / slope;
  }

  return model;
}

quiz::CoreSheet CalibratedQuizModel::sample_core(
    const Ability& a, stats::Xoshiro256pp& g) const {
  const auto truths = quiz::standard_core_truths();
  const auto rows = pd::core_breakdown();
  const double theta = gamma_core_ * (a.core_target - mu_core_);
  quiz::CoreSheet sheet;
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    const auto& row = rows[q];
    const double u = row.pct_unanswered / 100.0;
    const double d = std::clamp(
        row.pct_dont_know / 100.0 * a.dont_know_propensity, 0.0, 0.95);
    const double roll = stats::uniform01(g);
    if (roll < u) {
      sheet.answers[q] = quiz::Answer::kUnanswered;
    } else if (roll < u + d) {
      sheet.answers[q] = quiz::Answer::kDontKnow;
    } else if (stats::bernoulli(g, sigmoid(theta + core_beta_[q]))) {
      sheet.answers[q] = quiz::to_answer(truths[q]);
    } else {
      sheet.answers[q] = wrong_answer(truths[q]);
    }
  }
  return sheet;
}

quiz::OptSheet CalibratedQuizModel::sample_opt(
    const Ability& a, stats::Xoshiro256pp& g) const {
  const auto truths = quiz::standard_opt_truths();
  const auto rows = pd::opt_breakdown();
  const std::array<std::size_t, quiz::kOptTrueFalseCount> opt_row_of{0, 1,
                                                                     3};
  // Proportional model: ability scales each question's correct
  // probability; the rest of the mass splits between don't-know and
  // incorrect in the published ratio (modulated by hedging propensity).
  const double ratio = std::clamp(a.opt_target / mu_opt_, 0.0, 4.0);
  quiz::OptSheet sheet;
  for (std::size_t q = 0; q < quiz::kOptTrueFalseCount; ++q) {
    const auto& row = rows[opt_row_of[q]];
    const double u = row.pct_unanswered / 100.0;
    const double c =
        std::clamp(row.pct_correct / 100.0 * ratio, 0.0, 1.0 - u - 0.02);
    const double rest = 1.0 - u - c;
    const double dk_share =
        row.pct_dont_know / (row.pct_dont_know + row.pct_incorrect);
    const double d = rest * dk_share;
    const double roll = stats::uniform01(g);
    if (roll < u) {
      sheet.tf_answers[q] = quiz::Answer::kUnanswered;
    } else if (roll < u + c) {
      sheet.tf_answers[q] = quiz::to_answer(truths[q]);
    } else if (roll < u + c + d) {
      sheet.tf_answers[q] = quiz::Answer::kDontKnow;
    } else {
      sheet.tf_answers[q] = wrong_answer(truths[q]);
    }
  }

  // Standard-compliant Level (Figure 15 row 2): multiple choice. Ability
  // tilts the correct-choice probability mildly around the published rate.
  const auto& level_row = rows[2];
  const double u = level_row.pct_unanswered / 100.0;
  const double d = std::clamp(
      level_row.pct_dont_know / 100.0 * a.dont_know_propensity, 0.0, 0.95);
  const double base_correct = level_row.pct_correct / 100.0;
  const double p_correct = std::clamp(
      base_correct + 0.05 * (a.opt_target - mu_opt_), 0.01, 0.60);
  const double roll = stats::uniform01(g);
  if (roll < u) {
    sheet.level_choice = quiz::kOptLevelUnanswered;
  } else if (roll < u + d) {
    sheet.level_choice = quiz::kOptLevelDontKnow;
  } else if (stats::bernoulli(g, p_correct / (1.0 - u - d))) {
    sheet.level_choice = quiz::kOptLevelCorrectChoice;
  } else {
    // A wrong option, uniformly among the four incorrect ones.
    std::size_t wrong = stats::uniform_below(g, quiz::kOptLevelChoiceCount - 1);
    if (wrong >= quiz::kOptLevelCorrectChoice) ++wrong;
    sheet.level_choice = wrong;
  }
  return sheet;
}

double CalibratedQuizModel::expected_opt_score(
    const Ability& a) const noexcept {
  const auto rows = pd::opt_breakdown();
  const std::array<std::size_t, quiz::kOptTrueFalseCount> opt_row_of{0, 1,
                                                                     3};
  const double ratio = std::clamp(a.opt_target / mu_opt_, 0.0, 4.0);
  double expected = 0.0;
  for (std::size_t q = 0; q < quiz::kOptTrueFalseCount; ++q) {
    const auto& row = rows[opt_row_of[q]];
    const double u = row.pct_unanswered / 100.0;
    expected +=
        std::clamp(row.pct_correct / 100.0 * ratio, 0.0, 1.0 - u - 0.02);
  }
  return expected;
}

double CalibratedQuizModel::expected_core_score(
    const Ability& a) const noexcept {
  const auto rows = pd::core_breakdown();
  const double theta = gamma_core_ * (a.core_target - mu_core_);
  double expected = 0.0;
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    const auto& row = rows[q];
    const double u = row.pct_unanswered / 100.0;
    const double d = std::clamp(
        row.pct_dont_know / 100.0 * a.dont_know_propensity, 0.0, 0.95);
    expected += (1.0 - u - d) * sigmoid(theta + core_beta_[q]);
  }
  return expected;
}

}  // namespace fpq::respondent
