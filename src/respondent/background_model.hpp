// fpq::respondent — sampling synthetic participant backgrounds.
//
// Single-select factors are drawn from categorical distributions whose
// weights are the paper's published counts (Figures 1-3, 5, 8-11);
// multi-select factors (informal training, languages) are independent
// Bernoulli per option with the published selection rates (Figures 4, 6,
// 7). Factors are sampled independently of each other — the published
// tables are marginals, and independence reproduces every marginal while
// keeping the factor-effect model analyzable (see ability_model.hpp).
#pragma once

#include "stats/prng.hpp"
#include "survey/record.hpp"

namespace fpq::respondent {

/// Draws one background profile from the published marginals.
survey::BackgroundProfile sample_background(stats::Xoshiro256pp& g);

}  // namespace fpq::respondent
