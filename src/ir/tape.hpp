// fpq::ir — the tape: Expr compiled to a flat post-order bytecode program.
//
// The tree walk (evaluator.hpp) is the REFERENCE implementation: one
// virtual call per node per sample, easy to audit, easy to decorate. The
// tape is the same program linearized once — a dense instruction array
// over register slots, a constant pool pre-converted into the target
// format, and variable-binding slots — so the per-sample cost is a tight
// loop over plain structs instead of pointer-chasing and dispatch. The
// differential suite pins the tape bit- and sticky-flag-identical to
// evaluate_tree; every hot caller (evaluate_many, the sweep drivers, the
// gauntlet baselines, backend ground truth) runs the tape.
//
// Compilation is one post-order pass with two optional, semantics-
// preserving optimizations:
//
//   * CSE — hash consing makes structurally equal subtrees POINTER-equal,
//     so common-subexpression elimination is a pointer-keyed memo: each
//     distinct node is emitted once and later occurrences reuse its
//     register. Sound for values trivially, and sound for the STICKY flag
//     union because duplicate subtrees raise identical flags (the union
//     is idempotent). The per-op trace, however, sees each shared node
//     once instead of once per occurrence.
//
//   * Constant folding — a constant subtree is folded ONLY when every
//     operation in it is flag-clean under the tape's config (evaluated at
//     compile time on the softfloat engine itself). Folding 1.0/3.0 would
//     silently discard the inexact flag the program is entitled to
//     observe, so it stays in the instruction stream; 2.0*4.0 folds.
//     Exception provenance is therefore preserved exactly.
//
// TapeOptions::exact_trace() disables both, giving an instruction stream
// whose op sequence is the tree walk's visit sequence verbatim — required
// when an observer counts operations (TraceSink provenance, fpmon
// hardware monitoring of native runs, fault-injection site arming).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "ir/evaluator.hpp"
#include "ir/evaluators.hpp"

namespace fpq::ir {

/// Tape opcodes, one per ExprKind. kConst loads constant-pool slot `a`;
/// kVar loads binding slot `a` (narrowed into the format, quiet); the
/// rest read register operands a/b/c and write register dst.
enum class TapeOp : std::uint8_t {
  kConst,
  kVar,
  kNeg,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kSqrt,
  kFma,
  kCmpEq,
  kCmpLt,
};

/// Number of register operands an opcode reads (0 for the two loads).
constexpr int tape_op_arity(TapeOp op) noexcept {
  switch (op) {
    case TapeOp::kConst:
    case TapeOp::kVar:
      return 0;
    case TapeOp::kNeg:
    case TapeOp::kSqrt:
      return 1;
    case TapeOp::kFma:
      return 3;
    default:
      return 2;
  }
}

/// One tape instruction. `dst` is always a register; `a` is a pool index
/// (kConst), a binding slot (kVar) or a register; `b`/`c` are registers
/// when the arity uses them.
struct TapeInst {
  TapeOp op = TapeOp::kConst;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// Compilation switches. Both default on; exact_trace() turns both off
/// for observers that need the tree walk's op sequence verbatim.
struct TapeOptions {
  bool cse = true;
  bool fold_constants = true;

  static constexpr TapeOptions exact_trace() { return {false, false}; }

  std::uint64_t bits() const noexcept {
    return (cse ? 1u : 0u) | (fold_constants ? 2u : 0u);
  }
  bool operator==(const TapeOptions&) const = default;
};

/// An Expr compiled for one EvalConfig. Immutable after compile; cheap to
/// share across threads (execution state lives in the engines).
class Tape {
 public:
  /// Compiles `expr` for `config`: applies the config's rewrite passes
  /// (contraction/reassociation), then linearizes post-order, children
  /// left to right, with CSE/folding per `options`.
  static Tape compile(const Expr& expr, const EvalConfig& config = {},
                      const TapeOptions& options = {});

  /// Process-wide compile memo: hash consing makes the root node pointer
  /// a stable identity, so (node, config, options) keys a compiled tape
  /// for the process lifetime. Repeated sweeps over the same request skip
  /// recompilation entirely.
  static std::shared_ptr<const Tape> cached(const Expr& expr,
                                            const EvalConfig& config = {},
                                            const TapeOptions& options = {});

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  static CacheStats cache_stats();
  static void clear_cache();

  // -- The compiled program ----------------------------------------------
  std::span<const TapeInst> code() const noexcept { return code_; }
  /// Constant pool, pre-converted into the config's format and widened
  /// back to binary64 (the conversion is quiet, exactly SoftEvaluator's
  /// literal semantics, so loads raise nothing at run time).
  std::span<const softfloat::Float64> constants() const noexcept {
    return constants_;
  }
  /// The same pool as raw in-format storage bits (what the softfloat
  /// engines load directly).
  std::span<const std::uint64_t> constant_bits() const noexcept {
    return constant_bits_;
  }
  /// Source node of instruction `pc` (for TraceSink / on_result hooks).
  /// For a materialized folded subtree this is a synthesized constant
  /// node carrying the folded value.
  const Expr& source(std::size_t pc) const { return sources_[pc]; }

  std::size_t register_count() const noexcept { return register_count_; }
  std::uint32_t result_register() const noexcept { return result_register_; }
  /// 1 + the largest var_index the program reads (0 for closed trees):
  /// the minimum binding-span width that avoids the quiet-NaN fallback.
  std::size_t required_width() const noexcept { return required_width_; }

  const EvalConfig& config() const noexcept { return config_; }
  const TapeOptions& options() const noexcept { return options_; }

  /// Content fingerprint: a stable 64-bit hash over the instruction
  /// stream, constant pool, register/result/width shape and the config's
  /// runtime bits. Two tapes with equal fingerprints execute identically,
  /// so this is the memoization key for batched results (BatchKey) and is
  /// computed ONCE at compile instead of per cache query.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  // -- Compile-time observability ----------------------------------------
  /// Operations elided by folding (flag-clean constant subtrees).
  std::size_t folded_ops() const noexcept { return folded_ops_; }
  /// Instructions saved by CSE (reuses of an already-emitted node).
  std::size_t cse_reuses() const noexcept { return cse_reuses_; }

 private:
  Tape() = default;

  std::vector<TapeInst> code_;
  std::vector<softfloat::Float64> constants_;
  std::vector<std::uint64_t> constant_bits_;
  std::vector<Expr> sources_;
  std::size_t register_count_ = 0;
  std::uint32_t result_register_ = 0;
  std::size_t required_width_ = 0;
  EvalConfig config_;
  TapeOptions options_;
  std::uint64_t fingerprint_ = 0;
  std::size_t folded_ops_ = 0;
  std::size_t cse_reuses_ = 0;

  friend class TapeCompiler;
};

/// Generic tape runner: drop-in replacement for evaluate_tree over ANY
/// Evaluator<V> — the evaluator's hooks fire with each instruction's
/// source node, so TraceSink/FlagControl/on_result behave exactly as in
/// the tree walk. On a tape compiled with TapeOptions::exact_trace() the
/// hook sequence is IDENTICAL to evaluate_tree's (same nodes, same
/// order); with CSE/folding enabled, shared nodes fire once and folded
/// flag-clean subtrees load as synthesized constants (values and sticky
/// flag unions are unchanged either way — see docs/ir.md).
///
/// Evaluators with semantics other than the tape's config (backends,
/// native FPU) should run exact_trace() tapes: folding is computed under
/// the config's softfloat arithmetic.
template <typename V>
V run_tape(const Tape& tape, Evaluator<V>& ev,
           std::span<const double> bindings = {}) {
  std::vector<V> regs(tape.register_count());
  const std::span<const TapeInst> code = tape.code();
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const TapeInst& in = code[pc];
    const Expr& e = tape.source(pc);
    V out;
    switch (in.op) {
      case TapeOp::kConst:
        out = ev.constant(e);
        break;
      case TapeOp::kVar: {
        const double bound =
            in.a < bindings.size()
                ? bindings[in.a]
                : std::numeric_limits<double>::quiet_NaN();
        out = ev.variable(e, bound);
        break;
      }
      case TapeOp::kNeg:
        out = ev.neg(e, regs[in.a]);
        break;
      case TapeOp::kAdd:
        out = ev.add(e, regs[in.a], regs[in.b]);
        break;
      case TapeOp::kSub:
        out = ev.sub(e, regs[in.a], regs[in.b]);
        break;
      case TapeOp::kMul:
        out = ev.mul(e, regs[in.a], regs[in.b]);
        break;
      case TapeOp::kDiv:
        out = ev.div(e, regs[in.a], regs[in.b]);
        break;
      case TapeOp::kSqrt:
        out = ev.sqrt(e, regs[in.a]);
        break;
      case TapeOp::kFma:
        out = ev.fma(e, regs[in.a], regs[in.b], regs[in.c]);
        break;
      case TapeOp::kCmpEq:
        out = ev.cmp_eq(e, regs[in.a], regs[in.b]);
        break;
      case TapeOp::kCmpLt:
        out = ev.cmp_lt(e, regs[in.a], regs[in.b]);
        break;
    }
    ev.on_result(e, out);
    regs[in.dst] = out;
  }
  return regs[tape.result_register()];
}

/// Scalar softfloat engine: evaluates the tape in its config's format
/// with no virtual dispatch, keeping intermediates in-format between
/// operations (bit- and flag-identical to SoftEvaluator's widen/renarrow
/// discipline because widening is exact and re-narrowing an in-format
/// value is exact and quiet). Equivalent to evaluate(expr, config,
/// bindings, trace) on the tape's source expression.
Outcome execute(const Tape& tape, std::span<const double> bindings = {},
                TraceSink* trace = nullptr);

}  // namespace fpq::ir
