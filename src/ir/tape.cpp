#include "ir/tape.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "ir/rewrite.hpp"
#include "softfloat/ops.hpp"

namespace fpq::ir {

namespace sf = fpq::softfloat;

namespace {

constexpr std::uint32_t kNoReg = 0xFFFFFFFFu;

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return z ^ (z >> 27);
}

TapeOp op_of(ExprKind kind) noexcept {
  switch (kind) {
    case ExprKind::kConst:
      return TapeOp::kConst;
    case ExprKind::kVar:
      return TapeOp::kVar;
    case ExprKind::kNeg:
      return TapeOp::kNeg;
    case ExprKind::kAdd:
      return TapeOp::kAdd;
    case ExprKind::kSub:
      return TapeOp::kSub;
    case ExprKind::kMul:
      return TapeOp::kMul;
    case ExprKind::kDiv:
      return TapeOp::kDiv;
    case ExprKind::kSqrt:
      return TapeOp::kSqrt;
    case ExprKind::kFma:
      return TapeOp::kFma;
    case ExprKind::kCmpEq:
      return TapeOp::kCmpEq;
    default:
      return TapeOp::kCmpLt;
  }
}

// Per-format compile-time arithmetic, replicating SoftEvaluator's
// narrow/widen discipline exactly (evaluators.hpp): literal/operand
// narrowing is quiet with DAZ propagated, widening is exact.
template <int kBits>
struct FormatArith {
  using F = sf::Float<kBits>;

  static F narrow(double x, const EvalConfig& cfg) {
    if constexpr (kBits == 64) {
      return sf::from_native(x);
    } else {
      sf::Env quiet(cfg.rounding);
      quiet.set_denormals_are_zero(cfg.denormals_are_zero);
      return sf::convert<kBits>(sf::from_native(x), quiet);
    }
  }
  static double widen(F x) {
    if constexpr (kBits == 64) {
      return sf::to_native(x);
    } else {
      sf::Env quiet;  // widening is exact
      return sf::to_native(sf::convert<64>(x, quiet));
    }
  }

  /// In-format storage bits of `x` (already an in-format widened value or
  /// a raw literal; the narrowing here is SoftEvaluator's quiet literal
  /// conversion).
  static std::uint64_t format_bits(double x, const EvalConfig& cfg) {
    return static_cast<std::uint64_t>(narrow(x, cfg).bits);
  }

  /// Literal semantics: widen(narrow(v)) — always quiet.
  static double literal(double v, const EvalConfig& cfg) {
    return widen(narrow(v, cfg));
  }

  /// Attempts the operation at compile time. Succeeds ONLY when the op
  /// raises no flags under the config's rounding/FTZ/DAZ — a flag-raising
  /// op must stay in the instruction stream so exception provenance is
  /// preserved.
  static bool try_op(TapeOp op, std::span<const double> kids,
                     const EvalConfig& cfg, double* out) {
    sf::Env env(cfg.rounding);
    env.set_flush_to_zero(cfg.flush_to_zero);
    env.set_denormals_are_zero(cfg.denormals_are_zero);
    const auto k = [&](std::size_t i) { return narrow(kids[i], cfg); };
    F r;
    switch (op) {
      case TapeOp::kNeg:
        // Sign-bit operation: never raises (IEEE 5.5.1).
        *out = widen(k(0).negated());
        return true;
      case TapeOp::kAdd:
        r = sf::add(k(0), k(1), env);
        break;
      case TapeOp::kSub:
        r = sf::sub(k(0), k(1), env);
        break;
      case TapeOp::kMul:
        r = sf::mul(k(0), k(1), env);
        break;
      case TapeOp::kDiv:
        r = sf::div(k(0), k(1), env);
        break;
      case TapeOp::kSqrt:
        r = sf::sqrt(k(0), env);
        break;
      case TapeOp::kFma:
        r = sf::fma(k(0), k(1), k(2), env);
        break;
      case TapeOp::kCmpEq: {
        const bool eq = sf::equal(k(0), k(1), env);
        if (env.flags() != 0) return false;
        *out = eq ? 1.0 : 0.0;
        return true;
      }
      case TapeOp::kCmpLt: {
        const bool lt = sf::less(k(0), k(1), env);
        if (env.flags() != 0) return false;
        *out = lt ? 1.0 : 0.0;
        return true;
      }
      default:
        return false;  // kConst/kVar never reach here
    }
    if (env.flags() != 0) return false;
    *out = widen(r);
    return true;
  }
};

template <typename Fn>
auto dispatch_format(int format_bits, Fn&& fn) {
  switch (format_bits) {
    case 16:
      return fn(std::integral_constant<int, 16>{});
    case 32:
      return fn(std::integral_constant<int, 32>{});
    case sf::kBFloat16:
      return fn(std::integral_constant<int, sf::kBFloat16>{});
    default:
      return fn(std::integral_constant<int, 64>{});
  }
}

double fold_literal(double v, const EvalConfig& cfg) {
  return dispatch_format(cfg.format_bits, [&](auto tag) {
    return FormatArith<decltype(tag)::value>::literal(v, cfg);
  });
}

std::uint64_t literal_format_bits(double v, const EvalConfig& cfg) {
  return dispatch_format(cfg.format_bits, [&](auto tag) {
    return FormatArith<decltype(tag)::value>::format_bits(v, cfg);
  });
}

bool try_fold_op(TapeOp op, std::span<const double> kids,
                 const EvalConfig& cfg, double* out) {
  return dispatch_format(cfg.format_bits, [&](auto tag) {
    return FormatArith<decltype(tag)::value>::try_op(op, kids, cfg, out);
  });
}

}  // namespace

/// One compile: a post-order emission pass over the (rewritten) tree with
/// pointer-keyed CSE and flag-clean constant folding, followed by a
/// linear-scan register-reuse pass (registers are freed at their last
/// read, so the SoA engines' register files stay small and cache-warm).
class TapeCompiler {
 public:
  TapeCompiler(const EvalConfig& config, const TapeOptions& options)
      : config_(config), options_(options) {}

  Tape run(const Expr& root) {
    const int slot = visit(root);
    tape_.result_register_ = materialize(slot, root);
    allocate_registers();
    tape_.config_ = config_;
    tape_.options_ = options_;
    tape_.fingerprint_ = fingerprint();
    return std::move(tape_);
  }

 private:
  // A visited subtree is either a folded compile-time value, a register,
  // or both (a folded value that some consumer already materialized).
  struct Slot {
    bool folded = false;
    double value = 0.0;  ///< widened in-format value when folded
    std::uint32_t reg = kNoReg;
  };

  int visit(const Expr& e) {
    const Expr::Node& n = e.node();
    if (options_.cse) {
      if (const auto it = memo_.find(&n); it != memo_.end()) {
        ++tape_.cse_reuses_;
        return it->second;
      }
    }
    int slot = -1;
    switch (n.kind) {
      case ExprKind::kConst: {
        const double v = fold_literal(sf::to_native(n.value), config_);
        if (options_.fold_constants) {
          slot = make_slot(Slot{true, v, kNoReg});
        } else {
          Slot s;
          s.reg = emit_const(v, e);
          slot = make_slot(s);
        }
        break;
      }
      case ExprKind::kVar: {
        if (n.var_index + std::size_t{1} > tape_.required_width_) {
          tape_.required_width_ = n.var_index + std::size_t{1};
        }
        Slot s;
        s.reg = emit(TapeInst{TapeOp::kVar, next_vreg(), n.var_index, 0, 0},
                     e);
        slot = make_slot(s);
        break;
      }
      default: {
        const std::size_t nkids = n.children.size();
        int kid_slots[3] = {-1, -1, -1};
        for (std::size_t i = 0; i < nkids; ++i) {
          kid_slots[i] = visit(n.children[i]);
        }
        const TapeOp op = op_of(n.kind);
        if (options_.fold_constants) {
          bool all_folded = true;
          double kid_values[3] = {0, 0, 0};
          for (std::size_t i = 0; i < nkids; ++i) {
            const Slot& k = slots_[static_cast<std::size_t>(kid_slots[i])];
            all_folded = all_folded && k.folded;
            kid_values[i] = k.value;
          }
          double folded_value = 0.0;
          if (all_folded &&
              try_fold_op(op, std::span<const double>(kid_values, nkids),
                          config_, &folded_value)) {
            ++tape_.folded_ops_;
            slot = make_slot(Slot{true, folded_value, kNoReg});
            break;
          }
        }
        TapeInst inst{op, 0, 0, 0, 0};
        std::uint32_t kid_regs[3] = {0, 0, 0};
        for (std::size_t i = 0; i < nkids; ++i) {
          kid_regs[i] = materialize(kid_slots[i], n.children[i]);
        }
        inst.a = kid_regs[0];
        inst.b = kid_regs[1];
        inst.c = kid_regs[2];
        inst.dst = next_vreg();
        Slot s;
        s.reg = emit(inst, e);
        slot = make_slot(s);
        break;
      }
    }
    if (options_.cse) memo_.emplace(&n, slot);
    return slot;
  }

  /// Ensures a slot has a register, emitting a constant load for a folded
  /// value on first use. The load's source node is the original constant
  /// when the folded subtree was a leaf, or a synthesized constant
  /// carrying the folded value otherwise (so run_tape's hooks stay
  /// well-defined).
  std::uint32_t materialize(int slot_index, const Expr& src) {
    Slot& s = slots_[static_cast<std::size_t>(slot_index)];
    if (s.reg != kNoReg) return s.reg;
    const Expr source = src.node().kind == ExprKind::kConst
                            ? src
                            : Expr::constant(s.value);
    s.reg = emit_const(s.value, source);
    return s.reg;
  }

  std::uint32_t emit_const(double widened, const Expr& source) {
    const std::uint64_t fbits = literal_format_bits(widened, config_);
    std::uint32_t pool_index;
    if (const auto it = pool_index_.find(fbits); it != pool_index_.end()) {
      pool_index = it->second;
    } else {
      pool_index = static_cast<std::uint32_t>(tape_.constant_bits_.size());
      tape_.constant_bits_.push_back(fbits);
      tape_.constants_.push_back(
          sf::from_native(fold_literal(widened, config_)));
      pool_index_.emplace(fbits, pool_index);
    }
    return emit(TapeInst{TapeOp::kConst, next_vreg(), pool_index, 0, 0},
                source);
  }

  std::uint32_t emit(TapeInst inst, const Expr& source) {
    tape_.code_.push_back(inst);
    tape_.sources_.push_back(source);
    return inst.dst;
  }

  std::uint32_t next_vreg() { return vreg_count_++; }

  int make_slot(Slot s) {
    slots_.push_back(s);
    return static_cast<int>(slots_.size()) - 1;
  }

  /// Linear-scan register reuse: a virtual register is freed after the
  /// instruction performing its last read (the result register is pinned
  /// to the end), and freed registers are recycled for later
  /// destinations. In-place destinations (dst == operand) are safe: every
  /// engine reads an instruction's operands before writing its result.
  void allocate_registers() {
    auto& code = tape_.code_;
    const std::size_t npc = code.size();
    std::vector<std::size_t> last_use(vreg_count_, 0);
    for (std::size_t pc = 0; pc < npc; ++pc) {
      const TapeInst& in = code[pc];
      const int arity = tape_op_arity(in.op);
      if (arity >= 1) last_use[in.a] = pc;
      if (arity >= 2) last_use[in.b] = pc;
      if (arity >= 3) last_use[in.c] = pc;
    }
    last_use[tape_.result_register_] = npc;

    std::vector<std::uint32_t> phys(vreg_count_, kNoReg);
    std::vector<std::uint32_t> free_list;
    std::uint32_t next_phys = 0;
    for (std::size_t pc = 0; pc < npc; ++pc) {
      TapeInst& in = code[pc];
      const int arity = tape_op_arity(in.op);
      std::uint32_t operands[3] = {in.a, in.b, in.c};
      for (int i = 0; i < arity; ++i) {
        const std::uint32_t vreg = operands[i];
        // Free once per distinct operand reaching its last read here.
        bool seen = false;
        for (int j = 0; j < i; ++j) seen = seen || operands[j] == vreg;
        if (!seen && last_use[vreg] == pc) {
          free_list.push_back(phys[vreg]);
        }
      }
      if (arity >= 1) in.a = phys[operands[0]];
      if (arity >= 2) in.b = phys[operands[1]];
      if (arity >= 3) in.c = phys[operands[2]];
      std::uint32_t d;
      if (free_list.empty()) {
        d = next_phys++;
      } else {
        d = free_list.back();
        free_list.pop_back();
      }
      phys[in.dst] = d;
      in.dst = d;
    }
    tape_.register_count_ = next_phys;
    tape_.result_register_ = phys[tape_.result_register_];
  }

  std::uint64_t fingerprint() const {
    // Only the bits that determine execution: rewrite flags are already
    // baked into the instruction stream, so two configs that compile to
    // the same program deliberately share a fingerprint.
    std::uint64_t h = 0x5441504531ULL;  // "TAPE1"
    h = hash_combine(h, static_cast<std::uint64_t>(config_.format_bits));
    h = hash_combine(h, static_cast<std::uint64_t>(config_.rounding));
    h = hash_combine(h, (config_.flush_to_zero ? 2u : 0u) |
                            (config_.denormals_are_zero ? 1u : 0u));
    h = hash_combine(h, tape_.code_.size());
    for (const TapeInst& in : tape_.code_) {
      h = hash_combine(h, static_cast<std::uint64_t>(in.op));
      h = hash_combine(h, (std::uint64_t{in.dst} << 32) | in.a);
      h = hash_combine(h, (std::uint64_t{in.b} << 32) | in.c);
    }
    for (const std::uint64_t bits : tape_.constant_bits_) {
      h = hash_combine(h, bits);
    }
    h = hash_combine(h, tape_.register_count_);
    h = hash_combine(h, tape_.result_register_);
    h = hash_combine(h, tape_.required_width_);
    return h;
  }

  EvalConfig config_;
  TapeOptions options_;
  Tape tape_;
  std::vector<Slot> slots_;
  std::unordered_map<const void*, int> memo_;
  std::unordered_map<std::uint64_t, std::uint32_t> pool_index_;
  std::uint32_t vreg_count_ = 0;
};

Tape Tape::compile(const Expr& expr, const EvalConfig& config,
                   const TapeOptions& options) {
  const Expr tree = pipeline_rewrite(expr, config.contract_mul_add,
                                     config.reassociate);
  return TapeCompiler(config, options).run(tree);
}

// -- Compile memo -----------------------------------------------------------

namespace {

struct TapeCacheKey {
  const void* node = nullptr;
  std::uint64_t config_fp = 0;
  std::uint64_t options_bits = 0;

  bool operator==(const TapeCacheKey&) const = default;
};

struct TapeCacheKeyHash {
  std::size_t operator()(const TapeCacheKey& k) const noexcept {
    std::uint64_t h =
        hash_combine(reinterpret_cast<std::uintptr_t>(k.node), k.config_fp);
    return static_cast<std::size_t>(hash_combine(h, k.options_bits));
  }
};

struct TapeCacheState {
  std::mutex mutex;
  std::unordered_map<TapeCacheKey, std::shared_ptr<const Tape>,
                     TapeCacheKeyHash>
      map;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

TapeCacheState& tape_cache() {
  static TapeCacheState state;
  return state;
}

}  // namespace

std::shared_ptr<const Tape> Tape::cached(const Expr& expr,
                                         const EvalConfig& config,
                                         const TapeOptions& options) {
  // Interned nodes live for the process lifetime, so the root pointer is
  // a stable identity for (tree, rewrites-applied-at-compile).
  TapeCacheKey key{&expr.node(), config.fingerprint(), options.bits()};
  TapeCacheState& cache = tape_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    if (const auto it = cache.map.find(key); it != cache.map.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  auto tape = std::make_shared<const Tape>(compile(expr, config, options));
  std::lock_guard<std::mutex> lock(cache.mutex);
  // First writer wins (identical by determinism of compile anyway).
  return cache.map.try_emplace(key, std::move(tape)).first->second;
}

Tape::CacheStats Tape::cache_stats() {
  TapeCacheState& cache = tape_cache();
  CacheStats out;
  out.hits = cache.hits.load();
  out.misses = cache.misses.load();
  std::lock_guard<std::mutex> lock(cache.mutex);
  out.entries = cache.map.size();
  return out;
}

void Tape::clear_cache() {
  TapeCacheState& cache = tape_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.map.clear();
  cache.hits.store(0);
  cache.misses.store(0);
}

// -- Scalar softfloat engine ------------------------------------------------

namespace {

template <int kBits>
Outcome run_soft_scalar(const Tape& t, std::span<const double> bindings,
                        TraceSink* trace) {
  using F = sf::Float<kBits>;
  using Storage = typename F::Storage;
  const EvalConfig& cfg = t.config();
  sf::Env env(cfg.rounding);
  env.set_flush_to_zero(cfg.flush_to_zero);
  env.set_denormals_are_zero(cfg.denormals_are_zero);

  const auto narrow_binding = [&](double x) -> F {
    if constexpr (kBits == 64) {
      return sf::from_native(x);
    } else {
      sf::Env quiet(cfg.rounding);
      quiet.set_denormals_are_zero(cfg.denormals_are_zero);
      return sf::convert<kBits>(sf::from_native(x), quiet);
    }
  };
  const auto widen = [](F x) -> double { return FormatArith<kBits>::widen(x); };

  std::vector<F> regs(t.register_count());
  const std::span<const TapeInst> code = t.code();
  const std::span<const std::uint64_t> pool = t.constant_bits();
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const TapeInst& in = code[pc];
    switch (in.op) {
      case TapeOp::kConst:
        regs[in.dst] = F::from_bits(static_cast<Storage>(pool[in.a]));
        break;
      case TapeOp::kVar: {
        const double bound =
            in.a < bindings.size()
                ? bindings[in.a]
                : std::numeric_limits<double>::quiet_NaN();
        regs[in.dst] = narrow_binding(bound);
        break;
      }
      case TapeOp::kNeg: {
        const F r = regs[in.a].negated();
        if (trace != nullptr) trace->on_op(t.source(pc), widen(r), 0);
        regs[in.dst] = r;
        break;
      }
      case TapeOp::kCmpEq:
      case TapeOp::kCmpLt: {
        // Per-op flag capture only when traced; the sticky union is
        // unchanged either way (clear + op + re-raise ≡ op).
        const unsigned before = env.flags();
        if (trace != nullptr) env.clear_flags();
        const bool r = in.op == TapeOp::kCmpEq
                           ? sf::equal(regs[in.a], regs[in.b], env)
                           : sf::less(regs[in.a], regs[in.b], env);
        if (trace != nullptr) {
          const unsigned raised = env.flags();
          env.raise(before);
          trace->on_op(t.source(pc), r ? 1.0 : 0.0, raised);
        }
        regs[in.dst] = r ? F::one() : F::zero();
        break;
      }
      default: {
        const unsigned before = env.flags();
        if (trace != nullptr) env.clear_flags();
        F r;
        switch (in.op) {
          case TapeOp::kAdd:
            r = sf::add(regs[in.a], regs[in.b], env);
            break;
          case TapeOp::kSub:
            r = sf::sub(regs[in.a], regs[in.b], env);
            break;
          case TapeOp::kMul:
            r = sf::mul(regs[in.a], regs[in.b], env);
            break;
          case TapeOp::kDiv:
            r = sf::div(regs[in.a], regs[in.b], env);
            break;
          case TapeOp::kSqrt:
            r = sf::sqrt(regs[in.a], env);
            break;
          default:
            r = sf::fma(regs[in.a], regs[in.b], regs[in.c], env);
            break;
        }
        if (trace != nullptr) {
          const unsigned raised = env.flags();
          env.raise(before);
          trace->on_op(t.source(pc), widen(r), raised);
        }
        regs[in.dst] = r;
        break;
      }
    }
  }
  Outcome out;
  out.value = sf::from_native(widen(regs[t.result_register()]));
  out.flags = env.flags();
  return out;
}

}  // namespace

Outcome execute(const Tape& tape, std::span<const double> bindings,
                TraceSink* trace) {
  return dispatch_format(tape.config().format_bits, [&](auto tag) {
    return run_soft_scalar<decltype(tag)::value>(tape, bindings, trace);
  });
}

}  // namespace fpq::ir
