#include "ir/expr.hpp"

#include <cassert>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace fpq::ir {

namespace sf = fpq::softfloat;

using Kind = ExprKind;

namespace {

// splitmix64 finalizer: the same mixer the parallel substrate uses for
// shard seeds, applied here to structural node fingerprints.
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t structural_hash(const Expr::Node& n) {
  std::uint64_t h = mix(static_cast<std::uint64_t>(n.kind) + 1);
  switch (n.kind) {
    case Kind::kConst:
      h = combine(h, n.value.bits);
      break;
    case Kind::kVar:
      h = combine(h, n.var_index);
      for (const char c : n.var_name) {
        h = combine(h, static_cast<unsigned char>(c));
      }
      break;
    default:
      for (const Expr& c : n.children) h = combine(h, c.hash());
      break;
  }
  return h;
}

bool structurally_equal(const Expr::Node& a, const Expr::Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kConst:
      return a.value.bits == b.value.bits;
    case Kind::kVar:
      return a.var_index == b.var_index && a.var_name == b.var_name;
    default:
      if (a.children.size() != b.children.size()) return false;
      // Children are interned already, so identity equality suffices.
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        if (!(a.children[i] == b.children[i])) return false;
      }
      return true;
  }
}

// The process-wide intern pool. Nodes are never evicted: the trees in
// this codebase are demonstration-sized, and stable lifetimes keep the
// hash → node mapping race-free under the striped readers in evaluate_many.
class InternPool {
 public:
  Expr intern(Expr::Node&& candidate) {
    candidate.hash = structural_hash(candidate);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [lo, hi] = nodes_.equal_range(candidate.hash);
    for (auto it = lo; it != hi; ++it) {
      if (structurally_equal(*it->second, candidate)) {
        return Expr{it->second};
      }
    }
    auto node =
        std::make_shared<const Expr::Node>(std::move(candidate));
    nodes_.emplace(node->hash, node);
    return Expr{std::move(node)};
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
  }

  static InternPool& global() {
    static InternPool pool;
    return pool;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_multimap<std::uint64_t,
                          std::shared_ptr<const Expr::Node>>
      nodes_;
};

Expr make_node(Kind kind, std::vector<Expr> children) {
  Expr::Node n;
  n.kind = kind;
  n.children = std::move(children);
  return InternPool::global().intern(std::move(n));
}

}  // namespace

Expr Expr::constant(double v) { return constant(sf::from_native(v)); }

Expr Expr::constant(sf::Float64 v) {
  Node n;
  n.kind = Kind::kConst;
  n.value = v;
  return InternPool::global().intern(std::move(n));
}

Expr Expr::variable(std::string name, std::uint32_t index) {
  Node n;
  n.kind = Kind::kVar;
  n.var_name = std::move(name);
  n.var_index = index;
  return InternPool::global().intern(std::move(n));
}

Expr Expr::neg(Expr a) { return make_node(Kind::kNeg, {a}); }
Expr Expr::add(Expr a, Expr b) { return make_node(Kind::kAdd, {a, b}); }
Expr Expr::sub(Expr a, Expr b) { return make_node(Kind::kSub, {a, b}); }
Expr Expr::mul(Expr a, Expr b) { return make_node(Kind::kMul, {a, b}); }
Expr Expr::div(Expr a, Expr b) { return make_node(Kind::kDiv, {a, b}); }
Expr Expr::sqrt(Expr a) { return make_node(Kind::kSqrt, {a}); }
Expr Expr::fma(Expr a, Expr b, Expr c) {
  return make_node(Kind::kFma, {a, b, c});
}
Expr Expr::cmp_eq(Expr a, Expr b) {
  return make_node(Kind::kCmpEq, {a, b});
}
Expr Expr::cmp_lt(Expr a, Expr b) {
  return make_node(Kind::kCmpLt, {a, b});
}

Expr Expr::sum(std::span<const double> xs) {
  assert(!xs.empty());
  Expr acc = constant(xs[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc = add(acc, constant(xs[i]));
  }
  return acc;
}

Expr Expr::sum(std::initializer_list<double> xs) {
  return sum(std::span<const double>(xs.begin(), xs.size()));
}

Expr Expr::sum(std::span<const Expr> xs) {
  assert(!xs.empty());
  Expr acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) acc = add(acc, xs[i]);
  return acc;
}

Expr Expr::dot(std::span<const Expr> xs, std::span<const Expr> ys) {
  assert(!xs.empty() && xs.size() == ys.size());
  Expr acc = mul(xs[0], ys[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc = add(acc, mul(xs[i], ys[i]));
  }
  return acc;
}

Expr Expr::dot(std::span<const double> xs, std::span<const double> ys) {
  assert(!xs.empty() && xs.size() == ys.size());
  Expr acc = mul(constant(xs[0]), constant(ys[0]));
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc = add(acc, mul(constant(xs[i]), constant(ys[i])));
  }
  return acc;
}

Expr Expr::horner(std::span<const double> coeffs, Expr x) {
  assert(!coeffs.empty());
  Expr acc = constant(coeffs[0]);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    acc = add(mul(acc, x), constant(coeffs[i]));
  }
  return acc;
}

std::string Expr::to_string() const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kConst: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", sf::to_native(n.value));
      return buf;
    }
    case Kind::kVar:
      return n.var_name;
    case Kind::kNeg:
      return "-" + n.children[0].to_string();
    case Kind::kAdd:
      return "(" + n.children[0].to_string() + " + " +
             n.children[1].to_string() + ")";
    case Kind::kSub:
      return "(" + n.children[0].to_string() + " - " +
             n.children[1].to_string() + ")";
    case Kind::kMul:
      return "(" + n.children[0].to_string() + " * " +
             n.children[1].to_string() + ")";
    case Kind::kDiv:
      return "(" + n.children[0].to_string() + " / " +
             n.children[1].to_string() + ")";
    case Kind::kSqrt:
      return "sqrt(" + n.children[0].to_string() + ")";
    case Kind::kFma:
      return "fma(" + n.children[0].to_string() + ", " +
             n.children[1].to_string() + ", " + n.children[2].to_string() +
             ")";
    case Kind::kCmpEq:
      return "(" + n.children[0].to_string() + " == " +
             n.children[1].to_string() + ")";
    case Kind::kCmpLt:
      return "(" + n.children[0].to_string() + " < " +
             n.children[1].to_string() + ")";
  }
  return "?";
}

std::size_t Expr::intern_pool_size() {
  return InternPool::global().size();
}

}  // namespace fpq::ir
