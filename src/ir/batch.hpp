// fpq::ir — batched evaluation: one tree, many operand bindings, sharded
// over fpq::parallel with memoization.
//
// Variables make a tree a function of its bindings, so sweeps ("this
// kernel over 10k inputs", "this question's probe over the operand pool")
// become ONE tree plus a binding table. evaluate_many shards the rows
// over the pool's work-stealing lanes; every row gets a fresh evaluator
// (its own sticky-flag accounting), each chunk writes only its own output
// slots, and the result is bit-identical at every thread count.
//
// Memoization: a chunk's outcome is a pure function of (tree hash, config
// fingerprint, bindings content hash, chunk index) — hash consing gives
// the tree a stable fingerprint for free — so repeated sweeps hit
// parallel::BatchResultCache instead of re-walking the tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/evaluators.hpp"
#include "parallel/thread_pool.hpp"

namespace fpq::ir {

/// A batch's binding table is narrower than the program requires. Batched
/// entry points validate the width ONCE per batch and throw this instead
/// of quiet-NaN-poisoning every row (the per-node quiet-NaN contract for a
/// single out-of-range `variable` still holds in the scalar evaluators).
struct BindingWidthError : std::invalid_argument {
  std::size_t required;
  std::size_t provided;
  BindingWidthError(std::size_t required_width, std::size_t provided_width)
      : std::invalid_argument(
            "binding table width " + std::to_string(provided_width) +
            " < required width " + std::to_string(required_width)),
        required(required_width),
        provided(provided_width) {}
};

/// Content hash of a span of binding values (by bit pattern, so -0.0 and
/// NaN payloads are distinguished like the evaluation distinguishes them).
/// Shared by the memoizing batch engines.
std::uint64_t hash_bindings(std::span<const double> xs,
                            std::size_t width) noexcept;

/// Row-major table of operand bindings: row r binds the tree's variables
/// var_index 0..width-1.
struct BindingTable {
  std::size_t width = 0;
  std::vector<double> values;  ///< rows() * width, row-major

  std::size_t rows() const noexcept {
    return width == 0 ? 0 : values.size() / width;
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return std::span<const double>(values).subspan(r * width, width);
  }
  void push_row(std::span<const double> xs) {
    values.insert(values.end(), xs.begin(), xs.end());
  }
};

struct BatchOptions {
  /// Memoize chunk outcomes in parallel::BatchResultCache::global().
  bool memoize = true;
  /// Lower bound on rows per chunk (amortizes task overhead).
  std::size_t min_rows_per_chunk = 64;
};

/// Evaluates `expr` under `config` once per binding row. Outcome i
/// corresponds to row i; per-row flags are isolated (fresh evaluator per
/// row). Deterministic: the same inputs give bit-identical outcomes at
/// every thread count, memoized or not.
std::vector<Outcome> evaluate_many(parallel::ThreadPool& pool,
                                   const Expr& expr,
                                   const BindingTable& bindings,
                                   const EvalConfig& config = {},
                                   const BatchOptions& options = {});

}  // namespace fpq::ir
