// fpq::ir — the unified expression IR: one tree, every evaluator.
//
// Every analysis in fpqual asks the same question — "what does THIS
// expression do under THAT arithmetic?" — so the expression itself is a
// first-class, shared data structure. An Expr is a value-semantic,
// hash-consed tree over binary64 constants and named variables; evaluation
// semantics live entirely outside the tree, in Evaluator implementations
// (evaluator.hpp) and in IR→IR rewrite passes (rewrite.hpp). The quiz
// ground-truth derivation, the emulated optimization pipeline, shadow
// execution, interval enclosure, and the workloads kernels all walk the
// same nodes.
//
// Hash consing: structurally identical trees share one immutable node, so
// structural equality is pointer equality and every subtree carries a
// stable 64-bit fingerprint (the memoization key for batched evaluation).
// Nodes are interned in a process-wide pool and live for the process
// lifetime — expressions here are small demonstration programs, not
// unbounded codegen.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "softfloat/value.hpp"

namespace fpq::ir {

/// Expression node kinds (exposed so analyzers can walk trees
/// structurally). kNeg is the IEEE sign-bit flip — distinct from
/// sub(0, x), which differs for x = ±0 — and is what contraction of
/// mul(a,b) - c rewrites the addend into.
enum class ExprKind {
  kConst,
  kVar,
  kNeg,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kSqrt,
  kFma,
  kCmpEq,
  kCmpLt,
};

/// A value-semantic, hash-consed expression tree over binary64 values.
class Expr {
 public:
  /// Leaf constant.
  static Expr constant(double v);
  static Expr constant(softfloat::Float64 v);

  /// Leaf variable: `index` selects the slot in the bindings span an
  /// evaluator is given; `name` is for rendering only.
  static Expr variable(std::string name, std::uint32_t index);

  /// Sign-bit negation (never raises flags; not the same as 0 - x).
  static Expr neg(Expr a);

  static Expr add(Expr a, Expr b);
  static Expr sub(Expr a, Expr b);
  static Expr mul(Expr a, Expr b);
  static Expr div(Expr a, Expr b);
  static Expr sqrt(Expr a);
  /// Explicitly fused multiply-add (what IEEE 754-2008 added).
  static Expr fma(Expr a, Expr b, Expr c);

  /// IEEE comparisons as expression nodes, evaluating to 1.0 / 0.0:
  /// cmp_eq is the quiet ==, cmp_lt the signaling <.
  static Expr cmp_eq(Expr a, Expr b);
  static Expr cmp_lt(Expr a, Expr b);

  /// Convenience: left-to-right sum of a list, as C source order implies.
  static Expr sum(std::span<const double> xs);
  static Expr sum(std::initializer_list<double> xs);
  static Expr sum(std::span<const Expr> xs);

  /// Left-to-right dot product: ((x0*y0 + x1*y1) + x2*y2) + ... — the
  /// naive accumulation loop every workloads kernel used to hand-roll.
  static Expr dot(std::span<const Expr> xs, std::span<const Expr> ys);
  static Expr dot(std::span<const double> xs, std::span<const double> ys);

  /// Horner evaluation of a polynomial, coefficients highest degree
  /// first: ((c0*x + c1)*x + c2)... A single coefficient is the constant
  /// polynomial.
  static Expr horner(std::span<const double> coeffs, Expr x);

  /// Renders the tree, e.g. "((a*b)+c)"; constants print as %g.
  std::string to_string() const;

  struct Node {
    ExprKind kind = ExprKind::kConst;
    softfloat::Float64 value;     ///< kConst payload
    std::uint32_t var_index = 0;  ///< kVar payload
    std::string var_name;         ///< kVar payload (rendering only)
    std::vector<Expr> children;
    std::uint64_t hash = 0;  ///< structural fingerprint (stable per run)
  };
  const Node& node() const { return *node_; }

  /// Structural fingerprint of this subtree; equal trees share it (and
  /// share the node itself). Memoization keys are built from this.
  std::uint64_t hash() const { return node_->hash; }

  /// Pointer identity IS structural equality, thanks to interning.
  friend bool operator==(const Expr& a, const Expr& b) {
    return a.node_.get() == b.node_.get();
  }

  /// Internal: wraps an interned node. Use the named factories instead.
  explicit Expr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}

  /// Number of nodes currently interned (observability for tests/benches).
  static std::size_t intern_pool_size();

 private:
  std::shared_ptr<const Node> node_;
};

}  // namespace fpq::ir
