// fpq::ir — concrete evaluators over the softfloat engine and the host
// FPU, plus the EvalConfig that names one complete arithmetic semantics.
//
// The value model is host double throughout (exactly the quiz backends'
// convention): evaluators for narrower formats round operands into the
// format on entry and widen results back exactly, so one binding span and
// one Outcome type serve every precision.
#pragma once

#include <cstdint>
#include <span>

#include "ir/evaluator.hpp"
#include "ir/rewrite.hpp"
#include "softfloat/env.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::ir {

/// One complete arithmetic semantics: format, rounding, flush modes, and
/// which pipeline rewrites are applied before evaluation. This is the
/// "config" axis of every memoization key.
struct EvalConfig {
  /// 16, 32, 64 or softfloat::kBFloat16.
  int format_bits = 64;
  softfloat::Rounding rounding = softfloat::Rounding::kNearestEven;
  /// Contract add/sub-of-mul into fma (the -ffp-contract=fast effect).
  bool contract_mul_add = false;
  /// Rebalance long +-chains (the -fassociative-math effect).
  bool reassociate = false;
  /// Non-standard hardware flush modes.
  bool flush_to_zero = false;
  bool denormals_are_zero = false;

  /// Stable 64-bit identity of this configuration (memoization key part).
  std::uint64_t fingerprint() const noexcept;

  static EvalConfig ieee_strict() { return EvalConfig{}; }
};

/// Evaluation outcome: the (widened) value plus the softfloat sticky
/// flags the whole evaluation raised.
struct Outcome {
  softfloat::Float64 value;
  unsigned flags = 0;

  bool operator==(const Outcome&) const = default;
};

/// Softfloat evaluator for one format. Per-operation flags are captured
/// exactly (saved, cleared, raised by the op, recorded, re-raised), so a
/// TraceSink sees each node's own contribution while the Env's sticky
/// union stays identical to an uninstrumented run.
template <int kBits>
class SoftEvaluator final : public Evaluator<double>, public FlagControl {
 public:
  explicit SoftEvaluator(const EvalConfig& config,
                         TraceSink* trace = nullptr)
      : env_(config.rounding), trace_(trace) {
    env_.set_flush_to_zero(config.flush_to_zero);
    env_.set_denormals_are_zero(config.denormals_are_zero);
  }

  unsigned flags() const noexcept { return env_.flags(); }
  void clear_flags() noexcept { env_.clear_flags(); }

  unsigned sticky_flags() const noexcept override { return env_.flags(); }
  void override_sticky_flags(unsigned flags) noexcept override {
    env_.clear_flags();
    env_.raise(flags);
  }

  double constant(const Expr& e) override {
    // Literal conversion into the format is quiet, as on real hardware.
    return widen(narrow(softfloat::to_native(e.node().value)));
  }
  double variable(const Expr& e, double bound) override {
    (void)e;
    return widen(narrow(bound));
  }
  double neg(const Expr& e, const double& a) override {
    // Sign-bit operation: never raises flags (IEEE 5.5.1).
    const double r = widen(narrow(a).negated());
    if (trace_ != nullptr) trace_->on_op(e, r, 0);
    return r;
  }
  double add(const Expr& e, const double& a, const double& b) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::add(narrow(a), narrow(b), env);
    });
  }
  double sub(const Expr& e, const double& a, const double& b) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::sub(narrow(a), narrow(b), env);
    });
  }
  double mul(const Expr& e, const double& a, const double& b) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::mul(narrow(a), narrow(b), env);
    });
  }
  double div(const Expr& e, const double& a, const double& b) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::div(narrow(a), narrow(b), env);
    });
  }
  double sqrt(const Expr& e, const double& a) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::sqrt(narrow(a), env);
    });
  }
  double fma(const Expr& e, const double& a, const double& b,
             const double& c) override {
    return run(e, [&](softfloat::Env& env) {
      return softfloat::fma(narrow(a), narrow(b), narrow(c), env);
    });
  }
  double cmp_eq(const Expr& e, const double& a, const double& b) override {
    return cmp(e, a, b, /*eq=*/true);
  }
  double cmp_lt(const Expr& e, const double& a, const double& b) override {
    return cmp(e, a, b, /*eq=*/false);
  }

 private:
  template <typename F>
  double run(const Expr& e, F&& f) {
    const unsigned before = env_.flags();
    env_.clear_flags();
    const double r = widen(f(env_));
    const unsigned raised = env_.flags();
    env_.raise(before);  // restore: the sticky union is unchanged
    if (trace_ != nullptr) trace_->on_op(e, r, raised);
    return r;
  }
  double cmp(const Expr& e, double a, double b, bool eq) {
    const unsigned before = env_.flags();
    env_.clear_flags();
    const bool r = eq ? softfloat::equal(narrow(a), narrow(b), env_)
                      : softfloat::less(narrow(a), narrow(b), env_);
    const unsigned raised = env_.flags();
    env_.raise(before);
    const double out = r ? 1.0 : 0.0;
    if (trace_ != nullptr) trace_->on_op(e, out, raised);
    return out;
  }
  softfloat::Float<kBits> narrow(double x) {
    if constexpr (kBits == 64) {
      return softfloat::from_native(x);
    } else {
      // Conversion rounds but must not pollute the op's flag accounting
      // beyond what real hardware of that format would do with a literal.
      softfloat::Env quiet(env_.rounding());
      quiet.set_denormals_are_zero(env_.denormals_are_zero());
      return softfloat::convert<kBits>(softfloat::from_native(x), quiet);
    }
  }
  double widen(softfloat::Float<kBits> x) {
    if constexpr (kBits == 64) {
      return softfloat::to_native(x);
    } else {
      softfloat::Env quiet;  // widening is exact
      return softfloat::to_native(softfloat::convert<64>(x, quiet));
    }
  }

  softfloat::Env env_;
  TraceSink* trace_ = nullptr;
};

/// Host-FPU evaluator over binary64: arithmetic goes through opaque
/// noinline helpers, so the real FPU executes every operation — any
/// enclosing fpmon::ScopedMonitor observes genuine hardware exceptions.
/// No per-op trace flags are emitted: draining fenv per operation would
/// corrupt the enclosing monitor, which is the whole point of this
/// evaluator. Use SoftEvaluator for provenance traces.
class NativeEvaluator64 final : public Evaluator<double> {
 public:
  double constant(const Expr& e) override;
  double variable(const Expr& e, double bound) override;
  double neg(const Expr& e, const double& a) override;
  double add(const Expr& e, const double& a, const double& b) override;
  double sub(const Expr& e, const double& a, const double& b) override;
  double mul(const Expr& e, const double& a, const double& b) override;
  double div(const Expr& e, const double& a, const double& b) override;
  double sqrt(const Expr& e, const double& a) override;
  double fma(const Expr& e, const double& a, const double& b,
             const double& c) override;
  double cmp_eq(const Expr& e, const double& a, const double& b) override;
  double cmp_lt(const Expr& e, const double& a, const double& b) override;
};

/// Host-FPU evaluator over binary32: operands narrow to float per
/// operation (through the FPU, so the narrowing itself is observable),
/// results widen back to double exactly.
class NativeEvaluator32 final : public Evaluator<double> {
 public:
  double constant(const Expr& e) override;
  double variable(const Expr& e, double bound) override;
  double neg(const Expr& e, const double& a) override;
  double add(const Expr& e, const double& a, const double& b) override;
  double sub(const Expr& e, const double& a, const double& b) override;
  double mul(const Expr& e, const double& a, const double& b) override;
  double div(const Expr& e, const double& a, const double& b) override;
  double sqrt(const Expr& e, const double& a) override;
  double fma(const Expr& e, const double& a, const double& b,
             const double& c) override;
  double cmp_eq(const Expr& e, const double& a, const double& b) override;
  double cmp_lt(const Expr& e, const double& a, const double& b) override;
};

/// The one-call entry point: applies the config's rewrite passes, then
/// evaluates on the softfloat engine in the config's format. `bindings`
/// feeds the tree's variables; `trace` (optional) receives per-operation
/// exception provenance.
Outcome evaluate(const Expr& expr, const EvalConfig& config,
                 std::span<const double> bindings = {},
                 TraceSink* trace = nullptr);

}  // namespace fpq::ir
