#include "ir/tape_batch.hpp"

#include <cfenv>
#include <cmath>
#include <cstdint>

#include "fpmon/flow.hpp"
#include "ir/native_ops.hpp"
#include "parallel/result_cache.hpp"
#include "parallel/shard.hpp"
#include "softfloat/batch.hpp"
#include "softfloat/fast16.hpp"
#include "softfloat/fast32.hpp"
#include "softfloat/kernels.hpp"

namespace fpq::ir {

namespace sf = fpq::softfloat;

namespace {

/// The SoA interpreter for one chunk: registers live as
/// regs[reg * lanes + lane] in-format values, flags[lane] accumulates the
/// per-row sticky union. In-format intermediates are bit- and
/// flag-identical to SoftEvaluator's widen/renarrow-per-op discipline
/// (widening is exact; re-narrowing an in-format value is exact and
/// quiet; DAZ/FTZ act inside the ops either way).
template <int kBits>
void run_soft_lanes(const Tape& t, const double* values, std::size_t width,
                    std::size_t begin, std::size_t end, Outcome* out) {
  using F = sf::Float<kBits>;
  using Storage = typename F::Storage;
  const std::size_t lanes = end - begin;
  const EvalConfig& cfg = t.config();
  sf::Env env(cfg.rounding);
  env.set_flush_to_zero(cfg.flush_to_zero);
  env.set_denormals_are_zero(cfg.denormals_are_zero);
  sf::Env quiet(cfg.rounding);
  quiet.set_denormals_are_zero(cfg.denormals_are_zero);

  std::vector<F> regs(t.register_count() * lanes);
  std::vector<unsigned> flags(lanes, 0);
  const std::span<const std::uint64_t> pool = t.constant_bits();

  for (const TapeInst& in : t.code()) {
    F* d = regs.data() + std::size_t{in.dst} * lanes;
    const F* a = regs.data() + std::size_t{in.a} * lanes;
    const F* b = regs.data() + std::size_t{in.b} * lanes;
    const F* c = regs.data() + std::size_t{in.c} * lanes;
    switch (in.op) {
      case TapeOp::kConst: {
        const F v = F::from_bits(static_cast<Storage>(pool[in.a]));
        for (std::size_t l = 0; l < lanes; ++l) d[l] = v;
        break;
      }
      case TapeOp::kVar:
        // Column in.a of the row-major block, one stride per row.
        // The entry points validated width > in.a, so no quiet-NaN lane.
        sf::narrow_from_double_n<kBits>(values + begin * width + in.a, width,
                                        d, lanes, quiet);
        break;
      case TapeOp::kNeg:
        sf::neg_n<kBits>(a, d, lanes);
        break;
      case TapeOp::kAdd:
        sf::add_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
      case TapeOp::kSub:
        sf::sub_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
      case TapeOp::kMul:
        sf::mul_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
      case TapeOp::kDiv:
        sf::div_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
      case TapeOp::kSqrt:
        sf::sqrt_n<kBits>(a, d, flags.data(), lanes, env);
        break;
      case TapeOp::kFma:
        sf::fma_n<kBits>(a, b, c, d, flags.data(), lanes, env);
        break;
      case TapeOp::kCmpEq:
        sf::equal_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
      case TapeOp::kCmpLt:
        sf::less_n<kBits>(a, b, d, flags.data(), lanes, env);
        break;
    }
  }

  const F* result = regs.data() + std::size_t{t.result_register()} * lanes;
  sf::Env widen_env;  // widening is exact
  for (std::size_t l = 0; l < lanes; ++l) {
    if constexpr (kBits == 64) {
      out[l].value = result[l];
    } else {
      out[l].value = sf::convert<64>(result[l], widen_env);
    }
    out[l].flags = flags[l];
  }
}

// The binary16 hot path: lanes hold binary16 VALUES as native doubles,
// ops run on the host FPU (pinned to round-to-nearest below) and fold
// back in-format through the scalar engine's own round/pack core — see
// softfloat/fast16.hpp for why every step is bit- and flag-identical to
// the softfloat operations. Lanes with special operands (NaN, infinity,
// division by zero, sqrt of a negative) drop to the scalar softfloat op,
// which keeps NaN payload propagation and invalid/divide-by-zero flags
// canonical without slowing the overwhelmingly common finite lanes.
void run_fast16_block(const Tape& t, const double* values, std::size_t width,
                      std::size_t begin, std::size_t end, Outcome* out) {
  namespace f16 = sf::fast16;
  using F16 = sf::Float16;
  const std::size_t lanes = end - begin;
  const EvalConfig& cfg = t.config();
  const sf::Rounding mode = cfg.rounding;
  const bool daz = cfg.denormals_are_zero;
  sf::Env env(mode);  // op env: FTZ/DAZ live, flags read per lane
  env.set_flush_to_zero(cfg.flush_to_zero);
  env.set_denormals_are_zero(daz);
  sf::Env quiet(mode);  // operand-narrowing env: flags discarded, no FTZ
  quiet.set_denormals_are_zero(daz);

  std::vector<double> regs(t.register_count() * lanes);
  std::vector<unsigned> flags(lanes, 0);
  const std::span<const std::uint64_t> pool = t.constant_bits();

  for (const TapeInst& in : t.code()) {
    double* d = regs.data() + std::size_t{in.dst} * lanes;
    const double* a = regs.data() + std::size_t{in.a} * lanes;
    const double* b = regs.data() + std::size_t{in.b} * lanes;
    const double* c = regs.data() + std::size_t{in.c} * lanes;
    switch (in.op) {
      case TapeOp::kConst: {
        const double v =
            f16::widen(F16::from_bits(static_cast<std::uint16_t>(pool[in.a])));
        for (std::size_t l = 0; l < lanes; ++l) d[l] = v;
        break;
      }
      case TapeOp::kVar:
        for (std::size_t l = 0; l < lanes; ++l) {
          const double x = values[(begin + l) * width + in.a];
          const std::uint64_t xb = std::bit_cast<std::uint64_t>(x);
          const auto be = (xb >> 52) & 0x7FF;
          if (be == 0) {  // signed zero or double-subnormal (DAZ range)
            d[l] = (xb << 1) == 0 ? x : f16::widen(sf::convert<16>(
                                            sf::from_native(x), quiet));
            continue;
          }
          if (be == 0x7FF) {  // infinity / NaN: quieting narrow
            d[l] = f16::widen(sf::convert<16>(sf::from_native(x), quiet));
            continue;
          }
          d[l] = f16::narrow16_value(x, mode);  // flags discarded
        }
        break;
      case TapeOp::kNeg:
        for (std::size_t l = 0; l < lanes; ++l) d[l] = f16::flip_sign(a[l]);
        break;
      case TapeOp::kAdd:
      case TapeOp::kSub: {
        const bool is_sub = in.op == TapeOp::kSub;
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (!(f16::is_finite(av) && f16::is_finite(bv))) {
            env.clear_flags();
            const F16 r = is_sub
                              ? sf::sub(f16::to_f16(av), f16::to_f16(bv), env)
                              : sf::add(f16::to_f16(av), f16::to_f16(bv), env);
            flags[l] |= env.flags();
            d[l] = f16::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f16::daz16(av);
            bv = f16::daz16(bv);
          } else if (f16::is_subnormal16(av) || f16::is_subnormal16(bv)) {
            f = sf::kFlagDenormalInput;
          }
          const double s = is_sub ? av - bv : av + bv;  // exact in double
          if (s == 0.0) {
            const bool sa = std::signbit(av);
            const bool sb = std::signbit(bv) != is_sub;  // addend sign
            const bool zs = (av == 0.0 && bv == 0.0 && sa == sb)
                                ? sa
                                : f16::exact_zero_sign(mode);
            d[l] = zs ? -0.0 : 0.0;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f16::round16(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      }
      case TapeOp::kMul:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (!(f16::is_finite(av) && f16::is_finite(bv))) {
            env.clear_flags();
            const F16 r = sf::mul(f16::to_f16(av), f16::to_f16(bv), env);
            flags[l] |= env.flags();
            d[l] = f16::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f16::daz16(av);
            bv = f16::daz16(bv);
          } else if (f16::is_subnormal16(av) || f16::is_subnormal16(bv)) {
            f = sf::kFlagDenormalInput;
          }
          const double s = av * bv;  // exact: 11+11 significand bits
          if (s == 0.0) {            // sign is the XOR the standard wants
            d[l] = s;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f16::round16(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kDiv:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          unsigned f = 0;
          bool slow = !(f16::is_finite(av) && f16::is_finite(bv));
          if (!slow) {
            if (daz) {
              av = f16::daz16(av);
              bv = f16::daz16(bv);
            } else if (f16::is_subnormal16(av) || f16::is_subnormal16(bv)) {
              f = sf::kFlagDenormalInput;
            }
            slow = bv == 0.0;  // divide-by-zero / 0 over 0: canonical path
          }
          if (slow) {
            env.clear_flags();
            const F16 r = sf::div(f16::to_f16(a[l]), f16::to_f16(b[l]), env);
            flags[l] |= env.flags();
            d[l] = f16::widen(r);
            continue;
          }
          const double s = av / bv;  // correctly rounded; narrow innocuous
          if (s == 0.0) {
            d[l] = s;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f16::round16(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kSqrt:
        for (std::size_t l = 0; l < lanes; ++l) {
          double xv = a[l];
          unsigned f = 0;
          bool slow = !f16::is_finite(xv);
          if (!slow) {
            if (daz) {
              xv = f16::daz16(xv);
            } else if (f16::is_subnormal16(xv)) {
              f = sf::kFlagDenormalInput;
            }
            slow = std::signbit(xv) && xv != 0.0;  // invalid: canonical NaN
          }
          if (slow) {
            env.clear_flags();
            const F16 r = sf::sqrt(f16::to_f16(a[l]), env);
            flags[l] |= env.flags();
            d[l] = f16::widen(r);
            continue;
          }
          if (xv == 0.0) {  // sqrt(±0) = ±0, exact
            d[l] = xv;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f16::round16(std::sqrt(xv), env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kFma:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l], cv = c[l];
          if (!(f16::is_finite(av) && f16::is_finite(bv) &&
                f16::is_finite(cv))) {
            env.clear_flags();
            const F16 r = sf::fma(f16::to_f16(av), f16::to_f16(bv),
                                  f16::to_f16(cv), env);
            flags[l] |= env.flags();
            d[l] = f16::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f16::daz16(av);
            bv = f16::daz16(bv);
            cv = f16::daz16(cv);
          } else if (f16::is_subnormal16(av) || f16::is_subnormal16(bv) ||
                     f16::is_subnormal16(cv)) {
            f = sf::kFlagDenormalInput;
          }
          const double t = av * bv;  // exact product
          const double s = t + cv;
          if (s == 0.0) {  // exact zero: |t + cv| >= 2^-48 when nonzero
            const bool psign = std::signbit(av) != std::signbit(bv);
            const bool zs = ((av == 0.0 || bv == 0.0) && cv == 0.0 &&
                             psign == std::signbit(cv))
                                ? psign
                                : f16::exact_zero_sign(mode);
            d[l] = zs ? -0.0 : 0.0;
            flags[l] |= f;
            continue;
          }
          // TwoSum error term; if the sum was inexact at binary64,
          // compress to round-to-odd so the in-format rounding sees which
          // side of every boundary the exact value is on.
          const double bb = s - t;
          const double err = (t - (s - bb)) + (cv - bb);
          double ro = s;
          if (err != 0.0 && (std::bit_cast<std::uint64_t>(s) & 1) == 0) {
            ro = f16::step_toward(s, err);
          }
          env.clear_flags();
          d[l] = f16::round16(ro, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kCmpEq:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (av != av || bv != bv) {  // unordered; sNaN cannot be in-lane
            d[l] = 0.0;
            continue;
          }
          if (daz) {
            av = f16::daz16(av);
            bv = f16::daz16(bv);
          }
          d[l] = av == bv ? 1.0 : 0.0;  // comparisons raise no DE flag
        }
        break;
      case TapeOp::kCmpLt:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (av != av || bv != bv) {  // signaling predicate: invalid
            flags[l] |= sf::kFlagInvalid;
            d[l] = 0.0;
            continue;
          }
          if (daz) {
            av = f16::daz16(av);
            bv = f16::daz16(bv);
          }
          d[l] = av < bv ? 1.0 : 0.0;
        }
        break;
    }
  }

  const double* result =
      regs.data() + std::size_t{t.result_register()} * lanes;
  for (std::size_t l = 0; l < lanes; ++l) {
    out[l].value = sf::from_native(result[l]);
    out[l].flags = flags[l];
  }
}

// Per-instruction passes stream every register array once, so block lanes
// to keep the whole register file in L1 instead of round-tripping a
// chunk-sized array through L2/L3 per opcode. Independent lanes: blocking
// cannot change results. Native arithmetic in the blocks requires
// round-to-nearest and must not leak host exception flags to the caller,
// so the whole fenv is saved around the sweep and restored after.
void run_fast16_lanes(const Tape& t, const double* values, std::size_t width,
                      std::size_t begin, std::size_t end, Outcome* out) {
  constexpr std::size_t kBlock = 1024;
  fenv_t saved_fenv;
  std::fegetenv(&saved_fenv);
  std::fesetround(FE_TONEAREST);
  for (std::size_t b = begin; b < end; b += kBlock) {
    const std::size_t e = b + kBlock < end ? b + kBlock : end;
    run_fast16_block(t, values, width, b, e, out + (b - begin));
  }
  std::fesetenv(&saved_fenv);
}

// The binary32 hot path: the same native-double technique as
// run_fast16_block, with the headroom arguments adjusted for the wider
// format (softfloat/fast32.hpp): mul stays exact in binary64, add/sub/fma
// compress the sum through TwoSum + round-to-odd before folding back, and
// div/sqrt lean on the innocuous-double-rounding bound 53 >= 2*24 + 2.
// Fold-back goes through fast32::round32 — detail::round_pack<32>, the
// scalar engine's own core — so all five modes, FTZ tininess handling and
// flag raises are the scalar engine's by construction.
void run_fast32_block(const Tape& t, const double* values, std::size_t width,
                      std::size_t begin, std::size_t end, Outcome* out) {
  namespace f32 = sf::fast32;
  using F32 = sf::Float32;
  const std::size_t lanes = end - begin;
  const EvalConfig& cfg = t.config();
  const sf::Rounding mode = cfg.rounding;
  const bool daz = cfg.denormals_are_zero;
  sf::Env env(mode);  // op env: FTZ/DAZ live, flags read per lane
  env.set_flush_to_zero(cfg.flush_to_zero);
  env.set_denormals_are_zero(daz);
  sf::Env quiet(mode);  // operand-narrowing env: flags discarded, no FTZ
  quiet.set_denormals_are_zero(daz);

  std::vector<double> regs(t.register_count() * lanes);
  std::vector<unsigned> flags(lanes, 0);
  const std::span<const std::uint64_t> pool = t.constant_bits();

  for (const TapeInst& in : t.code()) {
    double* d = regs.data() + std::size_t{in.dst} * lanes;
    const double* a = regs.data() + std::size_t{in.a} * lanes;
    const double* b = regs.data() + std::size_t{in.b} * lanes;
    const double* c = regs.data() + std::size_t{in.c} * lanes;
    switch (in.op) {
      case TapeOp::kConst: {
        const double v =
            f32::widen(F32::from_bits(static_cast<std::uint32_t>(pool[in.a])));
        for (std::size_t l = 0; l < lanes; ++l) d[l] = v;
        break;
      }
      case TapeOp::kVar:
        for (std::size_t l = 0; l < lanes; ++l) {
          const double x = values[(begin + l) * width + in.a];
          const std::uint64_t xb = std::bit_cast<std::uint64_t>(x);
          const auto be = (xb >> 52) & 0x7FF;
          if (be == 0) {  // signed zero or double-subnormal (DAZ range)
            d[l] = (xb << 1) == 0 ? x : f32::widen(sf::convert<32>(
                                            sf::from_native(x), quiet));
            continue;
          }
          if (be == 0x7FF) {  // infinity / NaN: quieting narrow
            d[l] = f32::widen(sf::convert<32>(sf::from_native(x), quiet));
            continue;
          }
          d[l] = f32::narrow32_value(x, mode);  // flags discarded
        }
        break;
      case TapeOp::kNeg:
        for (std::size_t l = 0; l < lanes; ++l) d[l] = f32::flip_sign(a[l]);
        break;
      case TapeOp::kAdd:
      case TapeOp::kSub: {
        const bool is_sub = in.op == TapeOp::kSub;
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (!(f32::is_finite(av) && f32::is_finite(bv))) {
            env.clear_flags();
            const F32 r = is_sub
                              ? sf::sub(f32::to_f32(av), f32::to_f32(bv), env)
                              : sf::add(f32::to_f32(av), f32::to_f32(bv), env);
            flags[l] |= env.flags();
            d[l] = f32::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f32::daz32(av);
            bv = f32::daz32(bv);
          } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
            f = sf::kFlagDenormalInput;
          }
          if (is_sub) bv = f32::flip_sign(bv);
          // NOT exact in binary64 (unlike binary16): compress through
          // TwoSum + round-to-odd so folding back sees the exact sum's
          // side of every binary32 rounding boundary.
          const double s = f32::add_round_odd(av, bv);
          if (s == 0.0) {
            const bool sa = std::signbit(av);
            const bool sb = std::signbit(bv);  // addend sign (already flipped)
            const bool zs = (av == 0.0 && bv == 0.0 && sa == sb)
                                ? sa
                                : f32::exact_zero_sign(mode);
            d[l] = zs ? -0.0 : 0.0;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f32::round32(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      }
      case TapeOp::kMul:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (!(f32::is_finite(av) && f32::is_finite(bv))) {
            env.clear_flags();
            const F32 r = sf::mul(f32::to_f32(av), f32::to_f32(bv), env);
            flags[l] |= env.flags();
            d[l] = f32::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f32::daz32(av);
            bv = f32::daz32(bv);
          } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
            f = sf::kFlagDenormalInput;
          }
          const double s = av * bv;  // exact: 24+24 significand bits
          if (s == 0.0) {            // sign is the XOR the standard wants
            d[l] = s;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f32::round32(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kDiv:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          unsigned f = 0;
          bool slow = !(f32::is_finite(av) && f32::is_finite(bv));
          if (!slow) {
            if (daz) {
              av = f32::daz32(av);
              bv = f32::daz32(bv);
            } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv)) {
              f = sf::kFlagDenormalInput;
            }
            slow = bv == 0.0;  // divide-by-zero / 0 over 0: canonical path
          }
          if (slow) {
            env.clear_flags();
            const F32 r = sf::div(f32::to_f32(a[l]), f32::to_f32(b[l]), env);
            flags[l] |= env.flags();
            d[l] = f32::widen(r);
            continue;
          }
          const double s = av / bv;  // correctly rounded; narrow innocuous
          if (s == 0.0) {
            d[l] = s;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f32::round32(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kSqrt:
        for (std::size_t l = 0; l < lanes; ++l) {
          double xv = a[l];
          unsigned f = 0;
          bool slow = !f32::is_finite(xv);
          if (!slow) {
            if (daz) {
              xv = f32::daz32(xv);
            } else if (f32::is_subnormal32(xv)) {
              f = sf::kFlagDenormalInput;
            }
            slow = std::signbit(xv) && xv != 0.0;  // invalid: canonical NaN
          }
          if (slow) {
            env.clear_flags();
            const F32 r = sf::sqrt(f32::to_f32(a[l]), env);
            flags[l] |= env.flags();
            d[l] = f32::widen(r);
            continue;
          }
          if (xv == 0.0) {  // sqrt(±0) = ±0, exact
            d[l] = xv;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f32::round32(std::sqrt(xv), env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kFma:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l], cv = c[l];
          if (!(f32::is_finite(av) && f32::is_finite(bv) &&
                f32::is_finite(cv))) {
            env.clear_flags();
            const F32 r = sf::fma(f32::to_f32(av), f32::to_f32(bv),
                                  f32::to_f32(cv), env);
            flags[l] |= env.flags();
            d[l] = f32::widen(r);
            continue;
          }
          unsigned f = 0;
          if (daz) {
            av = f32::daz32(av);
            bv = f32::daz32(bv);
            cv = f32::daz32(cv);
          } else if (f32::is_subnormal32(av) || f32::is_subnormal32(bv) ||
                     f32::is_subnormal32(cv)) {
            f = sf::kFlagDenormalInput;
          }
          const double t2 = av * bv;  // exact product
          const double s = f32::add_round_odd(t2, cv);
          if (s == 0.0) {  // exact zero: |t2 + cv| >= 2^-298 when nonzero
            const bool psign = std::signbit(av) != std::signbit(bv);
            const bool zs = ((av == 0.0 || bv == 0.0) && cv == 0.0 &&
                             psign == std::signbit(cv))
                                ? psign
                                : f32::exact_zero_sign(mode);
            d[l] = zs ? -0.0 : 0.0;
            flags[l] |= f;
            continue;
          }
          env.clear_flags();
          d[l] = f32::round32(s, env);
          flags[l] |= f | env.flags();
        }
        break;
      case TapeOp::kCmpEq:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (av != av || bv != bv) {  // unordered; sNaN cannot be in-lane
            d[l] = 0.0;
            continue;
          }
          if (daz) {
            av = f32::daz32(av);
            bv = f32::daz32(bv);
          }
          d[l] = av == bv ? 1.0 : 0.0;  // comparisons raise no DE flag
        }
        break;
      case TapeOp::kCmpLt:
        for (std::size_t l = 0; l < lanes; ++l) {
          double av = a[l], bv = b[l];
          if (av != av || bv != bv) {  // signaling predicate: invalid
            flags[l] |= sf::kFlagInvalid;
            d[l] = 0.0;
            continue;
          }
          if (daz) {
            av = f32::daz32(av);
            bv = f32::daz32(bv);
          }
          d[l] = av < bv ? 1.0 : 0.0;
        }
        break;
    }
  }

  const double* result =
      regs.data() + std::size_t{t.result_register()} * lanes;
  for (std::size_t l = 0; l < lanes; ++l) {
    out[l].value = sf::from_native(result[l]);
    out[l].flags = flags[l];
  }
}

// Same blocking/fenv discipline as run_fast16_lanes.
void run_fast32_lanes(const Tape& t, const double* values, std::size_t width,
                      std::size_t begin, std::size_t end, Outcome* out) {
  constexpr std::size_t kBlock = 1024;
  fenv_t saved_fenv;
  std::fegetenv(&saved_fenv);
  std::fesetround(FE_TONEAREST);
  for (std::size_t b = begin; b < end; b += kBlock) {
    const std::size_t e = b + kBlock < end ? b + kBlock : end;
    run_fast32_block(t, values, width, b, e, out + (b - begin));
  }
  std::fesetenv(&saved_fenv);
}

void check_width(const Tape& tape, const BindingTable& table) {
  if (table.width < tape.required_width()) {
    throw BindingWidthError(tape.required_width(), table.width);
  }
}

/// Dispatch one row block [begin, end) of a row-major value array to the
/// per-format interpreter. Callers have validated width.
void dispatch_soft(const Tape& tape, const double* values, std::size_t width,
                   std::size_t begin, std::size_t end, Outcome* out) {
  switch (tape.config().format_bits) {
    case 16:
      run_fast16_lanes(tape, values, width, begin, end, out);
      break;
    case 32:
      // The fast32 native block under any accelerated variant; kScalar
      // keeps the SoA interpreter (whose batch entry points then run the
      // scalar reference loops), so forcing kScalar forces the whole
      // stack scalar.
      if (sf::active_kernel_variant() != sf::KernelVariant::kScalar) {
        run_fast32_lanes(tape, values, width, begin, end, out);
      } else {
        run_soft_lanes<32>(tape, values, width, begin, end, out);
      }
      break;
    case sf::kBFloat16:
      run_soft_lanes<sf::kBFloat16>(tape, values, width, begin, end, out);
      break;
    default:
      run_soft_lanes<64>(tape, values, width, begin, end, out);
      break;
  }
}

}  // namespace

void execute_range(const Tape& tape, const BindingTable& table,
                   std::size_t begin, std::size_t end,
                   std::span<Outcome> out) {
  check_width(tape, table);
  dispatch_soft(tape, table.values.data(), table.width, begin, end,
                out.data());
}

void execute_rows(const Tape& tape, std::span<const double> rows,
                  std::size_t width, std::span<Outcome> out) {
  if (width < tape.required_width()) {
    throw BindingWidthError(tape.required_width(), width);
  }
  if (width == 0 || rows.size() % width != 0) {
    throw std::invalid_argument("execute_rows: rows.size() not a multiple "
                                "of width");
  }
  const std::size_t n = rows.size() / width;
  if (out.size() != n) {
    throw std::invalid_argument("execute_rows: out.size() != row count");
  }
  dispatch_soft(tape, rows.data(), width, 0, n, out.data());
}

std::vector<Outcome> execute_batch(parallel::ThreadPool& pool,
                                   const Tape& tape,
                                   const BindingTable& table,
                                   const BatchOptions& options) {
  const std::size_t n = table.rows();
  std::vector<Outcome> out(n);
  if (n == 0) return out;
  // Satellite fix: ONE width check per batch (evaluate_tree used to
  // re-check the span per variable per row), and a structured error
  // instead of quiet-NaN-poisoning every row of a short table. The
  // per-node quiet-NaN contract survives in the scalar paths.
  check_width(tape, table);

  const std::uint64_t tape_fp = tape.fingerprint();
  const std::size_t chunks =
      parallel::recommended_chunks(pool, n, options.min_rows_per_chunk);
  auto& cache = parallel::BatchResultCache::global();

  parallel::parallel_map_chunks(
      pool, n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        parallel::BatchKey key;
        if (options.memoize) {
          // Key on content only when the memo is in play: hashing every
          // binding is pure overhead for memoize=false sweeps.
          const std::span<const double> chunk_values =
              std::span<const double>(table.values)
                  .subspan(begin * table.width,
                           (end - begin) * table.width);
          key.tape_fingerprint = tape_fp;
          key.bindings_hash = hash_bindings(chunk_values, table.width);
          key.chunk = static_cast<std::uint32_t>(chunk);
          // Entries are keyed on the executing kernel variant: a cache
          // warmed under one variant is never read under another (see
          // BatchKey in parallel/result_cache.hpp).
          key.variant = static_cast<std::uint32_t>(
              sf::active_kernel_variant());
        }

        if (options.memoize) {
          if (const auto hit = cache.find(key);
              hit.has_value() && hit->outcomes.size() == end - begin) {
            for (std::size_t i = begin; i < end; ++i) {
              const auto& [value_bits, flags] = hit->outcomes[i - begin];
              out[i].value = softfloat::Float64{value_bits};
              out[i].flags = flags;
            }
            return;
          }
        }

        execute_range(tape, table, begin, end,
                      std::span<Outcome>(out).subspan(begin, end - begin));

        if (options.memoize) {
          // Memoize only after the whole chunk executed cleanly (the same
          // cache-consistency guard evaluate_many has always had).
          parallel::BatchChunkResult result;
          result.outcomes.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            result.outcomes.emplace_back(out[i].value.bits, out[i].flags);
          }
          cache.insert(key, result);
        }

        // Chunk boundaries are fpmon instrumentation seams: when a
        // collect_seams FlowMonitor is registered, harvest the worker's
        // fenv here; otherwise this is one relaxed atomic load.
        mon::FlowCollector::sample();
      });

  return out;
}

// -- Native SoA kernels -----------------------------------------------------

void execute_range_native64(const Tape& tape, const BindingTable& table,
                            std::size_t begin, std::size_t end,
                            std::span<double> out) {
  check_width(tape, table);
  const std::size_t lanes = end - begin;
  std::vector<double> regs(tape.register_count() * lanes);
  const std::span<const softfloat::Float64> pool = tape.constants();
  const double* values = table.values.data();
  for (const TapeInst& in : tape.code()) {
    double* d = regs.data() + std::size_t{in.dst} * lanes;
    const double* a = regs.data() + std::size_t{in.a} * lanes;
    const double* b = regs.data() + std::size_t{in.b} * lanes;
    const double* c = regs.data() + std::size_t{in.c} * lanes;
    switch (in.op) {
      case TapeOp::kConst: {
        const double v = sf::to_native(pool[in.a]);
        for (std::size_t l = 0; l < lanes; ++l) d[l] = v;
        break;
      }
      case TapeOp::kVar:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = values[(begin + l) * table.width + in.a];
        }
        break;
      case TapeOp::kNeg:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::flip_sign(a[l]);
        }
        break;
      case TapeOp::kAdd:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::add64(a[l], b[l]);
        }
        break;
      case TapeOp::kSub:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::sub64(a[l], b[l]);
        }
        break;
      case TapeOp::kMul:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::mul64(a[l], b[l]);
        }
        break;
      case TapeOp::kDiv:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::div64(a[l], b[l]);
        }
        break;
      case TapeOp::kSqrt:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::sqrt64(a[l]);
        }
        break;
      case TapeOp::kFma:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::fma64(a[l], b[l], c[l]);
        }
        break;
      case TapeOp::kCmpEq:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::eq64(a[l], b[l]) ? 1.0 : 0.0;
        }
        break;
      case TapeOp::kCmpLt:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::lt64(a[l], b[l]) ? 1.0 : 0.0;
        }
        break;
    }
  }
  const double* result =
      regs.data() + std::size_t{tape.result_register()} * lanes;
  for (std::size_t l = 0; l < lanes; ++l) out[l] = result[l];
}

void execute_range_native32(const Tape& tape, const BindingTable& table,
                            std::size_t begin, std::size_t end,
                            std::span<double> out) {
  check_width(tape, table);
  const std::size_t lanes = end - begin;
  // In-format float registers: NativeEvaluator32 widens each result to
  // double and re-narrows per op through the FPU, but re-narrowing an
  // in-format value is exact, so keeping lanes as float is bit-identical.
  std::vector<float> regs(tape.register_count() * lanes);
  const std::span<const softfloat::Float64> pool = tape.constants();
  const double* values = table.values.data();
  for (const TapeInst& in : tape.code()) {
    float* d = regs.data() + std::size_t{in.dst} * lanes;
    const float* a = regs.data() + std::size_t{in.a} * lanes;
    const float* b = regs.data() + std::size_t{in.b} * lanes;
    const float* c = regs.data() + std::size_t{in.c} * lanes;
    switch (in.op) {
      case TapeOp::kConst: {
        const float v = native::narrow32(sf::to_native(pool[in.a]));
        for (std::size_t l = 0; l < lanes; ++l) d[l] = v;
        break;
      }
      case TapeOp::kVar:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::narrow32(values[(begin + l) * table.width + in.a]);
        }
        break;
      case TapeOp::kNeg:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = static_cast<float>(
              native::flip_sign(static_cast<double>(a[l])));
        }
        break;
      case TapeOp::kAdd:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::add32(a[l], b[l]);
        }
        break;
      case TapeOp::kSub:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::sub32(a[l], b[l]);
        }
        break;
      case TapeOp::kMul:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::mul32(a[l], b[l]);
        }
        break;
      case TapeOp::kDiv:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::div32(a[l], b[l]);
        }
        break;
      case TapeOp::kSqrt:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::sqrt32(a[l]);
        }
        break;
      case TapeOp::kFma:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::fma32(a[l], b[l], c[l]);
        }
        break;
      case TapeOp::kCmpEq:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::eq64(a[l], b[l]) ? 1.0f : 0.0f;
        }
        break;
      case TapeOp::kCmpLt:
        for (std::size_t l = 0; l < lanes; ++l) {
          d[l] = native::lt64(a[l], b[l]) ? 1.0f : 0.0f;
        }
        break;
    }
  }
  const float* result =
      regs.data() + std::size_t{tape.result_register()} * lanes;
  for (std::size_t l = 0; l < lanes; ++l) {
    out[l] = static_cast<double>(result[l]);
  }
}

}  // namespace fpq::ir
