// fpq::ir — module umbrella: the unified expression IR.
//
//   expr.hpp       — the hash-consed Expr tree (node kinds, factories)
//   evaluator.hpp  — Evaluator<V> contract, evaluate_tree, TraceSink
//   evaluators.hpp — EvalConfig, softfloat/native evaluators, evaluate()
//   rewrite.hpp    — contraction/reassociation IR→IR passes
//   trace.hpp      — ProvenanceTrace (per-op exception provenance)
//   batch.hpp      — evaluate_many over fpq::parallel, memoized
//   tape.hpp       — Tape: Expr → flat bytecode (CSE, constant folding,
//                    content fingerprint), scalar engines
//   tape_batch.hpp — batched SoA tape executor over fpq::parallel
#pragma once

#include "ir/batch.hpp"       // IWYU pragma: export
#include "ir/evaluator.hpp"   // IWYU pragma: export
#include "ir/evaluators.hpp"  // IWYU pragma: export
#include "ir/expr.hpp"        // IWYU pragma: export
#include "ir/rewrite.hpp"     // IWYU pragma: export
#include "ir/tape.hpp"        // IWYU pragma: export
#include "ir/tape_batch.hpp"  // IWYU pragma: export
#include "ir/trace.hpp"       // IWYU pragma: export
