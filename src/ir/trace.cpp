#include "ir/trace.hpp"

#include <cstdio>

#include "softfloat/env.hpp"

namespace fpq::ir {

void ProvenanceTrace::on_op(const Expr& expr, double value,
                            unsigned flags) {
  TraceEvent ev;
  ev.index = events_.size();
  ev.kind = expr.node().kind;
  ev.expression = expr.to_string();
  ev.value = value;
  ev.flags = flags;
  events_.push_back(std::move(ev));
}

unsigned ProvenanceTrace::cumulative_flags() const noexcept {
  unsigned out = 0;
  for (const TraceEvent& ev : events_) out |= ev.flags;
  return out;
}

const TraceEvent* ProvenanceTrace::first_raiser(
    unsigned flag) const noexcept {
  for (const TraceEvent& ev : events_) {
    if ((ev.flags & flag) != 0) return &ev;
  }
  return nullptr;
}

std::string ProvenanceTrace::render() const {
  namespace sf = fpq::softfloat;
  std::string out = "operation-level exception provenance (" +
                    std::to_string(events_.size()) + " ops)\n";
  for (const TraceEvent& ev : events_) {
    char line[64];
    std::snprintf(line, sizeof line, "  [%3zu] %-12.17g  ", ev.index,
                  ev.value);
    out += line;
    out += sf::flags_to_string(ev.flags);
    out += "  " + ev.expression + "\n";
  }
  const unsigned seen = cumulative_flags();
  for (unsigned bit = 1; bit <= sf::kFlagDenormalInput; bit <<= 1) {
    if ((seen & bit) == 0) continue;
    const TraceEvent* first = first_raiser(bit);
    out += "  first " + sf::flags_to_string(bit) + ": op #" +
           std::to_string(first->index) + " " + first->expression + "\n";
  }
  return out;
}

}  // namespace fpq::ir
