// fpq::ir — IR→IR rewrite passes: the optimizations the emulated pipeline
// models, expressed as tree transforms that return a NEW tree.
//
// Making the transform a value (instead of behavior buried in an
// evaluator's switch) means it is inspectable — tests can assert the
// rewritten shape, to_string() shows the program the "compiler" actually
// ran, and any evaluator (softfloat, shadow, interval) can evaluate the
// optimized program.
//
// Semantics notes, pinned by the differential tests:
//  * Contraction fuses add(mul(a,b), c), add(c, mul(a,b)) and
//    sub(mul(a,b), c) — the last becomes fma(a, b, neg(c)), where neg is
//    the sign-bit flip (NOT 0-c, which differs for c = ±0).
//  * Reassociation flattens a maximal chain of + with more than two
//    addends into a balanced pairwise tree (the association a vectorizing
//    compiler effectively chooses under -fassociative-math).
//  * When both are enabled, reassociation takes precedence at a chain
//    head and NO contraction happens at the synthesized adds — matching
//    how the emulated pipeline has always evaluated, which the quiz's
//    divergence demos depend on.
#pragma once

#include "ir/expr.hpp"

namespace fpq::ir {

/// Fuse mul-then-add/sub patterns into fma nodes, everywhere.
Expr contract_mul_add(const Expr& e);

/// Rebalance +-chains of length > 2 into pairwise trees, everywhere.
Expr reassociate_sums(const Expr& e);

/// The combined pass the emulated pipeline applies: both transforms with
/// the precedence described above. With a single flag set it degenerates
/// to the corresponding individual pass; with none it is the identity.
Expr pipeline_rewrite(const Expr& e, bool contract, bool reassociate);

}  // namespace fpq::ir
