#include "ir/rewrite.hpp"

#include <vector>

namespace fpq::ir {

namespace {

using Kind = ExprKind;

// Flattens a maximal chain of + into its addend expressions.
void flatten_add_chain(const Expr& e, std::vector<Expr>& out) {
  const Expr::Node& n = e.node();
  if (n.kind == Kind::kAdd) {
    flatten_add_chain(n.children[0], out);
    flatten_add_chain(n.children[1], out);
  } else {
    out.push_back(e);
  }
}

// Balanced pairwise association over already-rewritten addends: the same
// mid = lo + (hi - lo) / 2 split the legacy pairwise_sum used, so the
// synthesized tree reproduces its association order exactly.
Expr pairwise_tree(const std::vector<Expr>& xs, std::size_t lo,
                   std::size_t hi) {
  if (hi - lo == 1) return xs[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return Expr::add(pairwise_tree(xs, lo, mid), pairwise_tree(xs, mid, hi));
}

Expr apply(const Expr& e, bool contract, bool reassociate) {
  const Expr::Node& n = e.node();
  switch (n.kind) {
    case Kind::kConst:
    case Kind::kVar:
      return e;
    case Kind::kAdd: {
      if (reassociate) {
        std::vector<Expr> addends;
        flatten_add_chain(e, addends);
        if (addends.size() > 2) {
          // The synthesized adds are NOT contraction candidates: the
          // pipeline reassociates a long chain instead of fusing into it.
          for (Expr& a : addends) a = apply(a, contract, reassociate);
          return pairwise_tree(addends, 0, addends.size());
        }
      }
      if (contract) {
        // add(mul(a,b), c) or add(c, mul(a,b)) -> fused. The pattern
        // match looks at the ORIGINAL children; no rewrite changes
        // whether a root is a mul, so this is equivalent to matching
        // after their rewrite — and mirrors the legacy evaluator.
        const Expr::Node& l = n.children[0].node();
        const Expr::Node& r = n.children[1].node();
        if (l.kind == Kind::kMul) {
          return Expr::fma(apply(l.children[0], contract, reassociate),
                           apply(l.children[1], contract, reassociate),
                           apply(n.children[1], contract, reassociate));
        }
        if (r.kind == Kind::kMul) {
          return Expr::fma(apply(r.children[0], contract, reassociate),
                           apply(r.children[1], contract, reassociate),
                           apply(n.children[0], contract, reassociate));
        }
      }
      return Expr::add(apply(n.children[0], contract, reassociate),
                       apply(n.children[1], contract, reassociate));
    }
    case Kind::kSub: {
      if (contract) {
        const Expr::Node& l = n.children[0].node();
        if (l.kind == Kind::kMul) {
          // mul(a,b) - c -> fma(a, b, -c).
          return Expr::fma(
              apply(l.children[0], contract, reassociate),
              apply(l.children[1], contract, reassociate),
              Expr::neg(apply(n.children[1], contract, reassociate)));
        }
      }
      return Expr::sub(apply(n.children[0], contract, reassociate),
                       apply(n.children[1], contract, reassociate));
    }
    case Kind::kNeg:
      return Expr::neg(apply(n.children[0], contract, reassociate));
    case Kind::kMul:
      return Expr::mul(apply(n.children[0], contract, reassociate),
                       apply(n.children[1], contract, reassociate));
    case Kind::kDiv:
      return Expr::div(apply(n.children[0], contract, reassociate),
                       apply(n.children[1], contract, reassociate));
    case Kind::kSqrt:
      return Expr::sqrt(apply(n.children[0], contract, reassociate));
    case Kind::kFma:
      return Expr::fma(apply(n.children[0], contract, reassociate),
                       apply(n.children[1], contract, reassociate),
                       apply(n.children[2], contract, reassociate));
    case Kind::kCmpEq:
      return Expr::cmp_eq(apply(n.children[0], contract, reassociate),
                          apply(n.children[1], contract, reassociate));
    case Kind::kCmpLt:
      return Expr::cmp_lt(apply(n.children[0], contract, reassociate),
                          apply(n.children[1], contract, reassociate));
  }
  return e;
}

}  // namespace

Expr contract_mul_add(const Expr& e) { return apply(e, true, false); }

Expr reassociate_sums(const Expr& e) { return apply(e, false, true); }

Expr pipeline_rewrite(const Expr& e, bool contract, bool reassociate) {
  if (!contract && !reassociate) return e;
  return apply(e, contract, reassociate);
}

}  // namespace fpq::ir
