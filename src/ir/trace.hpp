// fpq::ir — operation-level exception provenance.
//
// fpmon answers "did anything bad happen in this region?"; a provenance
// trace answers "WHICH operation raised WHICH flag, computing WHAT value"
// — the FlowFPX-style upgrade the paper's §V tooling discussion points
// toward. ProvenanceTrace is the standard TraceSink: it records one event
// per executed operation (in execution order) and can render a report
// plus the first-raiser of each exception flag.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/evaluator.hpp"

namespace fpq::ir {

/// One executed operation.
struct TraceEvent {
  std::size_t index = 0;     ///< execution order, from 0
  ExprKind kind = ExprKind::kConst;
  std::string expression;    ///< rendering of the subtree that ran
  double value = 0.0;        ///< the operation's (widened) result
  unsigned flags = 0;        ///< softfloat flags THIS operation raised
};

class ProvenanceTrace final : public TraceSink {
 public:
  void on_op(const Expr& expr, double value, unsigned flags) override;

  const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

  /// The union of all per-op flags (equals the Env's sticky set).
  unsigned cumulative_flags() const noexcept;

  /// The first event that raised `flag`, or nullptr. This is the
  /// provenance question: "where did the overflow COME from?"
  const TraceEvent* first_raiser(unsigned flag) const noexcept;

  /// Human-readable rendering: one line per op, flag names included,
  /// followed by a first-raiser summary per flag seen.
  std::string render() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace fpq::ir
