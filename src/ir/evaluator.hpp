// fpq::ir — the evaluator contract: one generic tree walk, per-node hooks.
//
// An Evaluator<V> supplies the meaning of each node kind over its own
// value domain V (double for concrete arithmetic, Interval for
// enclosures, a double/BigFloat pair for shadow execution, ...). The walk
// itself — post-order, children left to right — lives here once, in
// evaluate_tree, so every analysis traverses expressions identically and
// divergence between analyses can only come from the hooks.
//
// The on_result hook fires after each node's value is computed (children
// first); analyzers that report per-node findings (shadow execution's
// relative-error and format-induced-exception checks) attach there
// without owning a traversal of their own.
#pragma once

#include <limits>
#include <span>

#include "ir/expr.hpp"

namespace fpq::ir {

/// Per-operation trace hook: records operation-level exception provenance
/// — WHICH node raised WHICH flags — rather than only the scope-level
/// sticky union (the FlowFPX-style upgrade over fpmon's reports).
/// `flags` is the softfloat flag set the single operation raised.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_op(const Expr& expr, double value, unsigned flags) = 0;
};

/// Optional evaluator capability: expose and overwrite the evaluator's
/// sticky exception-flag state mid-evaluation. Softfloat-backed
/// evaluators implement this; native-FPU evaluators deliberately do not
/// (draining fenv mid-run would corrupt an enclosing fpmon monitor).
/// Decorators that need to tamper with flags — fault injection's
/// flag-swallowing class — discover it via dynamic_cast and degrade
/// gracefully when absent.
class FlagControl {
 public:
  virtual ~FlagControl() = default;
  /// The sticky softfloat flag union accumulated so far.
  virtual unsigned sticky_flags() const noexcept = 0;
  /// Replaces the sticky union wholesale (clear + raise).
  virtual void override_sticky_flags(unsigned flags) noexcept = 0;
};

template <typename V>
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual V constant(const Expr& e) = 0;
  /// `bound` is the binding slot selected by the node's var_index
  /// (quiet NaN when the bindings span is too short).
  virtual V variable(const Expr& e, double bound) = 0;
  virtual V neg(const Expr& e, const V& a) = 0;
  virtual V add(const Expr& e, const V& a, const V& b) = 0;
  virtual V sub(const Expr& e, const V& a, const V& b) = 0;
  virtual V mul(const Expr& e, const V& a, const V& b) = 0;
  virtual V div(const Expr& e, const V& a, const V& b) = 0;
  virtual V sqrt(const Expr& e, const V& a) = 0;
  virtual V fma(const Expr& e, const V& a, const V& b, const V& c) = 0;
  virtual V cmp_eq(const Expr& e, const V& a, const V& b) = 0;
  virtual V cmp_lt(const Expr& e, const V& a, const V& b) = 0;

  /// Fires once per node, after its value is computed (post-order).
  virtual void on_result(const Expr& e, const V& v) { (void)e; (void)v; }
};

/// The one tree walk: post-order, children evaluated left to right (the
/// order C source implies and every legacy evaluator used).
template <typename V>
V evaluate_tree(const Expr& e, Evaluator<V>& ev,
                std::span<const double> bindings = {}) {
  const Expr::Node& n = e.node();
  auto child = [&](std::size_t i) {
    return evaluate_tree(n.children[i], ev, bindings);
  };
  V out;
  switch (n.kind) {
    case ExprKind::kConst:
      out = ev.constant(e);
      break;
    case ExprKind::kVar: {
      const double bound =
          n.var_index < bindings.size()
              ? bindings[n.var_index]
              : std::numeric_limits<double>::quiet_NaN();
      out = ev.variable(e, bound);
      break;
    }
    case ExprKind::kNeg: {
      const V a = child(0);
      out = ev.neg(e, a);
      break;
    }
    case ExprKind::kAdd: {
      const V a = child(0);
      const V b = child(1);
      out = ev.add(e, a, b);
      break;
    }
    case ExprKind::kSub: {
      const V a = child(0);
      const V b = child(1);
      out = ev.sub(e, a, b);
      break;
    }
    case ExprKind::kMul: {
      const V a = child(0);
      const V b = child(1);
      out = ev.mul(e, a, b);
      break;
    }
    case ExprKind::kDiv: {
      const V a = child(0);
      const V b = child(1);
      out = ev.div(e, a, b);
      break;
    }
    case ExprKind::kSqrt: {
      const V a = child(0);
      out = ev.sqrt(e, a);
      break;
    }
    case ExprKind::kFma: {
      const V a = child(0);
      const V b = child(1);
      const V c = child(2);
      out = ev.fma(e, a, b, c);
      break;
    }
    case ExprKind::kCmpEq: {
      const V a = child(0);
      const V b = child(1);
      out = ev.cmp_eq(e, a, b);
      break;
    }
    case ExprKind::kCmpLt: {
      const V a = child(0);
      const V b = child(1);
      out = ev.cmp_lt(e, a, b);
      break;
    }
  }
  ev.on_result(e, out);
  return out;
}

}  // namespace fpq::ir
