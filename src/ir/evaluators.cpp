#include "ir/evaluators.hpp"

#include <bit>
#include <cstdint>

#include "ir/native_ops.hpp"

namespace fpq::ir {

namespace sf = fpq::softfloat;

std::uint64_t EvalConfig::fingerprint() const noexcept {
  std::uint64_t packed = static_cast<std::uint64_t>(format_bits);
  packed = (packed << 3) | static_cast<std::uint64_t>(rounding);
  packed = (packed << 1) | static_cast<std::uint64_t>(contract_mul_add);
  packed = (packed << 1) | static_cast<std::uint64_t>(reassociate);
  packed = (packed << 1) | static_cast<std::uint64_t>(flush_to_zero);
  packed = (packed << 1) | static_cast<std::uint64_t>(denormals_are_zero);
  // splitmix64 finalizer so distinct configs land in distinct stripes.
  std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Opaque ops: evaluation must observe real FPU behavior, not constant
// folds (same discipline as the native quiz backends and workloads).
// Shared with the tape's native batch kernels via native_ops.hpp.
namespace native {

namespace {

[[gnu::noinline]] double h_add(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va + vb;
  return r;
}
[[gnu::noinline]] double h_sub(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va - vb;
  return r;
}
[[gnu::noinline]] double h_mul(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va * vb;
  return r;
}
[[gnu::noinline]] double h_div(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va / vb;
  return r;
}
[[gnu::noinline]] double h_sqrt(double a) {
  volatile double va = a;
  volatile double r = __builtin_sqrt(va);
  return r;
}
[[gnu::noinline]] double h_fma(double a, double b, double c) {
  volatile double va = a, vb = b, vc = c;
  volatile double r = __builtin_fma(va, vb, vc);
  return r;
}
[[gnu::noinline]] bool h_eq(double a, double b) {
  volatile double va = a, vb = b;
  return va == vb;
}
[[gnu::noinline]] bool h_lt(double a, double b) {
  volatile double va = a, vb = b;
  return va < vb;
}

[[gnu::noinline]] float hf_add(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va + vb;
  return r;
}
[[gnu::noinline]] float hf_sub(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va - vb;
  return r;
}
[[gnu::noinline]] float hf_mul(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va * vb;
  return r;
}
[[gnu::noinline]] float hf_div(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va / vb;
  return r;
}
[[gnu::noinline]] float hf_sqrt(float a) {
  volatile float va = a;
  volatile float r = __builtin_sqrtf(va);
  return r;
}
[[gnu::noinline]] float hf_fma(float a, float b, float c) {
  volatile float va = a, vb = b, vc = c;
  volatile float r = __builtin_fmaf(va, vb, vc);
  return r;
}
[[gnu::noinline]] float hf_narrow(double x) {
  volatile double vx = x;
  volatile float r = static_cast<float>(vx);
  return r;
}

}  // namespace

double add64(double a, double b) noexcept { return h_add(a, b); }
double sub64(double a, double b) noexcept { return h_sub(a, b); }
double mul64(double a, double b) noexcept { return h_mul(a, b); }
double div64(double a, double b) noexcept { return h_div(a, b); }
double sqrt64(double a) noexcept { return h_sqrt(a); }
double fma64(double a, double b, double c) noexcept { return h_fma(a, b, c); }
bool eq64(double a, double b) noexcept { return h_eq(a, b); }
bool lt64(double a, double b) noexcept { return h_lt(a, b); }

float add32(float a, float b) noexcept { return hf_add(a, b); }
float sub32(float a, float b) noexcept { return hf_sub(a, b); }
float mul32(float a, float b) noexcept { return hf_mul(a, b); }
float div32(float a, float b) noexcept { return hf_div(a, b); }
float sqrt32(float a) noexcept { return hf_sqrt(a); }
float fma32(float a, float b, float c) noexcept { return hf_fma(a, b, c); }
float narrow32(double x) noexcept { return hf_narrow(x); }

// Exact sign-bit flip, including for NaN (a host `-x` is also a pure
// sign-bit operation, but the bit_cast spelling cannot be folded into
// anything value-changing).
double flip_sign(double x) noexcept {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                               (std::uint64_t{1} << 63));
}

}  // namespace native

double NativeEvaluator64::constant(const Expr& e) {
  return sf::to_native(e.node().value);
}
double NativeEvaluator64::variable(const Expr& e, double bound) {
  (void)e;
  return bound;
}
double NativeEvaluator64::neg(const Expr& e, const double& a) {
  (void)e;
  return native::flip_sign(a);
}
double NativeEvaluator64::add(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return native::add64(a, b);
}
double NativeEvaluator64::sub(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return native::sub64(a, b);
}
double NativeEvaluator64::mul(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return native::mul64(a, b);
}
double NativeEvaluator64::div(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return native::div64(a, b);
}
double NativeEvaluator64::sqrt(const Expr& e, const double& a) {
  (void)e;
  return native::sqrt64(a);
}
double NativeEvaluator64::fma(const Expr& e, const double& a,
                              const double& b, const double& c) {
  (void)e;
  return native::fma64(a, b, c);
}
double NativeEvaluator64::cmp_eq(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return native::eq64(a, b) ? 1.0 : 0.0;
}
double NativeEvaluator64::cmp_lt(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return native::lt64(a, b) ? 1.0 : 0.0;
}

double NativeEvaluator32::constant(const Expr& e) {
  return static_cast<double>(native::narrow32(sf::to_native(e.node().value)));
}
double NativeEvaluator32::variable(const Expr& e, double bound) {
  (void)e;
  return static_cast<double>(native::narrow32(bound));
}
double NativeEvaluator32::neg(const Expr& e, const double& a) {
  (void)e;
  return native::flip_sign(a);
}
double NativeEvaluator32::add(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(native::add32(native::narrow32(a), native::narrow32(b)));
}
double NativeEvaluator32::sub(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(native::sub32(native::narrow32(a), native::narrow32(b)));
}
double NativeEvaluator32::mul(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(native::mul32(native::narrow32(a), native::narrow32(b)));
}
double NativeEvaluator32::div(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(native::div32(native::narrow32(a), native::narrow32(b)));
}
double NativeEvaluator32::sqrt(const Expr& e, const double& a) {
  (void)e;
  return static_cast<double>(native::sqrt32(native::narrow32(a)));
}
double NativeEvaluator32::fma(const Expr& e, const double& a,
                              const double& b, const double& c) {
  (void)e;
  return static_cast<double>(
      native::fma32(native::narrow32(a), native::narrow32(b), native::narrow32(c)));
}
double NativeEvaluator32::cmp_eq(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return native::eq64(native::narrow32(a), native::narrow32(b)) ? 1.0 : 0.0;
}
double NativeEvaluator32::cmp_lt(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return native::lt64(native::narrow32(a), native::narrow32(b)) ? 1.0 : 0.0;
}

namespace {

template <int kBits>
Outcome evaluate_soft(const Expr& tree, const EvalConfig& config,
                      std::span<const double> bindings, TraceSink* trace) {
  SoftEvaluator<kBits> ev(config, trace);
  Outcome out;
  out.value = sf::from_native(evaluate_tree<double>(tree, ev, bindings));
  out.flags = ev.flags();
  return out;
}

}  // namespace

Outcome evaluate(const Expr& expr, const EvalConfig& config,
                 std::span<const double> bindings, TraceSink* trace) {
  const Expr tree = pipeline_rewrite(expr, config.contract_mul_add,
                                     config.reassociate);
  switch (config.format_bits) {
    case 16:
      return evaluate_soft<16>(tree, config, bindings, trace);
    case 32:
      return evaluate_soft<32>(tree, config, bindings, trace);
    case sf::kBFloat16:
      return evaluate_soft<sf::kBFloat16>(tree, config, bindings, trace);
    default:
      return evaluate_soft<64>(tree, config, bindings, trace);
  }
}

}  // namespace fpq::ir
