#include "ir/evaluators.hpp"

#include <bit>
#include <cstdint>

namespace fpq::ir {

namespace sf = fpq::softfloat;

std::uint64_t EvalConfig::fingerprint() const noexcept {
  std::uint64_t packed = static_cast<std::uint64_t>(format_bits);
  packed = (packed << 3) | static_cast<std::uint64_t>(rounding);
  packed = (packed << 1) | static_cast<std::uint64_t>(contract_mul_add);
  packed = (packed << 1) | static_cast<std::uint64_t>(reassociate);
  packed = (packed << 1) | static_cast<std::uint64_t>(flush_to_zero);
  packed = (packed << 1) | static_cast<std::uint64_t>(denormals_are_zero);
  // splitmix64 finalizer so distinct configs land in distinct stripes.
  std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

// Opaque ops: evaluation must observe real FPU behavior, not constant
// folds (same discipline as the native quiz backends and workloads).
[[gnu::noinline]] double h_add(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va + vb;
  return r;
}
[[gnu::noinline]] double h_sub(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va - vb;
  return r;
}
[[gnu::noinline]] double h_mul(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va * vb;
  return r;
}
[[gnu::noinline]] double h_div(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va / vb;
  return r;
}
[[gnu::noinline]] double h_sqrt(double a) {
  volatile double va = a;
  volatile double r = __builtin_sqrt(va);
  return r;
}
[[gnu::noinline]] double h_fma(double a, double b, double c) {
  volatile double va = a, vb = b, vc = c;
  volatile double r = __builtin_fma(va, vb, vc);
  return r;
}
[[gnu::noinline]] bool h_eq(double a, double b) {
  volatile double va = a, vb = b;
  return va == vb;
}
[[gnu::noinline]] bool h_lt(double a, double b) {
  volatile double va = a, vb = b;
  return va < vb;
}

[[gnu::noinline]] float hf_add(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va + vb;
  return r;
}
[[gnu::noinline]] float hf_sub(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va - vb;
  return r;
}
[[gnu::noinline]] float hf_mul(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va * vb;
  return r;
}
[[gnu::noinline]] float hf_div(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va / vb;
  return r;
}
[[gnu::noinline]] float hf_sqrt(float a) {
  volatile float va = a;
  volatile float r = __builtin_sqrtf(va);
  return r;
}
[[gnu::noinline]] float hf_fma(float a, float b, float c) {
  volatile float va = a, vb = b, vc = c;
  volatile float r = __builtin_fmaf(va, vb, vc);
  return r;
}
[[gnu::noinline]] float hf_narrow(double x) {
  volatile double vx = x;
  volatile float r = static_cast<float>(vx);
  return r;
}

// Exact sign-bit flip, including for NaN (a host `-x` is also a pure
// sign-bit operation, but the bit_cast spelling cannot be folded into
// anything value-changing).
double flip_sign(double x) {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                               (std::uint64_t{1} << 63));
}

}  // namespace

double NativeEvaluator64::constant(const Expr& e) {
  return sf::to_native(e.node().value);
}
double NativeEvaluator64::variable(const Expr& e, double bound) {
  (void)e;
  return bound;
}
double NativeEvaluator64::neg(const Expr& e, const double& a) {
  (void)e;
  return flip_sign(a);
}
double NativeEvaluator64::add(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return h_add(a, b);
}
double NativeEvaluator64::sub(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return h_sub(a, b);
}
double NativeEvaluator64::mul(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return h_mul(a, b);
}
double NativeEvaluator64::div(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return h_div(a, b);
}
double NativeEvaluator64::sqrt(const Expr& e, const double& a) {
  (void)e;
  return h_sqrt(a);
}
double NativeEvaluator64::fma(const Expr& e, const double& a,
                              const double& b, const double& c) {
  (void)e;
  return h_fma(a, b, c);
}
double NativeEvaluator64::cmp_eq(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return h_eq(a, b) ? 1.0 : 0.0;
}
double NativeEvaluator64::cmp_lt(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return h_lt(a, b) ? 1.0 : 0.0;
}

double NativeEvaluator32::constant(const Expr& e) {
  return static_cast<double>(hf_narrow(sf::to_native(e.node().value)));
}
double NativeEvaluator32::variable(const Expr& e, double bound) {
  (void)e;
  return static_cast<double>(hf_narrow(bound));
}
double NativeEvaluator32::neg(const Expr& e, const double& a) {
  (void)e;
  return flip_sign(a);
}
double NativeEvaluator32::add(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(hf_add(hf_narrow(a), hf_narrow(b)));
}
double NativeEvaluator32::sub(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(hf_sub(hf_narrow(a), hf_narrow(b)));
}
double NativeEvaluator32::mul(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(hf_mul(hf_narrow(a), hf_narrow(b)));
}
double NativeEvaluator32::div(const Expr& e, const double& a,
                              const double& b) {
  (void)e;
  return static_cast<double>(hf_div(hf_narrow(a), hf_narrow(b)));
}
double NativeEvaluator32::sqrt(const Expr& e, const double& a) {
  (void)e;
  return static_cast<double>(hf_sqrt(hf_narrow(a)));
}
double NativeEvaluator32::fma(const Expr& e, const double& a,
                              const double& b, const double& c) {
  (void)e;
  return static_cast<double>(
      hf_fma(hf_narrow(a), hf_narrow(b), hf_narrow(c)));
}
double NativeEvaluator32::cmp_eq(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return h_eq(hf_narrow(a), hf_narrow(b)) ? 1.0 : 0.0;
}
double NativeEvaluator32::cmp_lt(const Expr& e, const double& a,
                                 const double& b) {
  (void)e;
  return h_lt(hf_narrow(a), hf_narrow(b)) ? 1.0 : 0.0;
}

namespace {

template <int kBits>
Outcome evaluate_soft(const Expr& tree, const EvalConfig& config,
                      std::span<const double> bindings, TraceSink* trace) {
  SoftEvaluator<kBits> ev(config, trace);
  Outcome out;
  out.value = sf::from_native(evaluate_tree<double>(tree, ev, bindings));
  out.flags = ev.flags();
  return out;
}

}  // namespace

Outcome evaluate(const Expr& expr, const EvalConfig& config,
                 std::span<const double> bindings, TraceSink* trace) {
  const Expr tree = pipeline_rewrite(expr, config.contract_mul_add,
                                     config.reassociate);
  switch (config.format_bits) {
    case 16:
      return evaluate_soft<16>(tree, config, bindings, trace);
    case 32:
      return evaluate_soft<32>(tree, config, bindings, trace);
    case sf::kBFloat16:
      return evaluate_soft<sf::kBFloat16>(tree, config, bindings, trace);
    default:
      return evaluate_soft<64>(tree, config, bindings, trace);
  }
}

}  // namespace fpq::ir
