// fpq::ir — batched tape execution: one opcode across a stride of
// binding rows at a time (SoA register file), sharded over fpq::parallel.
//
// Instead of evaluating row-by-row (tree walk or scalar tape), the batch
// engine keeps a register FILE of `register_count() × lanes` in-format
// values and runs each instruction across every lane before advancing —
// the softfloat batch entry points (softfloat/batch.hpp) supply the lane
// loops. Per-lane flag words keep each row's sticky union isolated, so
// results are bit- and flag-identical to per-row evaluation; chunking and
// memoization follow the parallel substrate's determinism rules
// (bit-identical at every thread count).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ir/batch.hpp"
#include "ir/tape.hpp"
#include "parallel/thread_pool.hpp"

namespace fpq::ir {

/// Executes rows [begin, end) of `table` on the calling thread; out[i]
/// receives row begin+i. Requires table.width >= tape.required_width()
/// (throws BindingWidthError otherwise) and out.size() == end - begin.
void execute_range(const Tape& tape, const BindingTable& table,
                   std::size_t begin, std::size_t end,
                   std::span<Outcome> out);

/// Span variant of execute_range: `rows` is a row-major block of
/// rows.size() / width binding rows that the caller owns — no BindingTable
/// (and no copy into one) required. out[i] receives row i. Requires
/// width >= tape.required_width() (throws BindingWidthError), rows.size()
/// divisible by width, and out.size() == rows.size() / width. This is the
/// sweep32 hot-loop entry point: a shard body streams its chunk through
/// the batched interpreter on the calling thread, which also keeps pool
/// shards reentrancy-safe (execute_batch may not run inside run_shards).
void execute_rows(const Tape& tape, std::span<const double> rows,
                  std::size_t width, std::span<Outcome> out);

/// The batched executor: shards the table's rows over the pool in
/// deterministic chunks, memoizing per-chunk outcomes in
/// parallel::BatchResultCache keyed on the tape's content fingerprint
/// (computed once at compile — no per-query tree re-hash). Bit-identical
/// at every thread count, memoized or not.
std::vector<Outcome> execute_batch(parallel::ThreadPool& pool,
                                   const Tape& tape,
                                   const BindingTable& table,
                                   const BatchOptions& options = {});

/// Host-FPU SoA kernels (values only — the native evaluators deliberately
/// expose no per-op flags). Bit-identical to a NativeEvaluator64/32 tree
/// walk per row under the host's default FP environment; compile the tape
/// with format_bits 64 / 32 respectively. Folded/CSE'd tapes rely on the
/// softfloat engine agreeing with IEEE hardware in default rounding (the
/// repo's differential-oracle claim); use TapeOptions::exact_trace() when
/// an fpmon monitor must observe every source-level operation.
void execute_range_native64(const Tape& tape, const BindingTable& table,
                            std::size_t begin, std::size_t end,
                            std::span<double> out);
void execute_range_native32(const Tape& tape, const BindingTable& table,
                            std::size_t begin, std::size_t end,
                            std::span<double> out);

}  // namespace fpq::ir
