#include "ir/batch.hpp"

#include <bit>
#include <cstdint>

#include "ir/tape.hpp"
#include "ir/tape_batch.hpp"

namespace fpq::ir {

std::uint64_t hash_bindings(std::span<const double> xs,
                            std::size_t width) noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (xs.size() + (width << 32));
  for (const double x : xs) {
    std::uint64_t z =
        h ^ (std::bit_cast<std::uint64_t>(x) + 0x9E3779B97F4A7C15ULL +
             (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = z ^ (z >> 27);
  }
  return h;
}

std::vector<Outcome> evaluate_many(parallel::ThreadPool& pool,
                                   const Expr& expr,
                                   const BindingTable& bindings,
                                   const EvalConfig& config,
                                   const BatchOptions& options) {
  // Compile (or fetch the cached tape for) the rewritten program once;
  // the batched executor then runs one opcode across a stride of rows at
  // a time instead of re-walking the tree per row. Memoization keys on
  // the tape's content fingerprint — no per-query tree re-hash — and
  // Tape::compile applies the config's pipeline rewrite itself.
  const std::shared_ptr<const Tape> tape = Tape::cached(expr, config);
  return execute_batch(pool, *tape, bindings, options);
}

}  // namespace fpq::ir
