#include "ir/batch.hpp"

#include <bit>
#include <cstdint>

#include "parallel/result_cache.hpp"
#include "parallel/shard.hpp"

namespace fpq::ir {

namespace {

// Content hash of a span of binding values (by bit pattern, so -0.0 and
// NaN payloads are distinguished like the evaluation distinguishes them).
std::uint64_t hash_bindings(std::span<const double> xs,
                            std::size_t width) noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (xs.size() + (width << 32));
  for (const double x : xs) {
    std::uint64_t z =
        h ^ (std::bit_cast<std::uint64_t>(x) + 0x9E3779B97F4A7C15ULL +
             (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = z ^ (z >> 27);
  }
  return h;
}

}  // namespace

std::vector<Outcome> evaluate_many(parallel::ThreadPool& pool,
                                   const Expr& expr,
                                   const BindingTable& bindings,
                                   const EvalConfig& config,
                                   const BatchOptions& options) {
  const std::size_t n = bindings.rows();
  std::vector<Outcome> out(n);
  if (n == 0) return out;

  // Rewrite once up front; per-row evaluation then runs the already-
  // optimized tree under a config with the rewrite flags stripped.
  const Expr tree = pipeline_rewrite(expr, config.contract_mul_add,
                                     config.reassociate);
  EvalConfig row_config = config;
  row_config.contract_mul_add = false;
  row_config.reassociate = false;

  // The memoization key still names the ORIGINAL request: callers asking
  // for the same (expr, config, bindings) must hit, and the rewritten
  // tree is a pure function of (expr, config).
  const std::uint64_t tree_hash = expr.hash();
  const std::uint64_t config_fp = config.fingerprint();

  const std::size_t chunks =
      parallel::recommended_chunks(pool, n, options.min_rows_per_chunk);
  auto& cache = parallel::BatchResultCache::global();

  parallel::parallel_map_chunks(
      pool, n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        const std::span<const double> chunk_values =
            std::span<const double>(bindings.values)
                .subspan(begin * bindings.width,
                         (end - begin) * bindings.width);
        parallel::BatchKey key;
        key.tree_hash = tree_hash;
        key.config_fingerprint = config_fp;
        key.bindings_hash = hash_bindings(chunk_values, bindings.width);
        key.chunk = static_cast<std::uint32_t>(chunk);

        if (options.memoize) {
          if (const auto hit = cache.find(key);
              hit.has_value() && hit->outcomes.size() == end - begin) {
            for (std::size_t i = begin; i < end; ++i) {
              const auto& [value_bits, flags] = hit->outcomes[i - begin];
              out[i].value = softfloat::Float64{value_bits};
              out[i].flags = flags;
            }
            return;
          }
        }

        for (std::size_t i = begin; i < end; ++i) {
          // Fresh evaluator per row: sticky flags are per-row state.
          out[i] = evaluate(tree, row_config, bindings.row(i));
        }

        if (options.memoize) {
          // Cache-consistency guard: a chunk is memoized ONLY after every
          // one of its rows evaluated cleanly. A row that throws (hostile
          // evaluator, resource failure) aborts the chunk body above this
          // line, lands in the pool's ShardFailureReport, and the
          // partially-built chunk is dropped — a faulted chunk must never
          // become a cache hit for a later clean sweep. Fault-injection
          // sweeps (fpq::inject) bypass memoization entirely for the same
          // reason: their outcomes are functions of the campaign, not of
          // (tree, config, bindings).
          parallel::BatchChunkResult result;
          result.outcomes.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            result.outcomes.emplace_back(out[i].value.bits, out[i].flags);
          }
          cache.insert(key, result);
        }
      });

  return out;
}

}  // namespace fpq::ir
