// fpq::ir — the opaque host-FPU primitives shared by NativeEvaluator64/32
// and the tape's native batch kernels.
//
// Each function routes one operation through a noinline/volatile helper so
// the real FPU executes it at run time — no constant folding, no
// contraction — and any enclosing fpmon::ScopedMonitor observes genuine
// hardware exceptions. Defined in evaluators.cpp.
#pragma once

#include <cstdint>

namespace fpq::ir::native {

double add64(double a, double b) noexcept;
double sub64(double a, double b) noexcept;
double mul64(double a, double b) noexcept;
double div64(double a, double b) noexcept;
double sqrt64(double a) noexcept;
double fma64(double a, double b, double c) noexcept;
bool eq64(double a, double b) noexcept;
bool lt64(double a, double b) noexcept;

float add32(float a, float b) noexcept;
float sub32(float a, float b) noexcept;
float mul32(float a, float b) noexcept;
float div32(float a, float b) noexcept;
float sqrt32(float a) noexcept;
float fma32(float a, float b, float c) noexcept;
/// double → float through the FPU (the narrowing itself is observable).
float narrow32(double x) noexcept;

/// Exact sign-bit flip, including for NaN (bit-level, never raises).
double flip_sign(double x) noexcept;

}  // namespace fpq::ir::native
