// fpq::inject — deterministic, seeded numerical fault injection.
//
// The paper's §V argues developers cannot be trusted to notice
// exceptional FP behavior; fpqual's detectors (fpmon, shadow execution,
// interval enclosures) exist for that reason — but a detector is only
// evidence if it has been shown to CATCH faults it never saw coming.
// This module supplies the faults: FlowFPX-style exception coverage
// testing, where NaN/Inf poisoning, flag swallowing, forced FTZ,
// rounding-mode perturbation, and mantissa bit flips are injected into
// real kernel executions at PRNG-chosen sites.
//
// Everything is reproducible by construction. A campaign is fully
// described by (seed, CampaignConfig): each potential fault site —
// operation `op` of kernel call `call` — gets its own PRNG seeded from a
// splitmix64 mix of (seed, call, op), so whether a site arms and which
// variant it draws is a pure function of the campaign identity, never of
// thread count, chunk shape, or execution history. The one exception is
// the max_faults cap, which is consumed in (call, op) order — also
// deterministic, because a single Injector serves one sequential kernel
// run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fpmon/flow.hpp"
#include "softfloat/env.hpp"

namespace fpq::inject {

/// The five fault classes the coverage matrix is over.
enum class FaultClass {
  /// Replace an operand or a result with NaN or ±infinity.
  kPoison = 0,
  /// Silently eat exception flags: from the armed site onward the
  /// evaluator's sticky flags are cleared after every operation (models
  /// library code that calls feclearexcept and hides what happened).
  kFlagSwallow = 1,
  /// Force FTZ/DAZ on individual operations: subnormal operands read as
  /// zero, subnormal results flush to zero.
  kForceFtz = 2,
  /// Perturb the rounding mode: from the armed site onward every
  /// operation's RESULT is recomputed in a different rounding-direction
  /// attribute (models fesetround left set — the classic leak).
  kRoundingPerturb = 3,
  /// XOR one low-order mantissa bit of a result (bits 8..15, so the
  /// relative perturbation is ~1e-14..1e-12: silent data corruption well
  /// below eyeball visibility).
  kBitFlip = 4,
};

inline constexpr std::size_t kFaultClassCount = 5;

/// "poison", "flag-swallow", "force-ftz", "rounding-perturb", "bit-flip".
std::string fault_class_name(FaultClass c);

/// One injection campaign over one kernel run.
struct CampaignConfig {
  std::uint64_t seed = 0;
  FaultClass fault_class = FaultClass::kPoison;
  /// Per-operation arming probability.
  double rate = 0.01;
  /// Cap on armed sites per run; 0 = unbounded. Persistent classes
  /// (kFlagSwallow, kRoundingPerturb) arm at most once regardless.
  std::size_t max_faults = 1;
};

/// A fault that armed at operation `op` of kernel call `call`.
struct FaultSite {
  std::uint64_t call = 0;
  std::uint64_t op = 0;
  FaultClass fault_class = FaultClass::kPoison;
  /// Whether the fault actually changed a value or ate a flag. An armed
  /// site can be inert (FTZ on a normal result, a bit flip on an
  /// infinity); inert-only runs are the campaign's control trials.
  bool effective = false;
  double original = 0.0;  ///< value before mutation (mutating classes)
  double injected = 0.0;  ///< value after mutation
};

/// Bit pattern of `x` with every NaN collapsed to the IEEE canonical
/// quiet NaN. Substrates disagree on manufactured NaN bits — the
/// softfloat engine emits 0x7FF8... while x86 invalid operations emit the
/// negative indefinite 0xFFF8... — so any cross-substrate identity over
/// recorded values must compare through this view.
std::uint64_t canonical_value_bits(double x) noexcept;

/// True when `a` and `b` are bitwise identical after NaN
/// canonicalization: the value-identity the injector uses to decide
/// whether a mutation was effective, chosen so the decision is a pure
/// function of the campaign and the kernel, never of which substrate
/// manufactured a NaN.
bool same_value(double a, double b) noexcept;

/// Order-independent content hash of a site list (bit-exact over the
/// doubles except that NaNs are canonicalized — see canonical_value_bits
/// — so the softfloat and native substrates agree on identical
/// campaigns). Two campaigns are "the same" iff their fingerprints match
/// — the reproducibility tests' currency.
std::uint64_t sites_fingerprint(std::span<const FaultSite> sites) noexcept;

/// The flow-site tag vocabulary is fpmon's (fpmon/flow.hpp): the
/// injector numbers sites with the same packing the flow ledger keys on,
/// which is what lets the gauntlet match a FaultSite to a ledger entry.
using mon::flow_tag;
using mon::kFlowAuxBit;

/// What an armed site does, as drawn from its site PRNG.
struct FaultPlan {
  FaultClass fault_class = FaultClass::kPoison;
  double poison_value = 0.0;      ///< NaN, +inf or -inf
  bool poison_operand = false;    ///< mutate operand a instead of result
  unsigned bit_index = 8;         ///< mantissa bit to flip (8..15)
};

/// Per-run fault state machine. One Injector serves one sequential kernel
/// run (one trial): the evaluator asks it for a plan before every
/// injectable operation and reports back what actually changed. Not
/// thread-safe; campaigns parallelize by giving every trial its own
/// Injector.
class Injector {
 public:
  explicit Injector(const CampaignConfig& config);

  const CampaignConfig& config() const noexcept { return config_; }

  /// Marks the start of the next kernel call; resets the op counter.
  /// Must be called before the first operation of every call.
  void begin_call() noexcept;

  /// Arming decision for the next operation of the current call;
  /// advances the op counter. Returns the plan when the site armed.
  std::optional<FaultPlan> plan_next_op();

  /// Reports what the LAST armed plan did to its operation.
  void note_applied(double original, double injected, bool effective);

  /// Sticky swallow mask: softfloat flag bits to erase after every
  /// operation (0 until a kFlagSwallow site arms; then all flags).
  unsigned swallow_mask() const noexcept { return swallow_mask_; }
  /// Reports flag bits the evaluator actually erased.
  void note_swallowed(unsigned bits) noexcept;

  /// Sticky perturbed rounding mode (empty until a kRoundingPerturb site
  /// arms).
  std::optional<softfloat::Rounding> perturb_rounding() const noexcept {
    return perturb_;
  }
  /// Reports that a recomputation under the perturbed mode changed a
  /// result.
  void note_perturbed() noexcept;

  /// Flow tag of the operation the LAST plan_next_op decided about
  /// (armed or not): (current call, just-consumed op index).
  std::uint64_t last_op_tag() const noexcept {
    return flow_tag(call_ == 0 ? 0 : call_ - 1, op_ == 0 ? 0 : op_ - 1);
  }
  /// Fresh auxiliary flow tag for a non-arithmetic event (neg/cmp) in the
  /// current call; advances the per-call aux counter.
  std::uint64_t next_aux_tag() noexcept {
    return flow_tag(call_ == 0 ? 0 : call_ - 1, kFlowAuxBit | aux_++);
  }

  /// Every site that armed, in (call, op) order.
  const std::vector<FaultSite>& sites() const noexcept { return sites_; }
  std::size_t effective_count() const noexcept;
  /// Union of flag bits erased by swallow faults over the whole run.
  unsigned swallowed_flags() const noexcept { return swallowed_; }

 private:
  CampaignConfig config_;
  // call_ is one-past: 0 means begin_call has not run yet; the first call
  // is index 0.
  std::uint64_t call_ = 0;
  std::uint64_t op_ = 0;
  std::uint64_t aux_ = 0;  // per-call counter for neg/cmp flow tags
  unsigned swallow_mask_ = 0;
  unsigned swallowed_ = 0;
  std::optional<softfloat::Rounding> perturb_;
  std::vector<FaultSite> sites_;
  // Index into sites_ of the site a sticky class armed at, so later
  // note_swallowed/note_perturbed calls can mark it effective.
  std::size_t sticky_site_ = 0;
};

}  // namespace fpq::inject
