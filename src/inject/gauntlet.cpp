#include "inject/gauntlet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <span>

#include "analyze/shadow.hpp"
#include "fpmon/flow.hpp"
#include "inject/context.hpp"
#include "inject/evaluator.hpp"
#include "interval/interval.hpp"
#include "ir/evaluators.hpp"
#include "ir/tape.hpp"
#include "report/table.hpp"
#include "stats/prng.hpp"
#include "workloads/workloads.hpp"

namespace fpq::inject {

std::string detector_name(Detector d) {
  switch (d) {
    case Detector::kFpmon:
      return "fpmon";
    case Detector::kShadow:
      return "shadow";
    case Detector::kInterval:
      return "interval";
    case Detector::kFpmonFlow:
      return "fpmon-flow";
  }
  return "unknown";
}

std::string substrate_name(Substrate s) {
  switch (s) {
    case Substrate::kSoftfloat:
      return "softfloat";
    case Substrate::kNative:
      return "native";
  }
  return "unknown";
}

bool GauntletResult::class_covered(Substrate s,
                                   FaultClass c) const noexcept {
  const auto& row = cells[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(c)];
  for (const CellStats& cell : row) {
    if (cell.hits > 0) return true;
  }
  return false;
}

bool GauntletResult::class_covered(FaultClass c) const noexcept {
  for (std::size_t s = 0; s < kSubstrateCount; ++s) {
    if (!class_covered(static_cast<Substrate>(s), c)) return false;
  }
  return true;
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  return stats::splitmix64_next(s);
}

/// Per-class campaign shape: single-shot corruptions arm rarely (one
/// fault per run); FTZ arms densely because it only bites on subnormal
/// traffic; the sticky classes arm once early and persist.
CampaignConfig campaign_for(FaultClass cls, std::uint64_t cell_seed) {
  CampaignConfig cc;
  cc.seed = cell_seed;
  cc.fault_class = cls;
  switch (cls) {
    case FaultClass::kPoison:
      cc.rate = 0.02;
      cc.max_faults = 1;
      break;
    case FaultClass::kFlagSwallow:
      cc.rate = 0.05;
      cc.max_faults = 1;
      break;
    case FaultClass::kForceFtz:
      cc.rate = 0.5;
      cc.max_faults = 0;
      break;
    case FaultClass::kRoundingPerturb:
      cc.rate = 0.05;
      cc.max_faults = 1;
      break;
    case FaultClass::kBitFlip:
      cc.rate = 0.02;
      cc.max_faults = 1;
      break;
  }
  return cc;
}

/// Per-call detector verdicts for one whole run.
struct RunSignals {
  mon::ConditionSet observed;
  std::vector<bool> shadow_fired;
  std::vector<bool> interval_fired;
};

RunSignals signals_for(std::span<const CallRecord> records,
                       const mon::ConditionSet& observed,
                       const GauntletConfig& cfg) {
  RunSignals out;
  out.observed = observed;
  out.shadow_fired.reserve(records.size());
  out.interval_fired.reserve(records.size());

  shadow::Config scfg;
  scfg.precision = cfg.shadow_precision;

  for (const CallRecord& rec : records) {
    const shadow::Report rep = shadow::analyze(rec.expr, scfg, rec.bindings);
    bool sfired = false;
    if (!std::isfinite(rec.result)) {
      // Exceptional primary, unexceptional shadow: the fault (or the
      // format) manufactured it.
      sfired = !rep.shadow_is_exceptional;
    } else if (!rep.shadow_is_exceptional) {
      const double denom = std::max(std::fabs(rep.shadow_result),
                                    std::numeric_limits<double>::min());
      sfired = std::fabs(rec.result - rep.shadow_result) / denom >
               cfg.shadow_relative_error;
    }
    out.shadow_fired.push_back(sfired);

    const interval::Interval iv =
        interval::evaluate(rec.expr, rec.bindings);
    // An invalid enclosure means the mathematics itself went exceptional
    // on these inputs; the clean baseline sees the same and the per-call
    // comparison nets it out.
    const bool ifired =
        !iv.is_invalid() && (!iv.contains(rec.result) ||
                             iv.relative_width() > cfg.interval_wide);
    out.interval_fired.push_back(ifired);
  }
  return out;
}

/// True when the injected run fired on some call the clean run did not.
bool fired_beyond(const std::vector<bool>& injected,
                  const std::vector<bool>& clean) {
  const std::size_t common = std::min(injected.size(), clean.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (injected[i] && !clean[i]) return true;
  }
  for (std::size_t i = common; i < injected.size(); ++i) {
    if (injected[i]) return true;
  }
  return false;
}

struct TrialOut {
  bool armed = false;
  bool effective = false;
  std::size_t sites = 0;
  std::size_t effective_sites = 0;
  std::array<bool, kDetectorCount> fired{};
  std::uint64_t sites_fp = 0;
  /// fpmon-flow verdict detail (fired[kFpmonFlow] summarizes it).
  bool flow_attributed = false;
  std::size_t flow_anomalies = 0;
};

/// The campaign that never arms: rate 0 consumes the identical
/// (call, op) numbering as any real campaign, so a run under it is the
/// flow ledger's clean baseline with trial-aligned site tags.
CampaignConfig null_campaign() {
  CampaignConfig cc;
  cc.rate = 0.0;
  cc.max_faults = 0;
  return cc;
}

/// Signature-anomalous sites: tags whose first-event signature differs
/// between the injected ledger and the clean baseline ledger, where the
/// difference involves an exceptional value class on either side. In a
/// straight-line kernel every value is bit-identical up to the first
/// effective mutation, so the EARLIEST anomalous tag is where the fault
/// entered the value stream.
std::vector<std::uint64_t> anomalous_tags(const mon::FlowLedger& led,
                                          const mon::FlowLedger& base) {
  std::vector<std::uint64_t> out;
  const auto& a = led.sites();
  const auto& b = base.sites();
  std::size_t i = 0, j = 0;
  while (i < a.size()) {
    while (j < b.size() && b[j].tag < a[i].tag) ++j;
    const bool have_base = j < b.size() && b[j].tag == a[i].tag;
    const std::uint8_t base_sig = have_base ? b[j].signature : 0;
    if (a[i].signature != base_sig &&
        (mon::signature_has_exceptional(a[i].signature) ||
         mon::signature_has_exceptional(base_sig))) {
      out.push_back(a[i].tag);
    }
    ++i;
  }
  return out;
}

/// First site tag carrying a swallow event, or nullopt.
std::optional<std::uint64_t> first_swallow_tag(const mon::FlowLedger& led) {
  for (const mon::SiteFlow& s : led.sites()) {
    if (s.swallows > 0) return s.tag;
  }
  return std::nullopt;
}

/// Scores the fpmon-flow detector for one trial: fires only with correct
/// site attribution on the classes whose attribution is defined (poison:
/// earliest anomaly == an effective injected site; swallow: first swallow
/// at/after the armed site); fires on any exceptional-flow anomaly for
/// the rest.
void score_flow(TrialOut& t, const mon::FlowLedger& led,
                const mon::FlowLedger& base, const Injector& injector,
                FaultClass cls) {
  const std::vector<std::uint64_t> anomalies = anomalous_tags(led, base);
  const std::optional<std::uint64_t> swallow = first_swallow_tag(led);
  t.flow_anomalies = anomalies.size();

  bool fired = false;
  switch (cls) {
    case FaultClass::kPoison: {
      if (!anomalies.empty()) {
        for (const FaultSite& s : injector.sites()) {
          if (s.effective && flow_tag(s.call, s.op) == anomalies.front()) {
            fired = true;
            t.flow_attributed = true;
            break;
          }
        }
      }
      break;
    }
    case FaultClass::kFlagSwallow: {
      if (swallow.has_value()) {
        for (const FaultSite& s : injector.sites()) {
          // Aux tags (neg/cmp) sort after the arithmetic ops of their
          // call, so >= correctly credits a swallow first seen on a
          // comparison of the armed call.
          if (s.effective && *swallow >= flow_tag(s.call, s.op)) {
            fired = true;
            t.flow_attributed = true;
            break;
          }
        }
      }
      break;
    }
    default:
      // No attribution contract: any exceptional-flow anomaly (an Inf
      // that vanished under a perturbed rounding mode, a NaN a bit flip
      // conjured) counts as a firing.
      fired = !anomalies.empty() || swallow.has_value();
      break;
  }
  t.fired[static_cast<std::size_t>(Detector::kFpmonFlow)] = fired;
}

/// Runs one injected trial of `wl` on one substrate and scores every
/// detector against that substrate's clean baseline.
TrialOut run_trial(const workloads::Workload& wl, FaultClass cls,
                   std::uint64_t cell_seed, Substrate substrate,
                   const RunSignals& baseline,
                   const mon::FlowLedger& flow_baseline,
                   const GauntletConfig& cfg) {
  Injector injector(campaign_for(cls, cell_seed));
  RunSignals sig;
  mon::FlowReport flow;
  if (substrate == Substrate::kSoftfloat) {
    SoftInjectingContext inj_ctx(injector);
    RecordingContext rec(inj_ctx);
    // The FlowMonitor watches the evaluator's op hooks; the softfloat
    // substrate's observed() flags live in the soft Env, which the
    // monitor's host-fenv scoping cannot perturb.
    mon::monitor_flow([&] { wl.probe(rec); }, flow);
    sig = signals_for(rec.records(), inj_ctx.observed(), cfg);
  } else {
    // The real FPU under a real monitor: the monitor clears the sticky
    // hardware flags on entry (giving the run the same empty-union start
    // the softfloat substrate's fresh Env has) and harvests whatever the
    // injected kernel — minus anything a swallow fault ate — left behind.
    // The nested FlowMonitor re-raises everything it harvested on stop,
    // so the outer region observes exactly what it always did.
    NativeInjectingContext inj_ctx(injector);
    RecordingContext rec(inj_ctx);
    mon::ConditionSet observed;
    mon::monitor_region(
        [&] { mon::monitor_flow([&] { wl.probe(rec); }, flow); }, observed);
    sig = signals_for(rec.records(), observed, cfg);
  }

  TrialOut t;
  t.armed = !injector.sites().empty();
  t.sites = injector.sites().size();
  t.effective_sites = injector.effective_count();
  t.effective = t.effective_sites > 0;
  t.sites_fp = sites_fingerprint(injector.sites());
  t.fired[static_cast<std::size_t>(Detector::kFpmon)] =
      !(sig.observed == baseline.observed);
  t.fired[static_cast<std::size_t>(Detector::kShadow)] =
      fired_beyond(sig.shadow_fired, baseline.shadow_fired);
  t.fired[static_cast<std::size_t>(Detector::kInterval)] =
      fired_beyond(sig.interval_fired, baseline.interval_fired);
  score_flow(t, flow.ledger, flow_baseline, injector, cls);
  return t;
}

}  // namespace

GauntletResult run_gauntlet(parallel::ThreadPool& pool,
                            const GauntletConfig& config) {
  GauntletResult result;
  result.config = config;

  const std::span<const workloads::Workload> cat = workloads::catalogue();
  const std::size_t n_workloads = cat.size();
  const std::size_t per_workload = kFaultClassCount * config.trials;

  // Phase 1: clean baselines, one shard per (workload, substrate). Also
  // verifies the probe contracts on both substrates — a probe that broke
  // its contract would poison every comparison below. Each shard
  // additionally runs the probe once more under a never-arming campaign
  // with a FlowMonitor attached: the flow ledger baseline, whose site
  // tags align one-for-one with every injected trial of the same
  // (workload, substrate) because the null campaign consumes the
  // identical (call, op) numbering.
  std::vector<RunSignals> baselines(n_workloads * kSubstrateCount);
  std::vector<mon::FlowLedger> flow_baselines(n_workloads *
                                              kSubstrateCount);
  pool.run_shards(n_workloads * kSubstrateCount, [&](std::size_t idx) {
    const std::size_t w = idx / kSubstrateCount;
    const Substrate substrate =
        static_cast<Substrate>(idx % kSubstrateCount);
    Injector null_injector(null_campaign());
    mon::FlowReport flow;
    if (substrate == Substrate::kSoftfloat) {
      SoftContext soft;
      RecordingContext rec(soft);
      cat[w].probe(rec);
      baselines[idx] =
          signals_for(rec.records(), soft.observed(), config);
      SoftInjectingContext clean_ctx(null_injector);
      mon::monitor_flow([&] { cat[w].probe(clean_ctx); }, flow);
    } else {
      workloads::NativeContext native;
      RecordingContext rec(native);
      mon::ConditionSet observed;
      mon::monitor_region([&] { cat[w].probe(rec); }, observed);
      baselines[idx] = signals_for(rec.records(), observed, config);
      NativeInjectingContext clean_ctx(null_injector);
      mon::monitor_flow([&] { cat[w].probe(clean_ctx); }, flow);
    }
    flow_baselines[idx] = std::move(flow.ledger);
  });
  for (std::size_t w = 0; w < n_workloads; ++w) {
    for (std::size_t s = 0; s < kSubstrateCount; ++s) {
      const RunSignals& base = baselines[w * kSubstrateCount + s];
      result.contracts.push_back(
          {cat[w].name, static_cast<Substrate>(s), base.observed,
           workloads::contract_holds(cat[w], base.observed)});
    }
  }

  // Phase 2: one shard per (workload, fault class, trial, substrate).
  // The same cell seed feeds both substrate shards of a campaign, which
  // is what the parity check below verifies. Each shard owns its
  // Injector and writes only its slot.
  const std::size_t campaigns = n_workloads * per_workload;
  const std::size_t total = campaigns * kSubstrateCount;
  std::vector<TrialOut> trials(total);
  pool.run_shards(total, [&](std::size_t idx) {
    const std::size_t campaign = idx / kSubstrateCount;
    const Substrate substrate =
        static_cast<Substrate>(idx % kSubstrateCount);
    const std::size_t w = campaign / per_workload;
    const std::size_t rest = campaign % per_workload;
    const std::size_t cls_index = rest / config.trials;
    const std::size_t trial = rest % config.trials;
    const FaultClass cls = static_cast<FaultClass>(cls_index);

    const std::uint64_t cell_seed =
        mix(mix(mix(config.seed, w), cls_index), trial);
    const std::size_t base_idx =
        w * kSubstrateCount + static_cast<std::size_t>(substrate);
    trials[idx] = run_trial(cat[w], cls, cell_seed, substrate,
                            baselines[base_idx], flow_baselines[base_idx],
                            config);
  });

  // Fixed-order aggregation: the matrices, the undetected list, the
  // parity verdicts and the fingerprint are pure functions of the slot
  // vector.
  std::uint64_t fp = mix(config.seed, total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    const TrialOut& t = trials[idx];
    const std::size_t campaign = idx / kSubstrateCount;
    const std::size_t s = idx % kSubstrateCount;
    const std::size_t w = campaign / per_workload;
    const std::size_t rest = campaign % per_workload;
    const std::size_t cls_index = rest / config.trials;
    const std::size_t trial = rest % config.trials;

    result.total_trials += 1;
    result.total_sites += t.sites;
    result.total_effective += t.effective_sites;

    // Every column scores every trial; but "undetected" (and the
    // fingerprint below) stay defined over the legacy detectors so the
    // checked-in baselines survive new columns.
    bool any_fired = false;
    for (std::size_t d = 0; d < kDetectorCount; ++d) {
      CellStats& cell = result.cells[s][cls_index][d];
      cell.trials += 1;
      if (t.effective) {
        if (t.fired[d]) {
          cell.hits += 1;
          if (d < kLegacyDetectorCount) any_fired = true;
        } else {
          cell.misses += 1;
        }
      } else {
        cell.controls += 1;
        if (t.fired[d]) cell.false_positives += 1;
      }
    }

    FlowScore& flow = result.flow_scores[s];
    if (t.effective) {
      if (cls_index == static_cast<std::size_t>(FaultClass::kPoison)) {
        flow.poison_effective += 1;
        if (t.flow_attributed) flow.poison_attributed += 1;
      } else if (cls_index ==
                 static_cast<std::size_t>(FaultClass::kFlagSwallow)) {
        flow.swallow_effective += 1;
        if (t.flow_attributed) flow.swallow_attributed += 1;
      }
    } else {
      flow.control_trials += 1;
      flow.control_anomalies += t.flow_anomalies;
    }

    if (t.effective && !any_fired) {
      result.undetected.push_back({cat[w].name, static_cast<Substrate>(s),
                                   static_cast<FaultClass>(cls_index),
                                   trial, t.effective_sites});
    }
    if (s == static_cast<std::size_t>(Substrate::kNative)) {
      const TrialOut& soft = trials[idx - 1];  // same campaign, softfloat
      if (soft.sites_fp != t.sites_fp) {
        result.parity_mismatches.push_back(
            {cat[w].name, static_cast<FaultClass>(cls_index), trial,
             soft.sites_fp, t.sites_fp});
      }
    }

    fp = mix(fp, t.sites_fp);
    fp = mix(fp, (t.effective ? 1u : 0u) | (t.armed ? 2u : 0u) |
                     (t.fired[0] ? 4u : 0u) | (t.fired[1] ? 8u : 0u) |
                     (t.fired[2] ? 16u : 0u));
  }
  for (const auto& substrate_cells : result.cells) {
    for (const auto& row : substrate_cells) {
      // Legacy columns only: the fingerprint's definition predates the
      // fpmon-flow column and must stay bit-identical to it.
      for (std::size_t d = 0; d < kLegacyDetectorCount; ++d) {
        const CellStats& cell = row[d];
        fp = mix(fp, cell.hits);
        fp = mix(fp, cell.misses);
        fp = mix(fp, cell.false_positives);
        fp = mix(fp, cell.controls);
      }
    }
  }
  result.fingerprint = fp;
  result.tracks_denormals = mon::ScopedMonitor().tracks_denormals();
  result.trap_available = mon::trap_supported();
  return result;
}

std::string render(const GauntletResult& result) {
  std::string out;

  out += "platform capability: denormal tracking " +
         std::string(result.tracks_denormals ? "on" : "off") +
         " (MXCSR DE), FE traps " +
         (result.trap_available ? "available" : "unavailable") +
         " (gauntlet scores sampling mode)\n\n";

  for (std::size_t s = 0; s < kSubstrateCount; ++s) {
    const auto substrate = static_cast<Substrate>(s);
    report::Table matrix({"fault class", "fpmon", "shadow", "interval",
                          "fpmon-flow", "effective", "controls"});
    for (std::size_t c = 0; c < kFaultClassCount; ++c) {
      const auto cls = static_cast<FaultClass>(c);
      std::vector<std::string> row;
      row.push_back(
          fault_class_name(cls) +
          (result.class_covered(substrate, cls) ? "" : "  [UNCOVERED]"));
      std::size_t effective = 0, controls = 0;
      for (std::size_t d = 0; d < kDetectorCount; ++d) {
        const CellStats& cell = result.cells[s][c][d];
        std::string text = report::Table::fmt(cell.hits) + "/" +
                           report::Table::fmt(cell.misses);
        if (cell.false_positives > 0) {
          text += " fp:" + report::Table::fmt(cell.false_positives);
        }
        row.push_back(text);
        effective = cell.hits + cell.misses;
        controls = cell.controls;
      }
      row.push_back(report::Table::fmt(effective));
      row.push_back(report::Table::fmt(controls));
      matrix.add_row(std::move(row));
    }
    out += report::section(
        "Detection coverage on " + substrate_name(substrate) +
            " (hits/misses per detector, " +
            report::Table::fmt(result.config.trials) +
            " trials per workload x class, seed " +
            report::Table::fmt(
                static_cast<std::size_t>(result.config.seed)) +
            ")",
        matrix.render());
  }

  report::Table flow_table({"substrate", "poison attributed",
                            "swallow attributed", "control anomalies"});
  for (std::size_t s = 0; s < kSubstrateCount; ++s) {
    const FlowScore& fs = result.flow_scores[s];
    flow_table.add_row(
        {substrate_name(static_cast<Substrate>(s)),
         report::Table::fmt(fs.poison_attributed) + "/" +
             report::Table::fmt(fs.poison_effective),
         report::Table::fmt(fs.swallow_attributed) + "/" +
             report::Table::fmt(fs.swallow_effective),
         report::Table::fmt(fs.control_anomalies) + " (" +
             report::Table::fmt(fs.control_trials) + " controls)"});
  }
  out += report::section(
      "fpmon-flow site attribution (credited/effective)",
      flow_table.render());

  report::Table contracts(
      {"workload probe", "substrate", "observed", "contract"});
  for (const ContractRow& row : result.contracts) {
    contracts.add_row({row.workload, substrate_name(row.substrate),
                       row.observed.to_string(),
                       row.holds ? "holds" : "VIOLATED"});
  }
  out += report::section("Clean probe contracts", contracts.render());

  std::string parity;
  if (result.parity_mismatches.empty()) {
    parity = "(all campaigns bit-identical across substrates)\n";
  } else {
    for (const ParityRecord& p : result.parity_mismatches) {
      parity += "  " + p.workload + " / " +
                fault_class_name(p.fault_class) + " trial " +
                report::Table::fmt(p.trial) + ": softfloat " +
                report::Table::fmt(
                    static_cast<std::size_t>(p.softfloat_fingerprint)) +
                " != native " +
                report::Table::fmt(
                    static_cast<std::size_t>(p.native_fingerprint)) +
                "\n";
    }
  }
  out += report::section("Cross-substrate campaign parity", parity);

  std::string misses;
  if (result.undetected.empty()) {
    misses = "(none — every effective fault was caught by at least one "
             "detector)\n";
  } else {
    for (const MissRecord& m : result.undetected) {
      misses += "  " + m.workload + " [" + substrate_name(m.substrate) +
                "] / " + fault_class_name(m.fault_class) + " trial " +
                report::Table::fmt(m.trial) + " (" +
                report::Table::fmt(m.effective_sites) +
                " effective site(s))\n";
    }
  }
  out += report::section("Undetected effective faults", misses);

  out += "total trials: " + report::Table::fmt(result.total_trials) +
         ", armed sites: " + report::Table::fmt(result.total_sites) +
         ", effective: " + report::Table::fmt(result.total_effective) +
         ", fingerprint: " +
         report::Table::fmt(static_cast<std::size_t>(result.fingerprint)) +
         "\n";
  return out;
}

}  // namespace fpq::inject
