#include "inject/gauntlet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <span>

#include "analyze/shadow.hpp"
#include "inject/evaluator.hpp"
#include "interval/interval.hpp"
#include "ir/evaluators.hpp"
#include "ir/tape.hpp"
#include "report/table.hpp"
#include "stats/prng.hpp"
#include "workloads/workloads.hpp"

namespace fpq::inject {

std::string detector_name(Detector d) {
  switch (d) {
    case Detector::kFpmon:
      return "fpmon";
    case Detector::kShadow:
      return "shadow";
    case Detector::kInterval:
      return "interval";
  }
  return "unknown";
}

bool GauntletResult::class_covered(FaultClass c) const noexcept {
  const auto& row = cells[static_cast<std::size_t>(c)];
  for (const CellStats& cell : row) {
    if (cell.hits > 0) return true;
  }
  return false;
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  return stats::splitmix64_next(s);
}

/// Per-class campaign shape: single-shot corruptions arm rarely (one
/// fault per run); FTZ arms densely because it only bites on subnormal
/// traffic; the sticky classes arm once early and persist.
CampaignConfig campaign_for(FaultClass cls, std::uint64_t cell_seed) {
  CampaignConfig cc;
  cc.seed = cell_seed;
  cc.fault_class = cls;
  switch (cls) {
    case FaultClass::kPoison:
      cc.rate = 0.02;
      cc.max_faults = 1;
      break;
    case FaultClass::kFlagSwallow:
      cc.rate = 0.05;
      cc.max_faults = 1;
      break;
    case FaultClass::kForceFtz:
      cc.rate = 0.5;
      cc.max_faults = 0;
      break;
    case FaultClass::kRoundingPerturb:
      cc.rate = 0.05;
      cc.max_faults = 1;
      break;
    case FaultClass::kBitFlip:
      cc.rate = 0.02;
      cc.max_faults = 1;
      break;
  }
  return cc;
}

struct CallRecord {
  ir::Expr expr;
  std::vector<double> bindings;
  double result = 0.0;
};

/// Runs a kernel on the softfloat engine (optionally through the
/// injector), recording every call for the per-call detectors and
/// accumulating the run-level sticky condition union the fpmon detector
/// compares.
class RecordingContext final : public workloads::EvalContext {
 public:
  explicit RecordingContext(Injector* injector) : injector_(injector) {}

  double call(const ir::Expr& expr,
              std::span<const double> bindings) override {
    double r;
    if (injector_ != nullptr) {
      // Injected runs stay on the tree walk: the injector arms fault
      // sites by op index in the VISIT sequence, which the reference
      // walk defines.
      ir::SoftEvaluator<64> soft{ir::EvalConfig::ieee_strict()};
      injector_->begin_call();
      InjectingEvaluator inj(soft, *injector_);
      r = ir::evaluate_tree<double>(expr, inj, bindings);
      observed_.merge(mon::ConditionSet::from_softfloat_flags(soft.flags()));
    } else {
      // Baseline runs the compiled tape — bit- and sticky-flag-identical
      // to the tree walk, so detector ground truth (and the campaign
      // fingerprints derived from it) is unchanged while repeated probe
      // evaluations skip the virtual walk.
      const std::shared_ptr<const ir::Tape> tape =
          ir::Tape::cached(expr, ir::EvalConfig::ieee_strict());
      const ir::Outcome out = ir::execute(*tape, bindings);
      r = softfloat::to_native(out.value);
      observed_.merge(mon::ConditionSet::from_softfloat_flags(out.flags));
    }
    records_.push_back(
        {expr, std::vector<double>(bindings.begin(), bindings.end()), r});
    return r;
  }

  const mon::ConditionSet& observed() const noexcept { return observed_; }
  const std::vector<CallRecord>& records() const noexcept {
    return records_;
  }

 private:
  Injector* injector_;
  mon::ConditionSet observed_;
  std::vector<CallRecord> records_;
};

/// Per-call detector verdicts for one whole run.
struct RunSignals {
  mon::ConditionSet observed;
  std::vector<bool> shadow_fired;
  std::vector<bool> interval_fired;
};

RunSignals signals_for(const RecordingContext& run,
                       const GauntletConfig& cfg) {
  RunSignals out;
  out.observed = run.observed();
  out.shadow_fired.reserve(run.records().size());
  out.interval_fired.reserve(run.records().size());

  shadow::Config scfg;
  scfg.precision = cfg.shadow_precision;

  for (const CallRecord& rec : run.records()) {
    const shadow::Report rep = shadow::analyze(rec.expr, scfg, rec.bindings);
    bool sfired = false;
    if (!std::isfinite(rec.result)) {
      // Exceptional primary, unexceptional shadow: the fault (or the
      // format) manufactured it.
      sfired = !rep.shadow_is_exceptional;
    } else if (!rep.shadow_is_exceptional) {
      const double denom = std::max(std::fabs(rep.shadow_result),
                                    std::numeric_limits<double>::min());
      sfired = std::fabs(rec.result - rep.shadow_result) / denom >
               cfg.shadow_relative_error;
    }
    out.shadow_fired.push_back(sfired);

    const interval::Interval iv =
        interval::evaluate(rec.expr, rec.bindings);
    // An invalid enclosure means the mathematics itself went exceptional
    // on these inputs; the clean baseline sees the same and the per-call
    // comparison nets it out.
    const bool ifired =
        !iv.is_invalid() && (!iv.contains(rec.result) ||
                             iv.relative_width() > cfg.interval_wide);
    out.interval_fired.push_back(ifired);
  }
  return out;
}

/// True when the injected run fired on some call the clean run did not.
bool fired_beyond(const std::vector<bool>& injected,
                  const std::vector<bool>& clean) {
  const std::size_t common = std::min(injected.size(), clean.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (injected[i] && !clean[i]) return true;
  }
  for (std::size_t i = common; i < injected.size(); ++i) {
    if (injected[i]) return true;
  }
  return false;
}

struct TrialOut {
  bool armed = false;
  bool effective = false;
  std::size_t sites = 0;
  std::size_t effective_sites = 0;
  std::array<bool, kDetectorCount> fired{};
  std::uint64_t sites_fp = 0;
};

}  // namespace

GauntletResult run_gauntlet(parallel::ThreadPool& pool,
                            const GauntletConfig& config) {
  GauntletResult result;
  result.config = config;

  const std::span<const workloads::Workload> cat = workloads::catalogue();
  const std::size_t n_workloads = cat.size();
  const std::size_t per_workload = kFaultClassCount * config.trials;

  // Phase 1: clean baselines, one shard per workload. Also verifies the
  // probe contracts — a probe that broke its contract would poison every
  // comparison below.
  std::vector<RunSignals> baselines(n_workloads);
  pool.run_shards(n_workloads, [&](std::size_t w) {
    RecordingContext ctx(nullptr);
    cat[w].probe(ctx);
    baselines[w] = signals_for(ctx, config);
  });
  for (std::size_t w = 0; w < n_workloads; ++w) {
    result.contracts.push_back(
        {cat[w].name, baselines[w].observed,
         workloads::contract_holds(cat[w], baselines[w].observed)});
  }

  // Phase 2: one shard per (workload, fault class, trial). Each trial
  // owns its Injector and writes only its slot.
  const std::size_t total = n_workloads * per_workload;
  std::vector<TrialOut> trials(total);
  pool.run_shards(total, [&](std::size_t idx) {
    const std::size_t w = idx / per_workload;
    const std::size_t rest = idx % per_workload;
    const std::size_t cls_index = rest / config.trials;
    const std::size_t trial = rest % config.trials;
    const FaultClass cls = static_cast<FaultClass>(cls_index);

    const std::uint64_t cell_seed =
        mix(mix(mix(config.seed, w), cls_index), trial);
    Injector injector(campaign_for(cls, cell_seed));
    RecordingContext ctx(&injector);
    cat[w].probe(ctx);
    const RunSignals sig = signals_for(ctx, config);

    TrialOut& t = trials[idx];
    t.armed = !injector.sites().empty();
    t.sites = injector.sites().size();
    t.effective_sites = injector.effective_count();
    t.effective = t.effective_sites > 0;
    t.sites_fp = sites_fingerprint(injector.sites());
    t.fired[static_cast<std::size_t>(Detector::kFpmon)] =
        !(sig.observed == baselines[w].observed);
    t.fired[static_cast<std::size_t>(Detector::kShadow)] =
        fired_beyond(sig.shadow_fired, baselines[w].shadow_fired);
    t.fired[static_cast<std::size_t>(Detector::kInterval)] =
        fired_beyond(sig.interval_fired, baselines[w].interval_fired);
  });

  // Fixed-order aggregation: the matrix, the undetected list and the
  // fingerprint are pure functions of the slot vector.
  std::uint64_t fp = mix(config.seed, total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    const TrialOut& t = trials[idx];
    const std::size_t w = idx / per_workload;
    const std::size_t rest = idx % per_workload;
    const std::size_t cls_index = rest / config.trials;
    const std::size_t trial = rest % config.trials;

    result.total_trials += 1;
    result.total_sites += t.sites;
    result.total_effective += t.effective_sites;

    bool any_fired = false;
    for (std::size_t d = 0; d < kDetectorCount; ++d) {
      CellStats& cell = result.cells[cls_index][d];
      cell.trials += 1;
      if (t.effective) {
        if (t.fired[d]) {
          cell.hits += 1;
          any_fired = true;
        } else {
          cell.misses += 1;
        }
      } else {
        cell.controls += 1;
        if (t.fired[d]) cell.false_positives += 1;
      }
    }
    if (t.effective && !any_fired) {
      result.undetected.push_back({cat[w].name,
                                   static_cast<FaultClass>(cls_index),
                                   trial, t.effective_sites});
    }

    fp = mix(fp, t.sites_fp);
    fp = mix(fp, (t.effective ? 1u : 0u) | (t.armed ? 2u : 0u) |
                     (t.fired[0] ? 4u : 0u) | (t.fired[1] ? 8u : 0u) |
                     (t.fired[2] ? 16u : 0u));
  }
  for (const auto& row : result.cells) {
    for (const CellStats& cell : row) {
      fp = mix(fp, cell.hits);
      fp = mix(fp, cell.misses);
      fp = mix(fp, cell.false_positives);
      fp = mix(fp, cell.controls);
    }
  }
  result.fingerprint = fp;
  return result;
}

std::string render(const GauntletResult& result) {
  std::string out;

  report::Table matrix({"fault class", "fpmon", "shadow", "interval",
                        "effective", "controls"});
  for (std::size_t c = 0; c < kFaultClassCount; ++c) {
    const auto cls = static_cast<FaultClass>(c);
    std::vector<std::string> row;
    row.push_back(fault_class_name(cls) +
                  (result.class_covered(cls) ? "" : "  [UNCOVERED]"));
    std::size_t effective = 0, controls = 0;
    for (std::size_t d = 0; d < kDetectorCount; ++d) {
      const CellStats& cell = result.cells[c][d];
      std::string text = report::Table::fmt(cell.hits) + "/" +
                         report::Table::fmt(cell.misses);
      if (cell.false_positives > 0) {
        text += " fp:" + report::Table::fmt(cell.false_positives);
      }
      row.push_back(text);
      effective = cell.hits + cell.misses;
      controls = cell.controls;
    }
    row.push_back(report::Table::fmt(effective));
    row.push_back(report::Table::fmt(controls));
    matrix.add_row(std::move(row));
  }
  out += report::section(
      "Detection coverage (hits/misses per detector, " +
          report::Table::fmt(result.config.trials) +
          " trials per workload x class, seed " +
          report::Table::fmt(static_cast<std::size_t>(result.config.seed)) +
          ")",
      matrix.render());

  report::Table contracts({"workload probe", "observed", "contract"});
  for (const ContractRow& row : result.contracts) {
    contracts.add_row({row.workload, row.observed.to_string(),
                       row.holds ? "holds" : "VIOLATED"});
  }
  out += report::section("Clean probe contracts", contracts.render());

  std::string misses;
  if (result.undetected.empty()) {
    misses = "(none — every effective fault was caught by at least one "
             "detector)\n";
  } else {
    for (const MissRecord& m : result.undetected) {
      misses += "  " + m.workload + " / " +
                fault_class_name(m.fault_class) + " trial " +
                report::Table::fmt(m.trial) + " (" +
                report::Table::fmt(m.effective_sites) +
                " effective site(s))\n";
    }
  }
  out += report::section("Undetected effective faults", misses);

  out += "total trials: " + report::Table::fmt(result.total_trials) +
         ", armed sites: " + report::Table::fmt(result.total_sites) +
         ", effective: " + report::Table::fmt(result.total_effective) +
         ", fingerprint: " +
         report::Table::fmt(static_cast<std::size_t>(result.fingerprint)) +
         "\n";
  return out;
}

}  // namespace fpq::inject
