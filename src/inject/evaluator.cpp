#include "inject/evaluator.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::inject {

namespace {

bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool is_subnormal(double x) noexcept {
  return x != 0.0 && std::fpclassify(x) == FP_SUBNORMAL;
}

double flip_mantissa_bit(double x, unsigned bit) noexcept {
  // Only finite nonzero values flip: NaN payload and infinity bit
  // tampering would change nothing observable (or denormalize an inf
  // into a different exceptional shape than the model promises).
  if (!std::isfinite(x) || x == 0.0) return x;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                               (std::uint64_t{1} << bit));
}

}  // namespace

InjectingEvaluator::InjectingEvaluator(ir::Evaluator<double>& inner,
                                       Injector& injector)
    : inner_(inner),
      flags_(dynamic_cast<ir::FlagControl*>(&inner)),
      injector_(&injector) {}

double InjectingEvaluator::constant(const ir::Expr& e) {
  return inner_.constant(e);
}

double InjectingEvaluator::variable(const ir::Expr& e, double bound) {
  return inner_.variable(e, bound);
}

double InjectingEvaluator::neg(const ir::Expr& e, const double& a) {
  // Not an injection site (sign flips raise nothing and round nothing),
  // but sticky flag swallowing still applies.
  const double r = inner_.neg(e, a);
  swallow_flags();
  return r;
}

double InjectingEvaluator::add(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kAdd, e, a, b, 0.0);
}
double InjectingEvaluator::sub(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kSub, e, a, b, 0.0);
}
double InjectingEvaluator::mul(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kMul, e, a, b, 0.0);
}
double InjectingEvaluator::div(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kDiv, e, a, b, 0.0);
}
double InjectingEvaluator::sqrt(const ir::Expr& e, const double& a) {
  return inject(Op::kSqrt, e, a, 0.0, 0.0);
}
double InjectingEvaluator::fma(const ir::Expr& e, const double& a,
                               const double& b, const double& c) {
  return inject(Op::kFma, e, a, b, c);
}

double InjectingEvaluator::cmp_eq(const ir::Expr& e, const double& a,
                                  const double& b) {
  const double r = inner_.cmp_eq(e, a, b);
  swallow_flags();
  return r;
}
double InjectingEvaluator::cmp_lt(const ir::Expr& e, const double& a,
                                  const double& b) {
  const double r = inner_.cmp_lt(e, a, b);
  swallow_flags();
  return r;
}

double InjectingEvaluator::forward(Op op, const ir::Expr& e, double a,
                                   double b, double c) {
  switch (op) {
    case Op::kAdd:
      return inner_.add(e, a, b);
    case Op::kSub:
      return inner_.sub(e, a, b);
    case Op::kMul:
      return inner_.mul(e, a, b);
    case Op::kDiv:
      return inner_.div(e, a, b);
    case Op::kSqrt:
      return inner_.sqrt(e, a);
    case Op::kFma:
      return inner_.fma(e, a, b, c);
  }
  return 0.0;
}

double InjectingEvaluator::inject(Op op, const ir::Expr& e, double a,
                                  double b, double c) {
  const std::optional<FaultPlan> plan = injector_->plan_next_op();

  double ia = a, ib = b, ic = c;
  bool pre_mutated = false;
  if (plan) {
    switch (plan->fault_class) {
      case FaultClass::kPoison:
        if (plan->poison_operand) {
          pre_mutated = !bits_equal(ia, plan->poison_value);
          ia = plan->poison_value;
        }
        break;
      case FaultClass::kForceFtz:
        // DAZ half: subnormal operands read as (signed) zero.
        if (is_subnormal(ia)) {
          ia = std::copysign(0.0, ia);
          pre_mutated = true;
        }
        if (is_subnormal(ib)) {
          ib = std::copysign(0.0, ib);
          pre_mutated = true;
        }
        if (is_subnormal(ic)) {
          ic = std::copysign(0.0, ic);
          pre_mutated = true;
        }
        break;
      default:
        break;
    }
  }

  const double raw = forward(op, e, ia, ib, ic);
  double r = raw;

  if (plan) {
    switch (plan->fault_class) {
      case FaultClass::kPoison:
        if (plan->poison_operand) {
          injector_->note_applied(a, ia, pre_mutated);
        } else {
          r = plan->poison_value;
          injector_->note_applied(raw, r, !bits_equal(raw, r));
        }
        break;
      case FaultClass::kForceFtz:
        // FTZ half: a subnormal result flushes to (signed) zero.
        if (is_subnormal(r)) r = std::copysign(0.0, r);
        injector_->note_applied(raw, r,
                                pre_mutated || !bits_equal(raw, r));
        break;
      case FaultClass::kBitFlip:
        r = flip_mantissa_bit(raw, plan->bit_index);
        injector_->note_applied(raw, r, !bits_equal(raw, r));
        break;
      case FaultClass::kFlagSwallow:
      case FaultClass::kRoundingPerturb:
        // Sticky classes: arming recorded the site; effectiveness is
        // reported by the sticky pass when something actually changes.
        injector_->note_applied(raw, raw, false);
        break;
    }
  }

  return sticky_pass(op, ia, ib, ic, r, /*recomputable=*/!plan ||
                         plan->fault_class == FaultClass::kRoundingPerturb);
}

double InjectingEvaluator::sticky_pass(Op op, double a, double b, double c,
                                       double r, bool recomputable) {
  if (const auto mode = injector_->perturb_rounding();
      mode.has_value() && recomputable) {
    // Recompute the operation in the perturbed rounding-direction
    // attribute through the softfloat binary64 engine; value-level
    // perturbation only — the inner evaluator's flag accounting for the
    // nearest-even execution stands (the leaked-mode bug changes results
    // long before it changes which flags are raised).
    softfloat::Env env(*mode);
    using softfloat::from_native;
    using softfloat::to_native;
    const softfloat::Float64 fa = from_native(a);
    const softfloat::Float64 fb = from_native(b);
    double perturbed = r;
    switch (op) {
      case Op::kAdd:
        perturbed = to_native(softfloat::add(fa, fb, env));
        break;
      case Op::kSub:
        perturbed = to_native(softfloat::sub(fa, fb, env));
        break;
      case Op::kMul:
        perturbed = to_native(softfloat::mul(fa, fb, env));
        break;
      case Op::kDiv:
        perturbed = to_native(softfloat::div(fa, fb, env));
        break;
      case Op::kSqrt:
        perturbed = to_native(softfloat::sqrt(fa, env));
        break;
      case Op::kFma:
        perturbed =
            to_native(softfloat::fma(fa, fb, from_native(c), env));
        break;
    }
    if (!bits_equal(perturbed, r)) {
      injector_->note_perturbed();
      r = perturbed;
    }
  }

  swallow_flags();
  return r;
}

void InjectingEvaluator::swallow_flags() {
  const unsigned mask = injector_->swallow_mask();
  if (mask == 0 || flags_ == nullptr) return;
  const unsigned sticky = flags_->sticky_flags();
  if ((sticky & mask) == 0) return;
  flags_->override_sticky_flags(sticky & ~mask);
  injector_->note_swallowed(sticky & mask);
}

}  // namespace fpq::inject
