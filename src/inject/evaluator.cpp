#include "inject/evaluator.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "fpmon/flow.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::inject {

namespace {

bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool is_subnormal(double x) noexcept {
  // Bit-level on purpose: an FPU comparison against a subnormal would set
  // the hardware denormal-operand flag, and the injector must not perturb
  // the very flag state it is attacking.
  const std::uint64_t magnitude =
      std::bit_cast<std::uint64_t>(x) & 0x7FFFFFFFFFFFFFFFULL;
  return magnitude != 0 && magnitude < 0x0010000000000000ULL;
}

double flip_mantissa_bit(double x, unsigned bit) noexcept {
  // Only finite nonzero values flip: NaN payload and infinity bit
  // tampering would change nothing observable (or denormalize an inf
  // into a different exceptional shape than the model promises).
  const std::uint64_t magnitude =
      std::bit_cast<std::uint64_t>(x) & 0x7FFFFFFFFFFFFFFFULL;
  if (magnitude == 0 || magnitude >= 0x7FF0000000000000ULL) return x;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                               (std::uint64_t{1} << bit));
}

}  // namespace

InjectingEvaluator::InjectingEvaluator(ir::Evaluator<double>& inner,
                                       Injector& injector)
    : inner_(inner),
      flags_(dynamic_cast<ir::FlagControl*>(&inner)),
      injector_(&injector) {}

double InjectingEvaluator::constant(const ir::Expr& e) {
  return inner_.constant(e);
}

double InjectingEvaluator::variable(const ir::Expr& e, double bound) {
  return inner_.variable(e, bound);
}

double InjectingEvaluator::neg(const ir::Expr& e, const double& a) {
  // Not an injection site (sign flips raise nothing and round nothing),
  // but sticky flag swallowing still applies.
  const double r = inner_.neg(e, a);
  return observe_passthrough(a, 0.0, 1, r);
}

double InjectingEvaluator::add(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kAdd, e, a, b, 0.0);
}
double InjectingEvaluator::sub(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kSub, e, a, b, 0.0);
}
double InjectingEvaluator::mul(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kMul, e, a, b, 0.0);
}
double InjectingEvaluator::div(const ir::Expr& e, const double& a,
                               const double& b) {
  return inject(Op::kDiv, e, a, b, 0.0);
}
double InjectingEvaluator::sqrt(const ir::Expr& e, const double& a) {
  return inject(Op::kSqrt, e, a, 0.0, 0.0);
}
double InjectingEvaluator::fma(const ir::Expr& e, const double& a,
                               const double& b, const double& c) {
  return inject(Op::kFma, e, a, b, c);
}

double InjectingEvaluator::cmp_eq(const ir::Expr& e, const double& a,
                                  const double& b) {
  const double r = inner_.cmp_eq(e, a, b);
  return observe_passthrough(a, b, 2, r);
}
double InjectingEvaluator::cmp_lt(const ir::Expr& e, const double& a,
                                  const double& b) {
  const double r = inner_.cmp_lt(e, a, b);
  return observe_passthrough(a, b, 2, r);
}

double InjectingEvaluator::observe_passthrough(double a, double b,
                                               unsigned operand_count,
                                               double r) {
  // neg/cmp never consume arithmetic site numbers, so flow events here
  // carry auxiliary tags (kFlowAuxBit). Comparisons are where NaNs get
  // "compared away" — exactly the kill events the flow ledger exists to
  // attribute — and a swallow can land on them too, hence the same
  // pre/post sample pair as the arithmetic path.
  if (!mon::FlowMonitor::thread_active()) {
    swallow_flags();
    return r;
  }
  const std::uint64_t tag = injector_->next_aux_tag();
  mon::FlowMonitor::on_flag_sample(tag, sampled_sticky_flags());
  swallow_flags();
  mon::FlowMonitor::on_flag_sample(tag, sampled_sticky_flags());
  mon::FlowMonitor::on_op(tag, a, b, 0.0, operand_count, r);
  return r;
}

double InjectingEvaluator::forward(Op op, const ir::Expr& e, double a,
                                   double b, double c) {
  switch (op) {
    case Op::kAdd:
      return inner_.add(e, a, b);
    case Op::kSub:
      return inner_.sub(e, a, b);
    case Op::kMul:
      return inner_.mul(e, a, b);
    case Op::kDiv:
      return inner_.div(e, a, b);
    case Op::kSqrt:
      return inner_.sqrt(e, a);
    case Op::kFma:
      return inner_.fma(e, a, b, c);
  }
  return 0.0;
}

double InjectingEvaluator::inject(Op op, const ir::Expr& e, double a,
                                  double b, double c) {
  const std::optional<FaultPlan> plan = injector_->plan_next_op();

  double ia = a, ib = b, ic = c;
  bool pre_mutated = false;
  if (plan) {
    switch (plan->fault_class) {
      case FaultClass::kPoison:
        // Ineffective poison (NaN over NaN, inf over the same inf) must
        // not replace the value at all: on the native substrate a
        // replacement would swap the hardware's NaN bit pattern for the
        // plan's and change the downstream value stream even though the
        // site is recorded inert — breaking control-trial bit-identity
        // with the clean baseline. same_value (NaN-canonical) keeps the
        // effectiveness decision substrate-independent.
        if (plan->poison_operand) {
          pre_mutated = !same_value(ia, plan->poison_value);
          if (pre_mutated) ia = plan->poison_value;
        }
        break;
      case FaultClass::kForceFtz:
        // DAZ half: subnormal operands read as (signed) zero.
        if (is_subnormal(ia)) {
          ia = std::copysign(0.0, ia);
          pre_mutated = true;
        }
        if (is_subnormal(ib)) {
          ib = std::copysign(0.0, ib);
          pre_mutated = true;
        }
        if (is_subnormal(ic)) {
          ic = std::copysign(0.0, ic);
          pre_mutated = true;
        }
        break;
      default:
        break;
    }
  }

  const double raw = forward(op, e, ia, ib, ic);
  double r = raw;

  if (plan) {
    switch (plan->fault_class) {
      case FaultClass::kPoison:
        if (plan->poison_operand) {
          injector_->note_applied(a, ia, pre_mutated);
        } else {
          const bool eff = !same_value(raw, plan->poison_value);
          if (eff) r = plan->poison_value;
          injector_->note_applied(raw, r, eff);
        }
        break;
      case FaultClass::kForceFtz:
        // FTZ half: a subnormal result flushes to (signed) zero.
        if (is_subnormal(r)) r = std::copysign(0.0, r);
        injector_->note_applied(raw, r,
                                pre_mutated || !bits_equal(raw, r));
        break;
      case FaultClass::kBitFlip:
        r = flip_mantissa_bit(raw, plan->bit_index);
        injector_->note_applied(raw, r, !bits_equal(raw, r));
        break;
      case FaultClass::kFlagSwallow:
      case FaultClass::kRoundingPerturb:
        // Sticky classes: arming recorded the site; effectiveness is
        // reported by the sticky pass when something actually changes.
        injector_->note_applied(raw, raw, false);
        break;
    }
  }

  return sticky_pass(op, injector_->last_op_tag(), ia, ib, ic, r,
                     /*recomputable=*/!plan ||
                         plan->fault_class == FaultClass::kRoundingPerturb);
}

double InjectingEvaluator::sticky_pass(Op op, std::uint64_t tag, double a,
                                       double b, double c, double r,
                                       bool recomputable) {
  if (const auto mode = injector_->perturb_rounding();
      mode.has_value() && recomputable) {
    const double perturbed = recompute_rounded(op, a, b, c, *mode);
    // NaN-canonical on purpose: rounding direction never changes whether
    // an operation manufactures a NaN, only which representable neighbor
    // a finite result lands on — so a recompute that differs from r only
    // in NaN bit pattern (native 0xFFF8... vs softfloat 0x7FF8...) is NOT
    // a perturbation and must not replace the substrate's own NaN.
    if (!same_value(perturbed, r)) {
      injector_->note_perturbed();
      r = perturbed;
    }
  }

  if (!mon::FlowMonitor::thread_active()) {
    swallow_flags();
    return r;
  }
  // Flow emission. The flag samples bracket swallow_flags() so an armed
  // swallow shows as sticky bits VANISHING between two samples of the
  // same tag — a single post-op sample could never see raise-then-eat
  // inside one op window. The op event uses the operands the op actually
  // consumed and the FINAL result (post poison/flip/FTZ/perturb), which
  // is what downstream ops will ingest.
  mon::FlowMonitor::on_flag_sample(tag, sampled_sticky_flags());
  swallow_flags();
  mon::FlowMonitor::on_flag_sample(tag, sampled_sticky_flags());
  const unsigned operand_count = op == Op::kSqrt ? 1u
                                 : op == Op::kFma ? 3u
                                                  : 2u;
  mon::FlowMonitor::on_op(tag, a, b, c, operand_count, r);
  return r;
}

unsigned InjectingEvaluator::sampled_sticky_flags() {
  return flags_ != nullptr ? flags_->sticky_flags() : 0;
}

double InjectingEvaluator::recompute_rounded(Op op, double a, double b,
                                             double c,
                                             softfloat::Rounding mode) {
  // Recompute the operation in the perturbed rounding-direction attribute
  // through the softfloat binary64 engine; value-level perturbation only
  // — the inner evaluator's flag accounting for the nearest-even
  // execution stands (the leaked-mode bug changes results long before it
  // changes which flags are raised).
  softfloat::Env env(mode);
  using softfloat::from_native;
  using softfloat::to_native;
  const softfloat::Float64 fa = from_native(a);
  const softfloat::Float64 fb = from_native(b);
  switch (op) {
    case Op::kAdd:
      return to_native(softfloat::add(fa, fb, env));
    case Op::kSub:
      return to_native(softfloat::sub(fa, fb, env));
    case Op::kMul:
      return to_native(softfloat::mul(fa, fb, env));
    case Op::kDiv:
      return to_native(softfloat::div(fa, fb, env));
    case Op::kSqrt:
      return to_native(softfloat::sqrt(fa, env));
    case Op::kFma:
      return to_native(softfloat::fma(fa, fb, from_native(c), env));
  }
  return 0.0;
}

void InjectingEvaluator::swallow_flags() {
  const unsigned mask = injector_->swallow_mask();
  if (mask == 0 || flags_ == nullptr) return;
  const unsigned sticky = flags_->sticky_flags();
  if ((sticky & mask) == 0) return;
  flags_->override_sticky_flags(sticky & ~mask);
  injector_->note_swallowed(sticky & mask);
}

}  // namespace fpq::inject
