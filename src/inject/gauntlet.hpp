// fpq::inject — the detector gauntlet.
//
// Runs every workloads kernel probe under every fault class ON BOTH
// ARITHMETIC SUBSTRATES — the softfloat engine and the host FPU — and
// scores every detector fpqual ships:
//
//   * fpmon     — the sticky ConditionSet the monitored run reports,
//                 compared against the clean run's set (either direction:
//                 new conditions OR swallowed ones). On the native
//                 substrate this is a REAL fpmon::ScopedMonitor over the
//                 real FPU; on softfloat it is the harvested Env union.
//   * shadow    — per-call high-precision re-execution; fires when the
//                 primary result drifts from the shadow result beyond a
//                 threshold, or is exceptional when the shadow is not,
//   * interval  — per-call guaranteed enclosure; fires when the primary
//                 result escapes the enclosure or the enclosure blows up.
//
// Shadow and interval signals are evaluated per call against the SAME
// call of the clean baseline run of the SAME substrate, so a workload's
// inherent anomalies (the broken variants exist to have them) never count
// as detections — only firing the clean run did not fire counts. Trials
// whose campaign armed no effective fault are control trials; a detector
// firing on one is a false positive.
//
// One campaign identity drives both substrates: the (workload, class,
// trial) cell seed feeds the SAME CampaignConfig to a softfloat trial and
// a native trial, and the two must report identical sites_fingerprint()s
// — any disagreement lands in parity_mismatches, which a healthy run
// leaves empty. That cross-substrate identity is what licenses reading
// the softfloat and native matrix columns as the same experiment on two
// machines.
//
// Everything is a pure function of (GauntletConfig, workload catalogue):
// per-trial campaign seeds are splitmix64-derived from (seed, workload,
// class, trial), trials run as independent shards writing their own
// slots, and aggregation walks the slots in fixed order — so the coverage
// matrix and the full fault-site fingerprint are bit-identical at every
// thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fpmon/monitor.hpp"
#include "inject/fault.hpp"
#include "parallel/thread_pool.hpp"

namespace fpq::inject {

enum class Detector {
  kFpmon = 0,
  kShadow = 1,
  kInterval = 2,
  /// The flow-aware monitor (fpmon/flow.hpp): credits a detection ONLY
  /// when the flow ledger attributes the fault to a correct site — for
  /// poison faults the earliest signature-anomalous site must BE the
  /// injected site; for flag swallows the first observed swallow must lie
  /// at or after the armed site. Site-blind firing scores as a miss.
  kFpmonFlow = 3,
};
inline constexpr std::size_t kDetectorCount = 4;
/// The PR 5/6 detector set. The campaign fingerprint, the fired-bit
/// packing and the undetected-fault baseline are defined over these three
/// only, so adding detector columns can never change historic
/// fingerprints or the checked-in undetected baseline.
inline constexpr std::size_t kLegacyDetectorCount = 3;

/// "fpmon", "shadow", "interval", "fpmon-flow".
std::string detector_name(Detector d);

/// Which arithmetic engine executed the attacked kernel.
enum class Substrate { kSoftfloat = 0, kNative = 1 };
inline constexpr std::size_t kSubstrateCount = 2;

/// "softfloat", "native".
std::string substrate_name(Substrate s);

struct GauntletConfig {
  std::uint64_t seed = 0x1DFA;
  /// Trials per (workload, fault class) cell — each trial runs once per
  /// substrate under the same campaign seed.
  std::size_t trials = 6;
  /// Shadow detector: fire when |primary - shadow| / |shadow| exceeds
  /// this. Shadow re-seeds from the recorded bindings each call, so only
  /// within-call drift is visible: a sticky perturbed rounding mode biases
  /// every op the same way (≈ ops · ½ulp ≈ 5e-16 for a ~10-op call) while
  /// clean nearest-even error random-walks (≲ √ops · ½ulp ≈ 1.7e-16), and
  /// the threshold sits between the two.
  double shadow_relative_error = 4e-16;
  /// Shadow significand bits.
  unsigned shadow_precision = 192;
  /// Interval detector: fire when the enclosure's relative width exceeds
  /// this (in addition to firing on enclosure escape).
  double interval_wide = 1e-6;
};

/// One (fault class, detector) cell of a substrate's coverage matrix,
/// aggregated over all workloads and trials.
struct CellStats {
  std::size_t trials = 0;           ///< all trials scored for this cell
  std::size_t hits = 0;             ///< effective fault, detector fired
  std::size_t misses = 0;           ///< effective fault, detector silent
  std::size_t false_positives = 0;  ///< control trial, detector fired
  std::size_t controls = 0;         ///< trials with no effective fault
};

/// An effective fault NO detector saw — the gauntlet's real product.
struct MissRecord {
  std::string workload;
  Substrate substrate = Substrate::kSoftfloat;
  FaultClass fault_class = FaultClass::kPoison;
  std::size_t trial = 0;
  std::size_t effective_sites = 0;
};

/// Clean-probe contract verification, per substrate: the reduced-scale
/// probe must honor the same exception contract as the full workload, or
/// the baselines (and therefore the whole matrix) are meaningless.
struct ContractRow {
  std::string workload;
  Substrate substrate = Substrate::kSoftfloat;
  mon::ConditionSet observed;
  bool holds = false;
};

/// A (workload, class, trial) whose softfloat and native campaigns
/// reported different site fingerprints — a broken reproducibility
/// contract. A healthy gauntlet reports none.
struct ParityRecord {
  std::string workload;
  FaultClass fault_class = FaultClass::kPoison;
  std::size_t trial = 0;
  std::uint64_t softfloat_fingerprint = 0;
  std::uint64_t native_fingerprint = 0;
};

/// fpmon-flow attribution accounting over the classes whose faults leave
/// an exceptional-flow footprint (poison, flag-swallow), per substrate.
/// The acceptance bar: attributed/effective_trials ≥ 0.9 on poison
/// campaigns and control_anomalies == 0.
struct FlowScore {
  /// Effective poison trials (the attribution denominators/numerators).
  std::size_t poison_effective = 0;
  std::size_t poison_attributed = 0;
  /// Effective flag-swallow trials and those credited to the armed site.
  std::size_t swallow_effective = 0;
  std::size_t swallow_attributed = 0;
  /// Control trials scored, and signature-anomalous sites the flow
  /// ledger reported on them (must be zero: controls are bit-identical
  /// to the clean baseline).
  std::size_t control_trials = 0;
  std::size_t control_anomalies = 0;
};

struct GauntletResult {
  GauntletConfig config;
  /// cells[substrate][fault class][detector].
  std::array<
      std::array<std::array<CellStats, kDetectorCount>, kFaultClassCount>,
      kSubstrateCount>
      cells{};
  /// Effective-fault trials missed by every detector, in deterministic
  /// (workload, class, trial, substrate) order.
  std::vector<MissRecord> undetected;
  /// 2 rows per workload (softfloat first, then native).
  std::vector<ContractRow> contracts;
  /// Cross-substrate fingerprint disagreements; empty on a healthy run.
  std::vector<ParityRecord> parity_mismatches;
  std::size_t total_trials = 0;     ///< substrate runs (2 per campaign)
  std::size_t total_sites = 0;      ///< armed fault sites across all runs
  std::size_t total_effective = 0;  ///< effective fault sites
  /// Flow attribution accounting per substrate (fpmon-flow column).
  std::array<FlowScore, kSubstrateCount> flow_scores{};
  /// Platform capabilities the monitors ran with — surfaced so CI logs
  /// explain platform-dependent coverage gaps instead of leaving them
  /// implicit. tracks_denormals gates the kDenorm condition (MXCSR DE
  /// bit); trap_available reports whether FE-trap mode could have been
  /// armed at all (the gauntlet itself scores the portable sampling
  /// mode).
  bool tracks_denormals = false;
  bool trap_available = false;
  /// Content hash over every trial's fault-site list and every LEGACY
  /// detector cell — the bit-reproducibility witness, deliberately
  /// invariant under adding detector columns (see kLegacyDetectorCount).
  std::uint64_t fingerprint = 0;

  /// Whether any detector ever caught this fault class on this substrate
  /// (row not all-miss).
  bool class_covered(Substrate s, FaultClass c) const noexcept;
  /// Covered on every substrate.
  bool class_covered(FaultClass c) const noexcept;
};

/// Runs the full campaign. Deterministic for a fixed config at any
/// thread count.
GauntletResult run_gauntlet(parallel::ThreadPool& pool,
                            const GauntletConfig& config = {});

/// Per-substrate coverage matrices + contract table + parity verdict +
/// undetected-fault list as text.
std::string render(const GauntletResult& result);

}  // namespace fpq::inject
