// fpq::inject — the fault-injecting evaluator decorator.
//
// InjectingEvaluator wraps any ir::Evaluator<double> working in binary64
// and applies an Injector's campaign to its operation stream: operands
// are mutated before the inner evaluator sees them, results after it
// produced them, and — when the inner evaluator exposes ir::FlagControl —
// sticky exception flags are tampered with in place. The wrapped
// evaluator cannot tell it is being lied to, which is exactly the threat
// model: the detectors downstream get no hint either.
//
// Injectable operations are the value-producing arithmetic ops (add, sub,
// mul, div, sqrt, fma). neg and the comparisons pass through un-mutated
// (they still feel sticky flag swallowing); constants and variable reads
// are not operations.
//
// Site numbering assumes every source-level operation executes in tree
// order, which the reference tree walk and an exact_trace() tape provide
// verbatim; a CSE/folded tape would silently mis-number sites, so the
// context decorators (context.hpp) guard against it with TapeTraceError.
//
// The two sticky fault classes touch substrate-specific machinery —
// flag swallowing erases the evaluator's sticky exception state, rounding
// perturbation recomputes a result under a leaked rounding mode — so both
// are protected virtual hooks. The base class implements the softfloat
// substrate (FlagControl tampering, softfloat binary64 recompute);
// NativeInjectingEvaluator (context.hpp) overrides them with real
// feclearexcept / fesetround against the host FPU. Arming, value-level
// mutation and effectiveness accounting stay in the base class, which is
// what makes the two substrates draw identical campaigns.
//
// Binary64 only: rounding-mode perturbation recomputes operations in
// binary64, so wrapping a narrower-format evaluator would perturb in the
// wrong format. The gauntlet wraps ir::SoftEvaluator<64> and
// ir::NativeEvaluator64.
#pragma once

#include "inject/fault.hpp"
#include "ir/evaluator.hpp"

namespace fpq::inject {

class InjectingEvaluator : public ir::Evaluator<double> {
 public:
  /// `inner` must outlive this evaluator and evaluate in binary64.
  /// Flag-swallow faults require the inner evaluator to implement
  /// ir::FlagControl (discovered via dynamic_cast); without it they are
  /// inert and the campaign degrades to control trials.
  InjectingEvaluator(ir::Evaluator<double>& inner, Injector& injector);

  double constant(const ir::Expr& e) override;
  double variable(const ir::Expr& e, double bound) override;
  double neg(const ir::Expr& e, const double& a) override;
  double add(const ir::Expr& e, const double& a, const double& b) override;
  double sub(const ir::Expr& e, const double& a, const double& b) override;
  double mul(const ir::Expr& e, const double& a, const double& b) override;
  double div(const ir::Expr& e, const double& a, const double& b) override;
  double sqrt(const ir::Expr& e, const double& a) override;
  double fma(const ir::Expr& e, const double& a, const double& b,
             const double& c) override;
  double cmp_eq(const ir::Expr& e, const double& a,
                const double& b) override;
  double cmp_lt(const ir::Expr& e, const double& a,
                const double& b) override;

 protected:
  enum class Op { kAdd, kSub, kMul, kDiv, kSqrt, kFma };

  /// Substrate hook for the sticky kFlagSwallow class: when the campaign
  /// has a swallow mask armed, erase whatever sticky exception state the
  /// substrate carries and report the eaten bits (softfloat Flag bits)
  /// via injector().note_swallowed(). The base class tampers with the
  /// inner evaluator's ir::FlagControl.
  virtual void swallow_flags();

  /// Substrate hook for the sticky kRoundingPerturb class: recompute the
  /// operation under the perturbed rounding-direction attribute and
  /// return the result. Value-level only — the hook must leave the
  /// substrate's exception-flag accounting exactly as it found it (the
  /// leaked-mode bug changes results long before it changes flags). The
  /// base class recomputes through the softfloat binary64 engine.
  virtual double recompute_rounded(Op op, double a, double b, double c,
                                   softfloat::Rounding mode);

  /// Substrate hook for flow monitoring: the CURRENT sticky exception
  /// state as softfloat Flag bits, read without modifying anything. The
  /// base class reads the inner evaluator's ir::FlagControl; the native
  /// substrate overrides with fetestexcept + the MXCSR DE bit. Sampled
  /// immediately before AND after swallow_flags() so a swallow shows up
  /// as sticky bits vanishing between two samples of the same site.
  virtual unsigned sampled_sticky_flags();

  Injector& injector() noexcept { return *injector_; }

 private:
  double inject(Op op, const ir::Expr& e, double a, double b, double c);
  double forward(Op op, const ir::Expr& e, double a, double b, double c);
  /// Applies the sticky classes (rounding recompute, flag swallowing)
  /// that act on EVERY operation once armed, emitting pre/post-swallow
  /// flow flag samples at `tag` when a FlowMonitor is live.
  double sticky_pass(Op op, std::uint64_t tag, double a, double b,
                     double c, double r, bool recomputable);
  /// neg/cmp passthrough: swallow + flow emission under an aux tag.
  double observe_passthrough(double a, double b, unsigned operand_count,
                             double r);

  ir::Evaluator<double>& inner_;
  ir::FlagControl* flags_;  // null when inner has no flag control
  Injector* injector_;
};

}  // namespace fpq::inject
