// fpq::inject — the fault-injecting evaluator decorator.
//
// InjectingEvaluator wraps any ir::Evaluator<double> working in binary64
// and applies an Injector's campaign to its operation stream: operands
// are mutated before the inner evaluator sees them, results after it
// produced them, and — when the inner evaluator exposes ir::FlagControl —
// sticky exception flags are tampered with in place. The wrapped
// evaluator cannot tell it is being lied to, which is exactly the threat
// model: the detectors downstream get no hint either.
//
// Injectable operations are the value-producing arithmetic ops (add, sub,
// mul, div, sqrt, fma). neg and the comparisons pass through un-mutated
// (they still feel sticky flag swallowing); constants and variable reads
// are not operations.
//
// Binary64 only: rounding-mode perturbation recomputes operations through
// the softfloat binary64 engine, so wrapping a narrower-format evaluator
// would perturb in the wrong format. The gauntlet always wraps
// ir::SoftEvaluator<64>.
#pragma once

#include "inject/fault.hpp"
#include "ir/evaluator.hpp"

namespace fpq::inject {

class InjectingEvaluator final : public ir::Evaluator<double> {
 public:
  /// `inner` must outlive this evaluator and evaluate in binary64.
  /// Flag-swallow faults require the inner evaluator to implement
  /// ir::FlagControl (discovered via dynamic_cast); without it they are
  /// inert and the campaign degrades to control trials.
  InjectingEvaluator(ir::Evaluator<double>& inner, Injector& injector);

  double constant(const ir::Expr& e) override;
  double variable(const ir::Expr& e, double bound) override;
  double neg(const ir::Expr& e, const double& a) override;
  double add(const ir::Expr& e, const double& a, const double& b) override;
  double sub(const ir::Expr& e, const double& a, const double& b) override;
  double mul(const ir::Expr& e, const double& a, const double& b) override;
  double div(const ir::Expr& e, const double& a, const double& b) override;
  double sqrt(const ir::Expr& e, const double& a) override;
  double fma(const ir::Expr& e, const double& a, const double& b,
             const double& c) override;
  double cmp_eq(const ir::Expr& e, const double& a,
                const double& b) override;
  double cmp_lt(const ir::Expr& e, const double& a,
                const double& b) override;

 private:
  enum class Op { kAdd, kSub, kMul, kDiv, kSqrt, kFma };

  double inject(Op op, const ir::Expr& e, double a, double b, double c);
  double forward(Op op, const ir::Expr& e, double a, double b, double c);
  /// Applies the sticky classes (rounding recompute, flag swallowing)
  /// that act on EVERY operation once armed.
  double sticky_pass(Op op, double a, double b, double c, double r,
                     bool recomputable);
  void swallow_flags();

  ir::Evaluator<double>& inner_;
  ir::FlagControl* flags_;  // null when inner has no flag control
  Injector* injector_;
};

}  // namespace fpq::inject
