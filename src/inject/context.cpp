#include "inject/context.hpp"

#include <cfenv>
#include <string>

#include "fpmon/hardware.hpp"
#include "ir/native_ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::inject {

unsigned fenv_to_softfloat_flags(int excepts,
                                 bool denormal_operand) noexcept {
  unsigned f = 0;
  if ((excepts & FE_INVALID) != 0) f |= softfloat::kFlagInvalid;
  if ((excepts & FE_DIVBYZERO) != 0) f |= softfloat::kFlagDivByZero;
  if ((excepts & FE_OVERFLOW) != 0) f |= softfloat::kFlagOverflow;
  if ((excepts & FE_UNDERFLOW) != 0) f |= softfloat::kFlagUnderflow;
  if ((excepts & FE_INEXACT) != 0) f |= softfloat::kFlagInexact;
  if (denormal_operand) f |= softfloat::kFlagDenormalInput;
  return f;
}

int softfloat_flags_to_fenv(unsigned flags) noexcept {
  int e = 0;
  if ((flags & softfloat::kFlagInvalid) != 0) e |= FE_INVALID;
  if ((flags & softfloat::kFlagDivByZero) != 0) e |= FE_DIVBYZERO;
  if ((flags & softfloat::kFlagOverflow) != 0) e |= FE_OVERFLOW;
  if ((flags & softfloat::kFlagUnderflow) != 0) e |= FE_UNDERFLOW;
  if ((flags & softfloat::kFlagInexact) != 0) e |= FE_INEXACT;
  return e;
}

namespace {

std::string tape_options_string(const ir::TapeOptions& o) {
  return std::string("cse=") + (o.cse ? "on" : "off") +
         ", fold_constants=" + (o.fold_constants ? "on" : "off");
}

/// Maps a perturbed rounding-direction attribute onto its fenv encoding;
/// -1 when the attribute has none (roundTiesToAway) or the platform lacks
/// the macro.
int fenv_rounding(softfloat::Rounding mode) noexcept {
  switch (mode) {
    case softfloat::Rounding::kNearestEven:
#ifdef FE_TONEAREST
      return FE_TONEAREST;
#else
      return -1;
#endif
    case softfloat::Rounding::kTowardZero:
#ifdef FE_TOWARDZERO
      return FE_TOWARDZERO;
#else
      return -1;
#endif
    case softfloat::Rounding::kDown:
#ifdef FE_DOWNWARD
      return FE_DOWNWARD;
#else
      return -1;
#endif
    case softfloat::Rounding::kUp:
#ifdef FE_UPWARD
      return FE_UPWARD;
#else
      return -1;
#endif
    case softfloat::Rounding::kNearestAway:
      return -1;  // no fenv encoding exists
  }
  return -1;
}

/// RAII snapshot of the complete floating-point environment — rounding
/// mode, sticky exception flags, and (on x86) the raw MXCSR including the
/// DE bit — restored on destruction, so any excursion inside the scope is
/// invisible afterwards no matter how the scope exits.
class FenvSnapshot {
 public:
  FenvSnapshot() noexcept {
    std::fegetenv(&env_);
    if (mon::mxcsr_supported()) mxcsr_ = mon::read_mxcsr();
  }
  ~FenvSnapshot() {
    std::fesetenv(&env_);
    // Explicit MXCSR restore after fesetenv: on targets whose fenv_t
    // does not carry MXCSR this is the only thing restoring DE.
    if (mon::mxcsr_supported()) mon::write_mxcsr(mxcsr_);
  }
  FenvSnapshot(const FenvSnapshot&) = delete;
  FenvSnapshot& operator=(const FenvSnapshot&) = delete;

 private:
  std::fenv_t env_;
  std::uint32_t mxcsr_ = 0;
};

/// RAII rounding-mode guard: saves fegetround() and restores it on every
/// exit path. Flags are deliberately NOT restored — an injected run's
/// flag damage is the fault model's observable product.
class ScopedRounding {
 public:
  ScopedRounding() noexcept : mode_(std::fegetround()) {}
  ~ScopedRounding() {
    if (mode_ >= 0) std::fesetround(mode_);
  }
  ScopedRounding(const ScopedRounding&) = delete;
  ScopedRounding& operator=(const ScopedRounding&) = delete;

 private:
  int mode_;
};

}  // namespace

TapeTraceError::TapeTraceError(std::uint64_t tape_fingerprint,
                               const ir::TapeOptions& options)
    : std::runtime_error(
          "injected campaign handed a non-exact-trace tape (fingerprint " +
          std::to_string(tape_fingerprint) + ", " +
          tape_options_string(options) +
          "): fault-site numbering requires TapeOptions::exact_trace()"),
      fingerprint_(tape_fingerprint),
      options_(options) {}

double SoftContext::call(const ir::Expr& expr,
                         std::span<const double> bindings) {
  const std::shared_ptr<const ir::Tape> tape = ir::Tape::cached(expr, {});
  const ir::Outcome out = ir::execute(*tape, bindings);
  flags_ |= out.flags;
  return softfloat::to_native(out.value);
}

SoftInjectingContext::SoftInjectingContext(Injector& injector)
    : soft_(ir::EvalConfig::ieee_strict()),
      inj_(soft_, injector),
      injector_(&injector) {}

double SoftInjectingContext::call(const ir::Expr& expr,
                                  std::span<const double> bindings) {
  injector_->begin_call();
  return ir::evaluate_tree<double>(expr, inj_, bindings);
}

NativeInjectingEvaluator::NativeInjectingEvaluator(
    ir::Evaluator<double>& inner, Injector& injector)
    : InjectingEvaluator(inner, injector) {}

void NativeInjectingEvaluator::swallow_flags() {
  const unsigned mask = injector().swallow_mask();
  if (mask == 0) return;
  const bool track_de =
      mon::mxcsr_supported() && (mask & softfloat::kFlagDenormalInput) != 0;
  const unsigned sticky = fenv_to_softfloat_flags(
      std::fetestexcept(FE_ALL_EXCEPT),
      track_de && mon::denormal_operand_seen());
  const unsigned eaten = sticky & mask;
  if (eaten == 0) return;
  std::feclearexcept(softfloat_flags_to_fenv(eaten));
  if ((eaten & softfloat::kFlagDenormalInput) != 0) {
    mon::write_mxcsr(mon::read_mxcsr() & ~mon::kMxcsrFlagDenormal);
  }
  injector().note_swallowed(eaten);
}

unsigned NativeInjectingEvaluator::sampled_sticky_flags() {
  // Read-only harvest of the real sticky state, in the Injector's flag
  // vocabulary. fetestexcept and the MXCSR read touch nothing.
  return fenv_to_softfloat_flags(
      std::fetestexcept(FE_ALL_EXCEPT),
      mon::mxcsr_supported() && mon::denormal_operand_seen());
}

double NativeInjectingEvaluator::recompute_rounded(
    Op op, double a, double b, double c, softfloat::Rounding mode) {
  const int fe_mode = fenv_rounding(mode);
  if (fe_mode < 0) {
    // roundTiesToAway (or a platform without the macro): the softfloat
    // engine's correctly-rounded binary64 recompute produces the value
    // the hardware would have, and touches no fenv state at all.
    return InjectingEvaluator::recompute_rounded(op, a, b, c, mode);
  }
  // The snapshot makes the excursion value-only: the perturbed-mode
  // recompute raises real flags and leaves a real rounding mode behind,
  // and the destructor erases both before the result is even returned —
  // matching the softfloat base class's contract that the nearest-even
  // execution's flag accounting stands.
  FenvSnapshot snapshot;
  std::fesetround(fe_mode);
  switch (op) {
    case Op::kAdd:
      return ir::native::add64(a, b);
    case Op::kSub:
      return ir::native::sub64(a, b);
    case Op::kMul:
      return ir::native::mul64(a, b);
    case Op::kDiv:
      return ir::native::div64(a, b);
    case Op::kSqrt:
      return ir::native::sqrt64(a);
    case Op::kFma:
      return ir::native::fma64(a, b, c);
  }
  return 0.0;
}

NativeInjectingContext::NativeInjectingContext(Injector& injector)
    : inj_(native_, injector), injector_(&injector) {}

NativeInjectingContext::NativeInjectingContext(Injector& injector,
                                               const ir::TapeOptions& options)
    : inj_(native_, injector), injector_(&injector), options_(options) {}

double NativeInjectingContext::call(const ir::Expr& expr,
                                    std::span<const double> bindings) {
  const std::shared_ptr<const ir::Tape> tape =
      ir::Tape::cached(expr, {}, options_);
  if (tape->options() != ir::TapeOptions::exact_trace()) {
    // Guard BEFORE begin_call so a refused tape does not advance the
    // campaign's call counter.
    throw TapeTraceError(tape->fingerprint(), tape->options());
  }
  ScopedRounding guard;
  injector_->begin_call();
  return ir::run_tape<double>(*tape, inj_, bindings);
}

}  // namespace fpq::inject
