// fpq::inject — umbrella header: deterministic fault injection and the
// detector gauntlet. See docs/inject.md for the fault model and the
// campaign-reproducibility contract.
#pragma once

#include "inject/evaluator.hpp"  // IWYU pragma: export
#include "inject/fault.hpp"      // IWYU pragma: export
#include "inject/gauntlet.hpp"   // IWYU pragma: export
