// fpq::inject — injecting contexts at the workloads::EvalContext seam.
//
// The evaluator decorator (evaluator.hpp) attacks ONE expression
// evaluation; kernels are many evaluations. This header supplies the
// per-run plumbing: EvalContext implementations that thread a single
// Injector through every call of a kernel, one per substrate, so the SAME
// campaign — same (seed, CampaignConfig), same (call, op) site numbering,
// same sites_fingerprint() — attacks either arithmetic engine:
//
//   * SoftInjectingContext — the softfloat engine. One persistent
//     SoftEvaluator<64> carries the run-wide sticky flag union, mirroring
//     how real hardware's fenv accumulates across a whole kernel run; its
//     observed() is the run-level ConditionSet the fpmon detector scores.
//
//   * NativeInjectingContext — the host FPU, for kernels executing under
//     fpmon hardware monitoring. Faults stop being simulations here:
//     flag-swallow calls real feclearexcept (plus the MXCSR DE bit),
//     rounding-perturb recomputes under real fesetround, and every fenv
//     excursion is saved/restored exception-safely so the only persistent
//     fenv damage is the damage the fault MODEL specifies (eaten flags),
//     never collateral (leaked rounding modes, phantom flags).
//
// Both substrates walk kernels in the tree-visit operation order the
// Injector numbers sites by: the softfloat context uses the reference
// tree walk, the native context runs TapeOptions::exact_trace() tapes
// (whose run_tape hook sequence is the tree walk's verbatim). Handing the
// native context a CSE/folded tape would silently mis-number sites, so it
// refuses with TapeTraceError instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "fpmon/monitor.hpp"
#include "inject/evaluator.hpp"
#include "inject/fault.hpp"
#include "ir/evaluators.hpp"
#include "ir/tape.hpp"
#include "workloads/workloads.hpp"

namespace fpq::inject {

/// Maps C99 fenv sticky exception bits (a fetestexcept result) plus the
/// x86 MXCSR denormal-operand bit onto softfloat Flag bits, so native
/// observations speak the Injector's flag vocabulary.
unsigned fenv_to_softfloat_flags(int excepts, bool denormal_operand) noexcept;

/// Inverse of the fenv half of the mapping: softfloat Flag bits to the
/// FE_* excepts mask (kFlagDenormalInput has no fenv bit and is dropped;
/// the MXCSR DE bit is handled separately).
int softfloat_flags_to_fenv(unsigned flags) noexcept;

/// Thrown when an injected campaign is handed a tape whose options are
/// not TapeOptions::exact_trace(). CSE/folding elide and reorder
/// operations, so running an injector over such a tape would arm sites at
/// the wrong (call, op) coordinates — silently, since the campaign would
/// still "work". Structured so callers can report exactly which tape was
/// refused.
class TapeTraceError : public std::runtime_error {
 public:
  TapeTraceError(std::uint64_t tape_fingerprint,
                 const ir::TapeOptions& options);

  std::uint64_t tape_fingerprint() const noexcept { return fingerprint_; }
  const ir::TapeOptions& tape_options() const noexcept { return options_; }

 private:
  std::uint64_t fingerprint_ = 0;
  ir::TapeOptions options_;
};

/// One recorded kernel call: what was evaluated, with which bindings, and
/// what came back. The per-call detectors (shadow, interval) re-execute
/// from these.
struct CallRecord {
  ir::Expr expr;
  std::vector<double> bindings;
  double result = 0.0;
};

/// Transparent recording decorator: forwards every call to an inner
/// context and keeps the CallRecord stream. Composes over any substrate
/// (clean or injecting), which is how the gauntlet captures call-aligned
/// streams for baseline-vs-injected comparison.
class RecordingContext final : public workloads::EvalContext {
 public:
  explicit RecordingContext(workloads::EvalContext& inner)
      : inner_(&inner) {}

  double call(const ir::Expr& expr,
              std::span<const double> bindings) override {
    const double r = inner_->call(expr, bindings);
    records_.push_back(
        {expr, std::vector<double>(bindings.begin(), bindings.end()), r});
    return r;
  }

  const std::vector<CallRecord>& records() const noexcept {
    return records_;
  }

 private:
  workloads::EvalContext* inner_;
  std::vector<CallRecord> records_;
};

/// Clean softfloat context: the softfloat analogue of
/// workloads::NativeContext, executing compiled tapes on the scalar
/// softfloat engine and accumulating the run-wide sticky flag union.
/// observed() is what a ScopedMonitor would have reported had the run
/// been native — the clean fpmon baseline for softfloat trials.
class SoftContext final : public workloads::EvalContext {
 public:
  double call(const ir::Expr& expr,
              std::span<const double> bindings) override;

  mon::ConditionSet observed() const noexcept {
    return mon::ConditionSet::from_softfloat_flags(flags_);
  }

 private:
  unsigned flags_ = 0;
};

/// Softfloat injecting context: one Injector, one persistent
/// SoftEvaluator<64> across every call of the run. Persistence matters —
/// the sticky flag union (and therefore what a flag-swallow fault finds
/// to eat) spans the whole run, exactly like the native substrate's fenv,
/// so the two substrates agree on which sticky sites were effective.
/// Walks the reference tree walk, whose visit order defines site
/// numbering.
class SoftInjectingContext final : public workloads::EvalContext {
 public:
  /// `injector` must outlive the context; one context serves one run.
  explicit SoftInjectingContext(Injector& injector);

  double call(const ir::Expr& expr,
              std::span<const double> bindings) override;

  /// Run-level condition union as the campaign left it (post-swallowing).
  mon::ConditionSet observed() const noexcept {
    return mon::ConditionSet::from_softfloat_flags(soft_.flags());
  }

 private:
  ir::SoftEvaluator<64> soft_;
  InjectingEvaluator inj_;
  Injector* injector_;
};

/// The native substrate's sticky-class hooks: flag swallowing erases the
/// REAL fenv sticky bits (feclearexcept + the MXCSR DE bit), and rounding
/// perturbation recomputes under a REAL fesetround — with the entire fenv
/// snapshot restored before the hook returns, so the perturbation is
/// value-only exactly like the softfloat base class. roundTiesToAway has
/// no fenv encoding; that mode recomputes through the softfloat engine,
/// which produces the identical correctly-rounded binary64 value.
class NativeInjectingEvaluator : public InjectingEvaluator {
 public:
  NativeInjectingEvaluator(ir::Evaluator<double>& inner,
                           Injector& injector);

 protected:
  void swallow_flags() override;
  double recompute_rounded(Op op, double a, double b, double c,
                           softfloat::Rounding mode) override;
  /// Flow-monitoring sample of the REAL sticky state: fetestexcept plus
  /// the MXCSR DE bit, mapped to softfloat Flag bits. Read-only.
  unsigned sampled_sticky_flags() override;
};

/// Host-FPU injecting context: the tentpole. Runs kernels on the real FPU
/// through NativeEvaluator64 under the injector's campaign, so an
/// enclosing fpmon::ScopedMonitor observes the faults' genuine hardware
/// footprint. Each call saves the rounding mode on entry and restores it
/// on every exit path (including exceptions thrown mid-kernel); the
/// sticky exception flags a swallow fault ate stay eaten — that IS the
/// injected bug — but nothing else leaks.
class NativeInjectingContext final : public workloads::EvalContext {
 public:
  /// `injector` must outlive the context; one context serves one run.
  explicit NativeInjectingContext(Injector& injector);

  /// Test seam for the exact-trace guard: a context built with options
  /// other than TapeOptions::exact_trace() throws TapeTraceError on the
  /// first call instead of silently mis-numbering fault sites.
  NativeInjectingContext(Injector& injector,
                         const ir::TapeOptions& options);

  double call(const ir::Expr& expr,
              std::span<const double> bindings) override;

 private:
  ir::NativeEvaluator64 native_;
  NativeInjectingEvaluator inj_;
  Injector* injector_;
  ir::TapeOptions options_ = ir::TapeOptions::exact_trace();
};

}  // namespace fpq::inject
