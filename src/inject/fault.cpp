#include "inject/fault.hpp"

#include <array>
#include <bit>
#include <limits>

#include "stats/prng.hpp"

namespace fpq::inject {

std::string fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kPoison:
      return "poison";
    case FaultClass::kFlagSwallow:
      return "flag-swallow";
    case FaultClass::kForceFtz:
      return "force-ftz";
    case FaultClass::kRoundingPerturb:
      return "rounding-perturb";
    case FaultClass::kBitFlip:
      return "bit-flip";
  }
  return "unknown";
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  return stats::splitmix64_next(s);
}

/// The per-site generator: a pure function of (seed, call, op).
stats::Xoshiro256pp site_rng(std::uint64_t seed, std::uint64_t call,
                             std::uint64_t op) noexcept {
  return stats::Xoshiro256pp(mix(mix(seed, call), op));
}

constexpr std::array<softfloat::Rounding, 4> kPerturbModes{
    softfloat::Rounding::kTowardZero, softfloat::Rounding::kDown,
    softfloat::Rounding::kUp, softfloat::Rounding::kNearestAway};

}  // namespace

std::uint64_t canonical_value_bits(double x) noexcept {
  // Canonical quiet NaN for binary64: positive sign, quiet bit, zero
  // payload. Everything else (including infinities and signed zeros)
  // keeps its exact bits.
  constexpr std::uint64_t kCanonicalNaN = 0x7FF8000000000000ULL;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t magnitude = bits & 0x7FFFFFFFFFFFFFFFULL;
  const bool is_nan = magnitude > 0x7FF0000000000000ULL;
  return is_nan ? kCanonicalNaN : bits;
}

bool same_value(double a, double b) noexcept {
  return canonical_value_bits(a) == canonical_value_bits(b);
}

std::uint64_t sites_fingerprint(std::span<const FaultSite> sites) noexcept {
  // Per-site hashes combine by addition so the fingerprint is a function
  // of the site SET, not of enumeration order.
  std::uint64_t h = 0xF417C0DE ^ sites.size();
  for (const FaultSite& s : sites) {
    std::uint64_t sh = mix(0, s.call);
    sh = mix(sh, s.op);
    sh = mix(sh, static_cast<std::uint64_t>(s.fault_class));
    sh = mix(sh, s.effective ? 1 : 0);
    sh = mix(sh, canonical_value_bits(s.original));
    sh = mix(sh, canonical_value_bits(s.injected));
    h += sh;
  }
  return h;
}

Injector::Injector(const CampaignConfig& config) : config_(config) {}

void Injector::begin_call() noexcept {
  ++call_;
  op_ = 0;
  aux_ = 0;
}

std::optional<FaultPlan> Injector::plan_next_op() {
  // call_ is one-past (0 = begin_call never ran; treat as call 0).
  const std::uint64_t call = call_ == 0 ? 0 : call_ - 1;
  const std::uint64_t op = op_++;

  // Sticky classes arm once; the cap applies to every class.
  const bool sticky_armed = swallow_mask_ != 0 || perturb_.has_value();
  if (sticky_armed) return std::nullopt;
  if (config_.max_faults != 0 && sites_.size() >= config_.max_faults) {
    return std::nullopt;
  }

  stats::Xoshiro256pp rng = site_rng(config_.seed, call, op);
  if (stats::uniform01(rng) >= config_.rate) return std::nullopt;

  FaultPlan plan;
  plan.fault_class = config_.fault_class;
  switch (config_.fault_class) {
    case FaultClass::kPoison: {
      const std::uint64_t variant = stats::uniform_below(rng, 3);
      plan.poison_value =
          variant == 0 ? std::numeric_limits<double>::quiet_NaN()
          : variant == 1
              ? std::numeric_limits<double>::infinity()
              : -std::numeric_limits<double>::infinity();
      plan.poison_operand = stats::uniform_below(rng, 2) == 0;
      break;
    }
    case FaultClass::kBitFlip:
      plan.bit_index =
          8 + static_cast<unsigned>(stats::uniform_below(rng, 8));
      break;
    case FaultClass::kFlagSwallow:
      swallow_mask_ = softfloat::kFlagInvalid | softfloat::kFlagDivByZero |
                      softfloat::kFlagOverflow |
                      softfloat::kFlagUnderflow | softfloat::kFlagInexact |
                      softfloat::kFlagDenormalInput;
      sticky_site_ = sites_.size();
      break;
    case FaultClass::kRoundingPerturb:
      perturb_ = kPerturbModes[stats::uniform_below(rng, 4)];
      sticky_site_ = sites_.size();
      break;
    case FaultClass::kForceFtz:
      break;
  }

  FaultSite site;
  site.call = call;
  site.op = op;
  site.fault_class = config_.fault_class;
  sites_.push_back(site);
  return plan;
}

void Injector::note_applied(double original, double injected,
                            bool effective) {
  if (sites_.empty()) return;
  FaultSite& site = sites_.back();
  site.original = original;
  site.injected = injected;
  site.effective = effective;
}

void Injector::note_swallowed(unsigned bits) noexcept {
  swallowed_ |= bits;
  if (bits != 0 && sticky_site_ < sites_.size()) {
    sites_[sticky_site_].effective = true;
  }
}

void Injector::note_perturbed() noexcept {
  if (sticky_site_ < sites_.size()) {
    sites_[sticky_site_].effective = true;
  }
}

std::size_t Injector::effective_count() const noexcept {
  std::size_t n = 0;
  for (const FaultSite& s : sites_) n += s.effective ? 1 : 0;
  return n;
}

}  // namespace fpq::inject
