// fpq::mon — always-on monitoring for the streaming survey path.
//
// monitored_stream_accumulate() is parallel::stream_accumulate with a
// FlowMonitor wrapped around every chunk's fill on the worker thread that
// runs it. Each chunk produces a per-chunk FlowLedger alongside its
// accumulator; both merge through the SAME fixed-shape chunk-ordered tree
// (the ledger's merge-join is associative and commutative integer
// arithmetic), so the monitored result AND the flow report are
// bit-identical at 1/2/4/8 threads — provided the caller picks `chunks`
// as a pure function of the input size, never of the pool width.
//
// The per-chunk monitor also makes the chunk boundary a seam: each
// chunk's ledger carries exactly one seam sample holding the union of
// conditions the chunk's FP work raised (empty for pure-integer tally
// accumulators — itself a useful "nothing exceptional streamed past"
// witness).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "fpmon/flow.hpp"
#include "fpmon/hardware.hpp"
#include "parallel/stream.hpp"

namespace fpq::mon {

/// The merged result of a monitored streaming accumulation: the payload
/// accumulator plus the merged flow report.
template <typename Acc>
struct MonitoredAccumulation {
  Acc value;
  FlowReport flow;
};

namespace detail {

/// Composite accumulator threading a FlowLedger next to the payload so
/// the existing merge tree combines both in lockstep.
template <typename Acc>
struct FlowAccum {
  Acc inner;
  FlowLedger ledger;

  FlowAccum(Acc in, std::size_t max_sites)
      : inner(std::move(in)), ledger(max_sites) {}

  void merge(FlowAccum&& other) {
    inner.merge(std::move(other.inner));
    ledger.merge(std::move(other.ledger));
  }
};

}  // namespace detail

/// Drop-in monitored variant of parallel::stream_accumulate. Runs each
/// chunk's fill under a per-chunk FlowMonitor on the worker thread and
/// returns {merged accumulator, merged flow report}. The caller's
/// `make_acc`/`fill` are unchanged from the unmonitored call, so flipping
/// monitoring on is a one-line substitution at the call site.
///
/// Capability note: per-chunk monitors are sampling-mode only (trap mode
/// is a process-wide singleton and belongs to a single long-lived monitor,
/// not to N short-lived shard scopes); the report's capability reflects
/// the platform as probed on the merge (caller) thread.
template <typename MakeAcc, typename FillChunk>
auto monitored_stream_accumulate(parallel::ThreadPool& pool,
                                 std::size_t total, std::size_t chunks,
                                 const MakeAcc& make_acc,
                                 const FillChunk& fill,
                                 std::size_t max_sites =
                                     FlowLedger::kDefaultMaxSites)
    -> MonitoredAccumulation<
        std::remove_cvref_t<std::invoke_result_t<const MakeAcc&>>> {
  using Acc = std::remove_cvref_t<std::invoke_result_t<const MakeAcc&>>;
  using Flow = detail::FlowAccum<Acc>;

  Flow merged = parallel::stream_accumulate(
      pool, total, chunks,
      [&make_acc, max_sites] { return Flow(make_acc(), max_sites); },
      [&fill](Flow& acc, std::size_t begin, std::size_t end) {
        FlowReport chunk_report;
        monitor_flow([&] { fill(acc.inner, begin, end); }, chunk_report,
                     FlowOptions{.mode = FlowMode::kSampling,
                                 .max_sites = acc.ledger.max_sites()});
        acc.ledger.merge(std::move(chunk_report.ledger));
      });

  MonitoredAccumulation<Acc> out{std::move(merged.inner), FlowReport{}};
  out.flow.ledger = std::move(merged.ledger);
  out.flow.capability.trap_supported = trap_supported();
  out.flow.capability.tracks_denormals = mxcsr_supported();
  out.flow.conditions = out.flow.ledger.seam_conditions();
  return out;
}

}  // namespace fpq::mon
