#include "fpmon/hardware.hpp"

#if defined(__x86_64__) || defined(__SSE__)
#include <immintrin.h>
#define FPQ_HAVE_MXCSR 1
#else
#define FPQ_HAVE_MXCSR 0
#endif

namespace fpq::mon {

bool mxcsr_supported() noexcept { return FPQ_HAVE_MXCSR != 0; }

std::uint32_t read_mxcsr() noexcept {
#if FPQ_HAVE_MXCSR
  return _mm_getcsr();
#else
  return 0;
#endif
}

void write_mxcsr(std::uint32_t value) noexcept {
#if FPQ_HAVE_MXCSR
  _mm_setcsr(value);
#else
  (void)value;
#endif
}

bool flush_to_zero_enabled() noexcept {
  return mxcsr_supported() && (read_mxcsr() & kMxcsrFtz) != 0;
}

bool denormals_are_zero_enabled() noexcept {
  return mxcsr_supported() && (read_mxcsr() & kMxcsrDaz) != 0;
}

ScopedFlushMode::ScopedFlushMode(bool ftz, bool daz) noexcept {
  if (!mxcsr_supported()) return;
  saved_ = read_mxcsr();
  std::uint32_t next = saved_ & ~(kMxcsrFtz | kMxcsrDaz);
  if (ftz) next |= kMxcsrFtz;
  if (daz) next |= kMxcsrDaz;
  write_mxcsr(next);
  active_ = true;
}

ScopedFlushMode::~ScopedFlushMode() {
  if (active_) write_mxcsr(saved_);
}

void clear_mxcsr_flags() noexcept {
  if (!mxcsr_supported()) return;
  write_mxcsr(read_mxcsr() & ~kMxcsrAllFlags);
}

bool denormal_operand_seen() noexcept {
  return mxcsr_supported() && (read_mxcsr() & kMxcsrFlagDenormal) != 0;
}

}  // namespace fpq::mon
