// fpq::mon — low-level access to the host FPU's exception state.
//
// On x86 the SSE control/status register (MXCSR) carries both the sticky
// exception flags (including the DE "denormal operand" bit that C's fenv
// does not expose portably) and the non-standard FTZ/DAZ mode bits the
// paper's "Flush to Zero" question asks about. This header wraps the raw
// register with feature detection so the rest of fpmon stays portable.
#pragma once

#include <cstdint>

namespace fpq::mon {

/// True when this build can read/write MXCSR (x86 with SSE).
bool mxcsr_supported() noexcept;

/// Raw MXCSR value; 0 when unsupported.
std::uint32_t read_mxcsr() noexcept;

/// Writes MXCSR; no-op when unsupported.
void write_mxcsr(std::uint32_t value) noexcept;

// MXCSR bit positions (Intel SDM Vol. 1 §10.2.3).
inline constexpr std::uint32_t kMxcsrFlagInvalid = 1u << 0;
inline constexpr std::uint32_t kMxcsrFlagDenormal = 1u << 1;
inline constexpr std::uint32_t kMxcsrFlagDivByZero = 1u << 2;
inline constexpr std::uint32_t kMxcsrFlagOverflow = 1u << 3;
inline constexpr std::uint32_t kMxcsrFlagUnderflow = 1u << 4;
inline constexpr std::uint32_t kMxcsrFlagPrecision = 1u << 5;
inline constexpr std::uint32_t kMxcsrDaz = 1u << 6;
inline constexpr std::uint32_t kMxcsrFtz = 1u << 15;
inline constexpr std::uint32_t kMxcsrAllFlags = 0x3Fu;

/// Current FTZ / DAZ mode bits (false when MXCSR is unavailable).
bool flush_to_zero_enabled() noexcept;
bool denormals_are_zero_enabled() noexcept;

/// RAII guard that sets FTZ/DAZ for a scope and restores the previous
/// MXCSR on exit. Constructing on a non-x86 host is a harmless no-op;
/// check active() to know whether the request took effect.
class ScopedFlushMode {
 public:
  ScopedFlushMode(bool ftz, bool daz) noexcept;
  ~ScopedFlushMode();
  ScopedFlushMode(const ScopedFlushMode&) = delete;
  ScopedFlushMode& operator=(const ScopedFlushMode&) = delete;

  bool active() const noexcept { return active_; }

 private:
  std::uint32_t saved_ = 0;
  bool active_ = false;
};

/// Clears the MXCSR sticky exception flags (only; modes untouched).
void clear_mxcsr_flags() noexcept;

/// True when the DE (denormal operand) sticky bit is currently set.
bool denormal_operand_seen() noexcept;

}  // namespace fpq::mon
