// fpq::mon — the flow-aware, always-on exception monitor.
//
// ScopedMonitor (monitor.hpp) answers "which exceptional conditions
// occurred in this region?" — the paper's §V tool. FlowMonitor answers
// the question a production monitor needs next (FlowFPX, PAPERS.md):
// where exceptional values are BORN, how they PROPAGATE, and where they
// are KILLED (compared away, overwritten, flushed) — per site, cheaply
// enough to leave on under real traffic.
//
// Two acquisition modes, degrading gracefully and REPORTING the
// degradation as an explicit capability (never a silent gap):
//
//   * Sampling (portable, the default): instrumented seams — evaluator
//     op hooks, tape-engine chunk boundaries, stream_accumulate shard
//     boundaries — push value-class events and sticky-flag samples into
//     the per-thread monitor stack. Value classification is pure bit
//     inspection (std::bit_cast), so observing a value can never raise
//     the very flags being observed.
//
//   * Trap (glibc/x86-64/Linux): feenableexcept unmasks Invalid,
//     DivByZero and Overflow; the SIGFPE handler records (PC, condition)
//     into a lock-free per-thread event ring — no allocation, no locks,
//     async-signal-safe — then RE-MASKS the trapped kind in the
//     interrupted context's MXCSR/x87 control word so execution
//     continues: first-trap-per-kind semantics with a real fault PC.
//
// The flow ledger keys events by site tag, keeps integer counters only,
// and merges by tag-ordered join — associative and commutative — so
// ledgers collected on pool shards combine through the same fixed-shape
// tree merge as the survey accumulators and the merged report is
// bit-identical at 1/2/4/8 threads.
//
// Always-on duty means bounded memory: per-site detail is capped at
// FlowOptions::max_sites; overflow increments an explicit dropped-site
// counter in the summary instead of silently forgetting.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fpmon/monitor.hpp"

namespace fpq::mon {

/// IEEE value class of a binary64, read from the bit pattern only —
/// classifying a value must never perturb the FPU state being monitored.
enum class ValueClass : std::uint8_t {
  kFinite = 0,  ///< zero, subnormal or normal
  kPosInf = 1,
  kNegInf = 2,
  kNaN = 3,
};

ValueClass classify(double x) noexcept;
bool is_exceptional(ValueClass c) noexcept;
std::string value_class_name(ValueClass c);

/// Flow-site tags: the (call, op) coordinates of one operation in a
/// straight-line kernel, packed into the 64-bit ledger key. Arithmetic
/// ops use (call << 20) | op; non-arithmetic events (neg, comparisons)
/// are numbered by a separate per-call auxiliary counter and carry
/// kFlowAuxBit, so they never collide with — and always sort after — the
/// call's arithmetic sites. Kernel shapes here are tiny (ops per call
/// ≲ 35, calls ≲ thousands), so 19 op bits + aux bit + 44 call bits
/// never overflow.
inline constexpr std::uint64_t kFlowAuxBit = 1ull << 19;

constexpr std::uint64_t flow_tag(std::uint64_t call,
                                 std::uint64_t op) noexcept {
  return (call << 20) | op;
}

/// 8-bit operand/result class signature of one op event: operand slots in
/// bits 0-5 (2 bits each), result class in bits 6-7. Unused operand slots
/// read kFinite. Deterministic kernels produce the same signature for the
/// same site on every clean run, which is what lets a fault-attribution
/// pass diff an injected run's signatures against a clean baseline's.
std::uint8_t flow_signature(ValueClass a, ValueClass b, ValueClass c,
                            ValueClass result) noexcept;
bool signature_has_exceptional(std::uint8_t signature) noexcept;

/// Per-site flow counters. `signature` is the FIRST event's signature at
/// this tag (sites in straight-line kernels always repeat it).
struct SiteFlow {
  std::uint64_t tag = 0;
  std::uint8_t signature = 0;
  std::uint64_t events = 0;      ///< op events observed at this site
  std::uint64_t born = 0;        ///< exceptional result, clean operands
  std::uint64_t propagated = 0;  ///< exceptional result, exceptional operand
  std::uint64_t killed = 0;      ///< finite result, exceptional operand
  std::uint64_t swallows = 0;    ///< sticky flags vanished at this site
};

/// Whole-run flow totals (merge-additive).
struct FlowSummary {
  std::uint64_t ops = 0;
  std::uint64_t exceptional_ops = 0;  ///< any exceptional operand or result
  std::uint64_t born = 0;
  std::uint64_t propagated = 0;
  std::uint64_t killed = 0;
  std::uint64_t swallows = 0;
  std::uint64_t flag_samples = 0;
  std::uint64_t seam_samples = 0;
  std::uint64_t trap_events = 0;
  std::uint64_t dropped_sites = 0;  ///< events past the max_sites cap
};

/// One SIGFPE trap capture: the faulting instruction address and the
/// condition decoded from si_code. Recorded by the signal handler into a
/// fixed ring; drained into the ledger at stop().
struct TrapEvent {
  std::uintptr_t pc = 0;
  Condition condition = Condition::kInvalid;
};

/// The mergeable flow ledger: tag-sorted per-site counters + summary +
/// the union of seam-sampled conditions. All state is integer, so merge
/// order cannot change the result bit-for-bit.
class FlowLedger {
 public:
  explicit FlowLedger(std::size_t max_sites = kDefaultMaxSites);

  static constexpr std::size_t kDefaultMaxSites = 65536;

  /// Records one op event: operand classes (unused slots pass kFinite),
  /// result class, at site `tag`. Classifies born/propagated/killed.
  void record_op(std::uint64_t tag, ValueClass a, ValueClass b,
                 ValueClass c, ValueClass result);
  /// Records a sticky-flag sample (softfloat Flag bits) at site `tag`.
  /// A bit present in the previous sample but absent now is a SWALLOW —
  /// someone ate sticky state between the two samples.
  void record_flag_sample(std::uint64_t tag, unsigned sticky_flags);
  /// Records a seam harvest (chunk/shard boundary): the conditions are
  /// unioned, the sample counted.
  void record_seam(const ConditionSet& conditions);
  /// Batched seam record: `samples` harvests whose condition union is
  /// `conditions` (the FlowCollector drain path).
  void record_seam_batch(const ConditionSet& conditions,
                         std::uint64_t samples);
  /// Records one drained trap event.
  void record_trap(const TrapEvent& event);
  /// Accounts for trap-ring overflow: `lost` events counted but without
  /// per-event detail (reported, never silent).
  void note_lost_traps(std::uint64_t lost) noexcept;

  /// Tag-ordered merge-join; summary counters add, seam conditions union.
  /// Associative and commutative, so any merge tree over per-shard
  /// ledgers (with equal max_sites) produces identical bits.
  void merge(FlowLedger&& other);

  const std::vector<SiteFlow>& sites() const noexcept { return sites_; }
  /// Site entry at `tag`, or nullptr.
  const SiteFlow* site(std::uint64_t tag) const noexcept;
  const FlowSummary& summary() const noexcept { return summary_; }
  const ConditionSet& seam_conditions() const noexcept {
    return seam_conditions_;
  }
  const std::vector<TrapEvent>& trap_events() const noexcept {
    return traps_;
  }
  std::size_t max_sites() const noexcept { return max_sites_; }

  /// Content hash over sites, summary and seam conditions — the
  /// bit-reproducibility witness for thread-count identity tests. Trap
  /// events are deliberately excluded: their PCs are ASLR-run-local and
  /// their arrival depends on hardware trap timing, so a sampling run
  /// must fingerprint identically with and without trap capture.
  std::uint64_t fingerprint() const noexcept;

 private:
  SiteFlow* site_for(std::uint64_t tag);

  std::vector<SiteFlow> sites_;  // tag-sorted
  FlowSummary summary_;
  ConditionSet seam_conditions_;
  std::vector<TrapEvent> traps_;
  std::size_t max_sites_ = kDefaultMaxSites;
  unsigned last_flags_ = 0;
  bool have_flags_ = false;
};

/// Acquisition mode request.
enum class FlowMode {
  kSampling = 0,  ///< seam/hook sampling only (portable)
  kTrap = 1,      ///< require traps; degrade to sampling if unavailable
  kAuto = 2,      ///< traps when available, sampling otherwise
};

std::string flow_mode_name(FlowMode m);

struct FlowOptions {
  FlowMode mode = FlowMode::kSampling;
  std::size_t max_sites = FlowLedger::kDefaultMaxSites;
  /// Register as the process-wide seam collector (FlowCollector), so
  /// instrumented chunk boundaries on OTHER threads (tape engines, pool
  /// shards) contribute seam samples to this monitor. One collector at a
  /// time; a second concurrent request degrades with a reason.
  bool collect_seams = false;
};

/// What the platform actually delivered — reported, never inferred.
struct FlowCapability {
  bool trap_supported = false;   ///< platform could trap at all
  bool trap_active = false;      ///< this monitor's traps were live
  bool tracks_denormals = false; ///< MXCSR DE bit observable
  bool seam_collector = false;   ///< process-wide seam collection active
  std::string degradation;       ///< why a requested mode fell back; ""
};

/// A finished monitoring scope: the merged ledger plus the capability the
/// platform granted and the region's sticky ConditionSet.
struct FlowReport {
  FlowLedger ledger;
  FlowCapability capability;
  ConditionSet conditions;  ///< ScopedMonitor-harvested region conditions

  FlowReport() : ledger(FlowLedger::kDefaultMaxSites) {}
  std::uint64_t fingerprint() const noexcept;
};

/// Renders the ledger + capability matrix as text.
std::string render_flow_report(const FlowReport& report);

/// True when this build can arm FE traps (glibc feenableexcept + x86-64
/// ucontext layout + SIGFPE semantics this module understands).
bool trap_supported() noexcept;

/// Harvests the host's CURRENT sticky fenv/MXCSR state as a ConditionSet
/// without modifying anything — the read-only seam harvest.
ConditionSet current_fenv_conditions() noexcept;

/// RAII per-thread flow monitor. Nesting-safe: monitors form a per-thread
/// stack and every event is delivered to EVERY monitor on the stack, so
/// an outer monitor still observes flows inside inner scopes (the same
/// sticky discipline ScopedMonitor has). Contains a ScopedMonitor, so the
/// region's fenv state is cleared on entry and re-raised on stop — the
/// enclosing environment sees exactly what it would have seen unmonitored,
/// even when the monitored kernel throws.
class FlowMonitor {
 public:
  explicit FlowMonitor(const FlowOptions& options = {});
  ~FlowMonitor();
  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  /// Stops monitoring (idempotent): drains the trap ring, restores the
  /// signal disposition and exception masks, harvests the final seam
  /// sample, and freezes the report.
  const FlowReport& stop() noexcept;

  const FlowCapability& capability() const noexcept { return capability_; }

  // -- static emission fast paths (no-ops when this thread has no
  //    monitor; one thread_local load + branch) --------------------------

  /// True when at least one FlowMonitor is live on this thread. Callers
  /// on hot paths gate event construction on this.
  static bool thread_active() noexcept;
  /// One op event: operand values (unused slots pass 0.0), operand count,
  /// final result, at site `tag`.
  static void on_op(std::uint64_t tag, double a, double b, double c,
                    unsigned operand_count, double result) noexcept;
  /// One sticky-flag sample (softfloat Flag bits) at site `tag`.
  static void on_flag_sample(std::uint64_t tag, unsigned flags) noexcept;
  /// Seam harvest on the CURRENT thread's monitor stack (fenv read-only).
  static void on_seam() noexcept;

 private:
  void start_trap(FlowMode requested) noexcept;
  void stop_trap() noexcept;

  FlowLedger ledger_;
  FlowCapability capability_;
  FlowReport report_;
  ScopedMonitor scoped_;
  FlowMonitor* prev_ = nullptr;  // intrusive per-thread stack link
  bool stopped_ = false;
  bool trap_session_ = false;
  bool seam_session_ = false;
  int trap_enabled_excepts_ = 0;
};

/// Runs `fn` under a fresh FlowMonitor and writes the report into `out`
/// even when `fn` throws (harvest + restoration happen during unwind).
template <typename Fn>
void monitor_flow(Fn&& fn, FlowReport& out,
                  const FlowOptions& options = {}) {
  struct Harvest {
    Harvest(FlowReport* o, const FlowOptions& opts) noexcept
        : monitor(opts), out(o) {}
    ~Harvest() { *out = monitor.stop(); }
    FlowMonitor monitor;
    FlowReport* out;
  } harvest(&out, options);
  fn();
}

/// Process-wide seam-sample collector: instrumentation seams on ANY
/// thread (tape-engine chunk boundaries) call sample(); when a
/// collect_seams FlowMonitor is active, the harvested condition bits and
/// the sample count accumulate atomically and drain into that monitor at
/// stop(). When no collector is active, sample() is one relaxed atomic
/// load. Thread-safe by atomic accumulation; deterministic because the
/// payload is a condition-bit union plus a count.
class FlowCollector {
 public:
  /// Called at instrumented chunk/shard boundaries.
  static void sample() noexcept;
  /// True when a collector is currently registered (tests).
  static bool active() noexcept;

 private:
  friend class FlowMonitor;
  static bool acquire() noexcept;
  static void release_into(FlowLedger& ledger) noexcept;
};

}  // namespace fpq::mon
