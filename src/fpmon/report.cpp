#include "fpmon/report.hpp"

namespace fpq::mon {

Severity advised_severity(Condition c) noexcept {
  switch (c) {
    case Condition::kInvalid:
      return Severity::kCritical;
    case Condition::kOverflow:
    case Condition::kDivByZero:
      return Severity::kWarning;
    case Condition::kUnderflow:
    case Condition::kPrecision:
    case Condition::kDenorm:
      return Severity::kInfo;
  }
  return Severity::kInfo;
}

int advised_suspicion_level(Condition c) noexcept {
  switch (c) {
    case Condition::kInvalid:
      return 5;
    case Condition::kOverflow:
    case Condition::kDivByZero:
      return 4;
    case Condition::kUnderflow:
    case Condition::kDenorm:
      return 2;
    case Condition::kPrecision:
      return 1;
  }
  return 1;
}

Verdict evaluate(const ConditionSet& conditions) noexcept {
  Verdict v;
  v.conditions = conditions;
  v.clean = !conditions.any();
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    const auto c = static_cast<Condition>(i);
    if (!conditions.test(c)) continue;
    const Severity s = advised_severity(c);
    if (static_cast<int>(s) < static_cast<int>(v.worst)) v.worst = s;
    v.suspicion_level = std::max(v.suspicion_level, advised_suspicion_level(c));
  }
  if (v.clean) v.worst = Severity::kInfo;
  return v;
}

namespace {

const char* severity_text(Severity s) {
  switch (s) {
    case Severity::kCritical:
      return "CRITICAL: almost invariably a sign of serious trouble";
    case Severity::kWarning:
      return "WARNING: usually a sign of trouble in real code";
    case Severity::kInfo:
      return "info: common; fine given appropriate numeric design";
  }
  return "";
}

}  // namespace

std::string render_report(const ConditionSet& conditions) {
  std::string out = "floating point exception report\n";
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    const auto c = static_cast<Condition>(i);
    out += "  ";
    out += condition_name(c);
    out += ": ";
    if (conditions.test(c)) {
      out += "OCCURRED — ";
      out += severity_text(advised_severity(c));
      out += " (advised suspicion ";
      out += std::to_string(advised_suspicion_level(c));
      out += "/5)";
    } else {
      out += "not observed";
    }
    out += '\n';
  }
  const Verdict v = evaluate(conditions);
  out += v.clean ? "  verdict: clean run\n"
                 : "  verdict: suspicion level " +
                       std::to_string(v.suspicion_level) + "/5\n";
  return out;
}

}  // namespace fpq::mon
