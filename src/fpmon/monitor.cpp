#include "fpmon/monitor.hpp"

#include <cfenv>

#include "fpmon/hardware.hpp"

namespace fpq::mon {

std::string condition_name(Condition c) {
  switch (c) {
    case Condition::kOverflow:
      return "Overflow";
    case Condition::kUnderflow:
      return "Underflow";
    case Condition::kPrecision:
      return "Precision";
    case Condition::kInvalid:
      return "Invalid";
    case Condition::kDenorm:
      return "Denorm";
    case Condition::kDivByZero:
      return "DivByZero";
  }
  return "Unknown";
}

bool ConditionSet::any() const noexcept {
  for (bool b : seen_) {
    if (b) return true;
  }
  return false;
}

std::size_t ConditionSet::count() const noexcept {
  std::size_t n = 0;
  for (bool b : seen_) n += b ? 1 : 0;
  return n;
}

void ConditionSet::merge(const ConditionSet& other) noexcept {
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    seen_[i] = seen_[i] || other.seen_[i];
  }
}

ConditionSet ConditionSet::from_softfloat_flags(unsigned flags) noexcept {
  ConditionSet set;
  if (flags & softfloat::kFlagOverflow) set.set(Condition::kOverflow);
  if (flags & softfloat::kFlagUnderflow) set.set(Condition::kUnderflow);
  if (flags & softfloat::kFlagInexact) set.set(Condition::kPrecision);
  if (flags & softfloat::kFlagInvalid) set.set(Condition::kInvalid);
  if (flags & softfloat::kFlagDenormalInput) set.set(Condition::kDenorm);
  if (flags & softfloat::kFlagDivByZero) set.set(Condition::kDivByZero);
  return set;
}

std::string ConditionSet::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    if (!seen_[i]) continue;
    if (!out.empty()) out += '|';
    out += condition_name(static_cast<Condition>(i));
  }
  return out.empty() ? "none" : out;
}

namespace {

ConditionSet harvest_fenv(int excepts, bool denormal) {
  ConditionSet set;
  if (excepts & FE_OVERFLOW) set.set(Condition::kOverflow);
  if (excepts & FE_UNDERFLOW) set.set(Condition::kUnderflow);
  if (excepts & FE_INEXACT) set.set(Condition::kPrecision);
  if (excepts & FE_INVALID) set.set(Condition::kInvalid);
  if (excepts & FE_DIVBYZERO) set.set(Condition::kDivByZero);
  if (denormal) set.set(Condition::kDenorm);
  return set;
}

}  // namespace

ScopedMonitor::ScopedMonitor() noexcept {
  saved_excepts_ = std::fetestexcept(FE_ALL_EXCEPT);
  std::feclearexcept(FE_ALL_EXCEPT);
  track_denormals_ = mxcsr_supported();
  if (track_denormals_) {
    saved_denormal_ = denormal_operand_seen();
    // feclearexcept on x86 clears the standard five in MXCSR but not DE;
    // clear the whole sticky field so the scope starts clean.
    clear_mxcsr_flags();
  }
}

ConditionSet ScopedMonitor::peek() const noexcept {
  if (stopped_) return result_;
  const int excepts = std::fetestexcept(FE_ALL_EXCEPT);
  const bool denorm = track_denormals_ && denormal_operand_seen();
  return harvest_fenv(excepts, denorm);
}

const ConditionSet& ScopedMonitor::stop() noexcept {
  if (stopped_) return result_;
  result_ = peek();
  stopped_ = true;
  // Restore outer sticky state: everything that was pending before the
  // scope plus everything the scope itself raised stays visible outside,
  // so nesting never hides exceptions from enclosing monitors.
  std::feraiseexcept(saved_excepts_);
  if (track_denormals_ &&
      (saved_denormal_ || result_.test(Condition::kDenorm))) {
    write_mxcsr(read_mxcsr() | kMxcsrFlagDenormal);
  }
  return result_;
}

ScopedMonitor::~ScopedMonitor() { stop(); }

}  // namespace fpq::mon
