// fpq::mon — turning a ConditionSet into advice.
//
// The paper's suspicion analysis (§IV-D) argues a reasonable expert ranking
// of how suspicious each exceptional condition should make you:
// Invalid (NaN) >> Overflow (infinity) >> Underflow / Precision / Denorm.
// This module encodes that ranking as data, renders human-readable reports,
// and exposes the advised Likert suspicion levels that the suspicion
// analysis compares respondents against.
#pragma once

#include <string>

#include "fpmon/monitor.hpp"

namespace fpq::mon {

/// Advisory severity of one condition, highest first.
enum class Severity {
  kCritical,  ///< almost invariably a sign of serious trouble
  kWarning,   ///< usually a sign of trouble in real code
  kInfo,      ///< common; fine given appropriate numeric design
};

/// Expert severity of a condition per §IV-D of the paper.
Severity advised_severity(Condition c) noexcept;

/// The advised suspicion level (1..5 Likert) an expert would report for a
/// run in which the condition occurred: Invalid -> 5, Overflow -> 4,
/// Denorm -> 2, Underflow -> 2, Precision -> 1, DivByZero -> 4 (it implies
/// an infinity was produced).
int advised_suspicion_level(Condition c) noexcept;

/// One monitored run's verdict.
struct Verdict {
  ConditionSet conditions;
  Severity worst = Severity::kInfo;
  bool clean = true;  ///< no conditions at all
  /// Highest advised suspicion level over the observed conditions
  /// (1 when clean: "no reason for suspicion").
  int suspicion_level = 1;
};

/// Evaluates a condition set into a verdict.
Verdict evaluate(const ConditionSet& conditions) noexcept;

/// Renders a multi-line report in the shape of the paper's suspicion quiz:
/// one line per condition, whether it occurred, and the advised reaction.
std::string render_report(const ConditionSet& conditions);

}  // namespace fpq::mon
