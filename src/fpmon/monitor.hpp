// fpq::mon — the runtime floating point exception monitor.
//
// This is the tool the paper says its authors were building (§V): wrap a
// region of computation, and afterwards know which of the IEEE exceptional
// conditions occurred at least once inside it — exactly the structure of
// the suspicion quiz (§II-D). Two backends:
//
//   * ScopedMonitor: watches the *host* FPU via C99 fenv sticky flags,
//     plus the x86 MXCSR DE bit for denormal operands when available.
//     Nesting-safe: outer monitors still observe exceptions raised inside
//     inner scopes (sticky semantics are re-merged on exit).
//
//   * Conditions can also be harvested from a softfloat Env, so simulated
//     computations report through the same types.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "softfloat/env.hpp"

namespace fpq::mon {

/// The exceptional conditions tracked, in the order the paper's suspicion
/// quiz lists them (§II-D), plus divide-by-zero which the hardware also
/// records.
enum class Condition {
  kOverflow = 0,   ///< some operation produced an infinity
  kUnderflow = 1,  ///< some result was tiny (flushed or gradual)
  kPrecision = 2,  ///< some result required rounding (inexact)
  kInvalid = 3,    ///< some operation produced a NaN
  kDenorm = 4,     ///< some operand/result was a denormalized number
  kDivByZero = 5,  ///< some finite/0 division produced an infinity
};

inline constexpr std::size_t kConditionCount = 6;
/// The five conditions the paper's suspicion quiz asks about.
inline constexpr std::size_t kSuspicionConditionCount = 5;

/// Display name, e.g. "Overflow".
std::string condition_name(Condition c);

/// Which conditions occurred at least once in a monitored region.
class ConditionSet {
 public:
  ConditionSet() noexcept : seen_{} {}

  void set(Condition c) noexcept { seen_[index(c)] = true; }
  bool test(Condition c) const noexcept { return seen_[index(c)]; }
  bool any() const noexcept;
  std::size_t count() const noexcept;

  /// Merges another set into this one (sticky union).
  void merge(const ConditionSet& other) noexcept;

  /// Harvests conditions from accumulated softfloat Env flags.
  static ConditionSet from_softfloat_flags(unsigned flags) noexcept;

  /// "Overflow|Invalid" style rendering; "none" when empty.
  std::string to_string() const;

  friend bool operator==(const ConditionSet&, const ConditionSet&) = default;

 private:
  static std::size_t index(Condition c) noexcept {
    return static_cast<std::size_t>(c);
  }
  std::array<bool, kConditionCount> seen_;
};

/// RAII monitor over the host FPU.
///
/// On construction, saves and clears the fenv sticky flags (and the MXCSR
/// DE bit where available); on destruction or explicit stop(), harvests
/// what happened and re-raises the saved outer flags so enclosing monitors
/// (and the program's own fenv use) still see everything.
class ScopedMonitor {
 public:
  ScopedMonitor() noexcept;
  ~ScopedMonitor();
  ScopedMonitor(const ScopedMonitor&) = delete;
  ScopedMonitor& operator=(const ScopedMonitor&) = delete;

  /// Stops monitoring early and returns the harvested conditions.
  /// Subsequent calls return the same snapshot.
  const ConditionSet& stop() noexcept;

  /// Conditions seen so far without stopping (harvests incrementally).
  ConditionSet peek() const noexcept;

  /// Whether denormal-operand tracking is live (x86 MXCSR present).
  bool tracks_denormals() const noexcept { return track_denormals_; }

 private:
  int saved_excepts_ = 0;
  bool saved_denormal_ = false;
  bool track_denormals_ = false;
  bool stopped_ = false;
  ConditionSet result_;
};

/// Runs `fn` under a fresh monitor and returns what happened.
template <typename Fn>
ConditionSet monitor_region(Fn&& fn) {
  ScopedMonitor monitor;
  fn();
  return monitor.stop();
}

/// Exception-safe variant: runs `fn` under a fresh monitor and writes the
/// harvested conditions into `out` EVEN WHEN `fn` throws — the harvest
/// (and the fenv/MXCSR restoration ScopedMonitor always performs) happens
/// during unwinding, before the exception escapes this frame. The caller
/// keeps the observation of everything the scope raised up to the throw.
template <typename Fn>
void monitor_region(Fn&& fn, ConditionSet& out) {
  struct Harvest {
    explicit Harvest(ConditionSet* o) noexcept : out(o) {}
    ~Harvest() { *out = monitor.stop(); }
    ScopedMonitor monitor;
    ConditionSet* out;
  } harvest(&out);
  fn();
}

}  // namespace fpq::mon
