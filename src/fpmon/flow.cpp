#include "fpmon/flow.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cfenv>
#include <cstring>

#include "fpmon/hardware.hpp"

#if defined(__GLIBC__) && defined(__x86_64__) && defined(__linux__)
#define FPQ_TRAP_CAPABLE 1
#include <signal.h>
#include <ucontext.h>
#else
#define FPQ_TRAP_CAPABLE 0
#endif

namespace fpq::mon {

namespace {

std::uint64_t splitmix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return splitmix(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

unsigned pack_conditions(const ConditionSet& set) noexcept {
  unsigned bits = 0;
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    if (set.test(static_cast<Condition>(i))) bits |= 1u << i;
  }
  return bits;
}

ConditionSet unpack_conditions(unsigned bits) noexcept {
  ConditionSet set;
  for (std::size_t i = 0; i < kConditionCount; ++i) {
    if ((bits & (1u << i)) != 0) set.set(static_cast<Condition>(i));
  }
  return set;
}

}  // namespace

ValueClass classify(double x) noexcept {
  // Pure bit inspection: an FPU comparison against x could raise the very
  // flags (invalid on signaling NaN, denormal-operand) being monitored.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const std::uint64_t magnitude = bits & 0x7FFFFFFFFFFFFFFFULL;
  if (magnitude < 0x7FF0000000000000ULL) return ValueClass::kFinite;
  if (magnitude > 0x7FF0000000000000ULL) return ValueClass::kNaN;
  return (bits >> 63) != 0 ? ValueClass::kNegInf : ValueClass::kPosInf;
}

bool is_exceptional(ValueClass c) noexcept {
  return c != ValueClass::kFinite;
}

std::string value_class_name(ValueClass c) {
  switch (c) {
    case ValueClass::kFinite:
      return "finite";
    case ValueClass::kPosInf:
      return "+inf";
    case ValueClass::kNegInf:
      return "-inf";
    case ValueClass::kNaN:
      return "nan";
  }
  return "unknown";
}

std::uint8_t flow_signature(ValueClass a, ValueClass b, ValueClass c,
                            ValueClass result) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<unsigned>(a) | (static_cast<unsigned>(b) << 2) |
      (static_cast<unsigned>(c) << 4) | (static_cast<unsigned>(result) << 6));
}

bool signature_has_exceptional(std::uint8_t signature) noexcept {
  for (unsigned slot = 0; slot < 4; ++slot) {
    if (((signature >> (2 * slot)) & 0x3u) != 0) return true;
  }
  return false;
}

std::string flow_mode_name(FlowMode m) {
  switch (m) {
    case FlowMode::kSampling:
      return "sampling";
    case FlowMode::kTrap:
      return "trap";
    case FlowMode::kAuto:
      return "auto";
  }
  return "unknown";
}

// -- FlowLedger --------------------------------------------------------------

FlowLedger::FlowLedger(std::size_t max_sites)
    : max_sites_(max_sites == 0 ? 1 : max_sites) {}

SiteFlow* FlowLedger::site_for(std::uint64_t tag) {
  // Tags arrive in (call, op) order, so the common case appends; cmp/neg
  // auxiliary tags can interleave backwards, hence the binary-search
  // fallback.
  if (!sites_.empty() && sites_.back().tag == tag) return &sites_.back();
  if (sites_.empty() || tag > sites_.back().tag) {
    if (sites_.size() >= max_sites_) {
      summary_.dropped_sites += 1;
      return nullptr;
    }
    sites_.push_back(SiteFlow{tag});
    return &sites_.back();
  }
  const auto it = std::lower_bound(
      sites_.begin(), sites_.end(), tag,
      [](const SiteFlow& s, std::uint64_t t) { return s.tag < t; });
  if (it != sites_.end() && it->tag == tag) return &*it;
  if (sites_.size() >= max_sites_) {
    summary_.dropped_sites += 1;
    return nullptr;
  }
  return &*sites_.insert(it, SiteFlow{tag});
}

const SiteFlow* FlowLedger::site(std::uint64_t tag) const noexcept {
  const auto it = std::lower_bound(
      sites_.begin(), sites_.end(), tag,
      [](const SiteFlow& s, std::uint64_t t) { return s.tag < t; });
  return it != sites_.end() && it->tag == tag ? &*it : nullptr;
}

void FlowLedger::record_op(std::uint64_t tag, ValueClass a, ValueClass b,
                           ValueClass c, ValueClass result) {
  summary_.ops += 1;
  const bool operand_exceptional =
      is_exceptional(a) || is_exceptional(b) || is_exceptional(c);
  const bool result_exceptional = is_exceptional(result);
  if (operand_exceptional || result_exceptional) {
    summary_.exceptional_ops += 1;
  }

  SiteFlow* site = site_for(tag);
  if (site != nullptr) {
    if (site->events == 0) site->signature = flow_signature(a, b, c, result);
    site->events += 1;
  }
  if (result_exceptional && !operand_exceptional) {
    summary_.born += 1;
    if (site != nullptr) site->born += 1;
  } else if (result_exceptional) {
    summary_.propagated += 1;
    if (site != nullptr) site->propagated += 1;
  } else if (operand_exceptional) {
    summary_.killed += 1;
    if (site != nullptr) site->killed += 1;
  }
}

void FlowLedger::record_flag_sample(std::uint64_t tag,
                                    unsigned sticky_flags) {
  summary_.flag_samples += 1;
  if (have_flags_) {
    const unsigned vanished = last_flags_ & ~sticky_flags;
    if (vanished != 0) {
      // Sticky exception state is monotone; bits can only vanish when
      // someone cleared them between the two samples — a swallow.
      summary_.swallows += 1;
      if (SiteFlow* site = site_for(tag); site != nullptr) {
        site->swallows += 1;
      }
    }
  }
  last_flags_ = sticky_flags;
  have_flags_ = true;
}

void FlowLedger::record_seam(const ConditionSet& conditions) {
  summary_.seam_samples += 1;
  seam_conditions_.merge(conditions);
}

void FlowLedger::record_seam_batch(const ConditionSet& conditions,
                                   std::uint64_t samples) {
  summary_.seam_samples += samples;
  seam_conditions_.merge(conditions);
}

void FlowLedger::record_trap(const TrapEvent& event) {
  summary_.trap_events += 1;
  traps_.push_back(event);
}

void FlowLedger::merge(FlowLedger&& other) {
  std::vector<SiteFlow> merged;
  merged.reserve(std::min(sites_.size() + other.sites_.size(), max_sites_));
  std::size_t i = 0, j = 0;
  std::uint64_t dropped = 0;
  auto push = [&](SiteFlow&& s) {
    if (merged.size() < max_sites_) {
      merged.push_back(std::move(s));
    } else {
      dropped += 1;
    }
  };
  while (i < sites_.size() || j < other.sites_.size()) {
    if (j >= other.sites_.size() ||
        (i < sites_.size() && sites_[i].tag < other.sites_[j].tag)) {
      push(std::move(sites_[i++]));
    } else if (i >= sites_.size() || other.sites_[j].tag < sites_[i].tag) {
      push(std::move(other.sites_[j++]));
    } else {
      SiteFlow& l = sites_[i++];
      const SiteFlow& r = other.sites_[j++];
      // Symmetric signature pick, so merge order cannot matter even for
      // the (pathological) case of diverging signatures at one tag.
      l.signature = l.events == 0   ? r.signature
                    : r.events == 0 ? l.signature
                                    : std::min(l.signature, r.signature);
      l.events += r.events;
      l.born += r.born;
      l.propagated += r.propagated;
      l.killed += r.killed;
      l.swallows += r.swallows;
      push(std::move(l));
    }
  }
  sites_ = std::move(merged);

  summary_.ops += other.summary_.ops;
  summary_.exceptional_ops += other.summary_.exceptional_ops;
  summary_.born += other.summary_.born;
  summary_.propagated += other.summary_.propagated;
  summary_.killed += other.summary_.killed;
  summary_.swallows += other.summary_.swallows;
  summary_.flag_samples += other.summary_.flag_samples;
  summary_.seam_samples += other.summary_.seam_samples;
  summary_.trap_events += other.summary_.trap_events;
  summary_.dropped_sites += other.summary_.dropped_sites + dropped;

  seam_conditions_.merge(other.seam_conditions_);
  traps_.insert(traps_.end(), other.traps_.begin(), other.traps_.end());
  // Cross-chunk flag continuity is meaningless (each shard sampled its
  // own evaluator), so the merged ledger starts a fresh sample window.
  have_flags_ = false;
  last_flags_ = 0;
}

std::uint64_t FlowLedger::fingerprint() const noexcept {
  std::uint64_t h = mix(0xF10F10ULL, sites_.size());
  for (const SiteFlow& s : sites_) {
    h = mix(h, s.tag);
    h = mix(h, s.signature);
    h = mix(h, s.events);
    h = mix(h, s.born);
    h = mix(h, s.propagated);
    h = mix(h, s.killed);
    h = mix(h, s.swallows);
  }
  h = mix(h, summary_.ops);
  h = mix(h, summary_.exceptional_ops);
  h = mix(h, summary_.born);
  h = mix(h, summary_.propagated);
  h = mix(h, summary_.killed);
  h = mix(h, summary_.swallows);
  h = mix(h, summary_.flag_samples);
  h = mix(h, summary_.seam_samples);
  h = mix(h, summary_.dropped_sites);
  h = mix(h, pack_conditions(seam_conditions_));
  return h;
}

std::uint64_t FlowReport::fingerprint() const noexcept {
  return mix(ledger.fingerprint(), pack_conditions(conditions));
}

// -- Host fenv harvest (read-only) ------------------------------------------

ConditionSet current_fenv_conditions() noexcept {
  const int excepts = std::fetestexcept(FE_ALL_EXCEPT);
  ConditionSet set;
  if ((excepts & FE_OVERFLOW) != 0) set.set(Condition::kOverflow);
  if ((excepts & FE_UNDERFLOW) != 0) set.set(Condition::kUnderflow);
  if ((excepts & FE_INEXACT) != 0) set.set(Condition::kPrecision);
  if ((excepts & FE_INVALID) != 0) set.set(Condition::kInvalid);
  if ((excepts & FE_DIVBYZERO) != 0) set.set(Condition::kDivByZero);
  if (mxcsr_supported() && denormal_operand_seen()) {
    set.set(Condition::kDenorm);
  }
  return set;
}

// -- Trap machinery ----------------------------------------------------------

bool trap_supported() noexcept {
#if !FPQ_TRAP_CAPABLE
  return false;
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer runtimes own the synchronous-signal plumbing; arming real
  // FP traps under them is not a supported configuration, and saying so
  // beats corrupting their handlers.
  return false;
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return false;
#endif
#endif
  return true;
#endif
}

#if FPQ_TRAP_CAPABLE

namespace {

// The trapped kinds: the three conditions that are nearly always bugs.
// Underflow/inexact fire on practically every kernel and belong to the
// sampling path, not the trap path.
constexpr int kTrapExcepts = FE_INVALID | FE_DIVBYZERO | FE_OVERFLOW;

/// Per-thread lock-free trap ring. The handler writes, stop() drains on
/// the same thread; relaxed atomics order the count against the slot
/// writes for the (theoretical) nested-signal case.
struct TrapRing {
  static constexpr std::uint32_t kCapacity = 64;
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint32_t> lost{0};
  std::array<TrapEvent, kCapacity> events{};
};

thread_local TrapRing t_trap_ring;
std::atomic<bool> g_trap_session{false};
struct sigaction g_saved_sigfpe;

Condition condition_from_si_code(int code) noexcept {
  switch (code) {
    case FPE_FLTDIV:
      return Condition::kDivByZero;
    case FPE_FLTOVF:
      return Condition::kOverflow;
    case FPE_FLTUND:
      return Condition::kUnderflow;
    case FPE_FLTRES:
      return Condition::kPrecision;
    default:
      return Condition::kInvalid;
  }
}

// MXCSR exception MASK bits (Intel SDM Vol. 1 §10.2.3): IM..PM at 7..12.
std::uint32_t mxcsr_mask_for(int code) noexcept {
  switch (code) {
    case FPE_FLTINV:
      return 1u << 7;
    case FPE_FLTDIV:
      return 1u << 9;
    case FPE_FLTOVF:
      return 1u << 10;
    case FPE_FLTUND:
      return 1u << 11;
    case FPE_FLTRES:
      return 1u << 12;
    default:
      return 0x1F80u;  // unknown kind: mask everything, keep running
  }
}

// x87 control-word mask bits: IM..PM at 0..5 (bit 1 is DM).
std::uint16_t x87_mask_for(int code) noexcept {
  switch (code) {
    case FPE_FLTINV:
      return 1u << 0;
    case FPE_FLTDIV:
      return 1u << 2;
    case FPE_FLTOVF:
      return 1u << 3;
    case FPE_FLTUND:
      return 1u << 4;
    case FPE_FLTRES:
      return 1u << 5;
    default:
      return 0x3Fu;
  }
}

extern "C" void fpq_sigfpe_handler(int /*signo*/, siginfo_t* info,
                                   void* context) {
  // ASYNC-SIGNAL-SAFE BY CONSTRUCTION: fixed thread_local storage and
  // ucontext field writes only — no allocation, no locks, no library
  // calls, no errno.
  const int code = info != nullptr ? info->si_code : 0;
  TrapRing& ring = t_trap_ring;
  const std::uint32_t n = ring.count.load(std::memory_order_relaxed);
  if (n < TrapRing::kCapacity) {
    ring.events[n].pc =
        info != nullptr ? reinterpret_cast<std::uintptr_t>(info->si_addr)
                        : 0;
    ring.events[n].condition = condition_from_si_code(code);
    ring.count.store(n + 1, std::memory_order_release);
  } else {
    ring.lost.fetch_add(1, std::memory_order_relaxed);
  }
  // Re-mask the trapped kind in the interrupted context so the faulting
  // instruction re-executes under masked (sticky-flag) semantics and the
  // program CONTINUES: first-trap-per-kind capture, not termination.
  auto* uc = static_cast<ucontext_t*>(context);
  if (uc != nullptr && uc->uc_mcontext.fpregs != nullptr) {
    uc->uc_mcontext.fpregs->mxcsr |= mxcsr_mask_for(code);
    uc->uc_mcontext.fpregs->cwd =
        static_cast<std::uint16_t>(uc->uc_mcontext.fpregs->cwd |
                                   x87_mask_for(code));
  }
}

}  // namespace

void FlowMonitor::start_trap(FlowMode requested) noexcept {
  if (!trap_supported()) {
    capability_.degradation =
        "traps unavailable (needs glibc/x86-64/Linux, non-sanitizer "
        "build); degraded to sampling";
    return;
  }
  bool expected = false;
  if (!g_trap_session.compare_exchange_strong(expected, true)) {
    capability_.degradation =
        "another trap session is active; degraded to sampling";
    return;
  }
  t_trap_ring.count.store(0, std::memory_order_relaxed);
  t_trap_ring.lost.store(0, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &fpq_sigfpe_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGFPE, &action, &g_saved_sigfpe) != 0) {
    g_trap_session.store(false);
    capability_.degradation =
        "sigaction(SIGFPE) failed; degraded to sampling";
    return;
  }
  // Pending sticky flags would re-trap at the next x87 instruction once
  // unmasked; the enclosing ScopedMonitor already cleared them, but clear
  // again so the unmask starts from a provably clean slate.
  std::feclearexcept(FE_ALL_EXCEPT);
  trap_enabled_excepts_ = feenableexcept(kTrapExcepts) >= 0 ? kTrapExcepts : 0;
  if (trap_enabled_excepts_ == 0) {
    sigaction(SIGFPE, &g_saved_sigfpe, nullptr);
    g_trap_session.store(false);
    capability_.degradation =
        "feenableexcept failed; degraded to sampling";
    return;
  }
  trap_session_ = true;
  capability_.trap_active = true;
  (void)requested;
}

void FlowMonitor::stop_trap() noexcept {
  if (!trap_session_) return;
  fedisableexcept(trap_enabled_excepts_);
  sigaction(SIGFPE, &g_saved_sigfpe, nullptr);
  g_trap_session.store(false);
  const std::uint32_t n = t_trap_ring.count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n && i < TrapRing::kCapacity; ++i) {
    ledger_.record_trap(t_trap_ring.events[i]);
  }
  // Ring overflow is reported, never silent.
  ledger_.note_lost_traps(t_trap_ring.lost.load(std::memory_order_relaxed));
  trap_session_ = false;
}

#else  // !FPQ_TRAP_CAPABLE

void FlowMonitor::start_trap(FlowMode /*requested*/) noexcept {
  capability_.degradation =
      "traps unavailable (needs glibc/x86-64/Linux); degraded to sampling";
}

void FlowMonitor::stop_trap() noexcept {}

#endif

void FlowLedger::note_lost_traps(std::uint64_t lost) noexcept {
  summary_.trap_events += lost;
  summary_.dropped_sites += lost;
}

// -- FlowMonitor -------------------------------------------------------------

namespace {
thread_local FlowMonitor* t_monitor_top = nullptr;
}  // namespace

FlowMonitor::FlowMonitor(const FlowOptions& options)
    : ledger_(options.max_sites) {
  capability_.trap_supported = trap_supported();
  capability_.tracks_denormals = scoped_.tracks_denormals();
  if (options.mode != FlowMode::kSampling) start_trap(options.mode);
  if (options.collect_seams) {
    if (FlowCollector::acquire()) {
      seam_session_ = true;
      capability_.seam_collector = true;
    } else {
      if (!capability_.degradation.empty()) capability_.degradation += "; ";
      capability_.degradation +=
          "seam collector already held by another monitor";
    }
  }
  prev_ = t_monitor_top;
  t_monitor_top = this;
}

const FlowReport& FlowMonitor::stop() noexcept {
  if (stopped_) return report_;
  stopped_ = true;
  stop_trap();
  if (seam_session_) FlowCollector::release_into(ledger_);
  // The monitor's own boundary is a seam: harvest the region's condition
  // union as the final seam sample, then let the ScopedMonitor restore
  // the enclosing fenv state.
  ledger_.record_seam(scoped_.peek());
  report_.conditions = scoped_.stop();
  // Unlink from the per-thread stack (LIFO in RAII use; defensive walk
  // otherwise so an out-of-order stop can never corrupt the chain).
  if (t_monitor_top == this) {
    t_monitor_top = prev_;
  } else {
    for (FlowMonitor* m = t_monitor_top; m != nullptr; m = m->prev_) {
      if (m->prev_ == this) {
        m->prev_ = prev_;
        break;
      }
    }
  }
  report_.ledger = std::move(ledger_);
  report_.capability = capability_;
  return report_;
}

FlowMonitor::~FlowMonitor() { stop(); }

bool FlowMonitor::thread_active() noexcept {
  return t_monitor_top != nullptr;
}

void FlowMonitor::on_op(std::uint64_t tag, double a, double b, double c,
                        unsigned operand_count, double result) noexcept {
  FlowMonitor* m = t_monitor_top;
  if (m == nullptr) return;
  const ValueClass ca =
      operand_count > 0 ? classify(a) : ValueClass::kFinite;
  const ValueClass cb =
      operand_count > 1 ? classify(b) : ValueClass::kFinite;
  const ValueClass cc =
      operand_count > 2 ? classify(c) : ValueClass::kFinite;
  const ValueClass cr = classify(result);
  for (; m != nullptr; m = m->prev_) {
    if (!m->stopped_) m->ledger_.record_op(tag, ca, cb, cc, cr);
  }
}

void FlowMonitor::on_flag_sample(std::uint64_t tag,
                                 unsigned flags) noexcept {
  for (FlowMonitor* m = t_monitor_top; m != nullptr; m = m->prev_) {
    if (!m->stopped_) m->ledger_.record_flag_sample(tag, flags);
  }
}

void FlowMonitor::on_seam() noexcept {
  if (t_monitor_top == nullptr) return;
  const ConditionSet harvested = current_fenv_conditions();
  for (FlowMonitor* m = t_monitor_top; m != nullptr; m = m->prev_) {
    if (!m->stopped_) m->ledger_.record_seam(harvested);
  }
}

// -- FlowCollector -----------------------------------------------------------

namespace {
std::atomic<bool> g_collector_active{false};
std::atomic<unsigned> g_collector_bits{0};
std::atomic<std::uint64_t> g_collector_samples{0};
}  // namespace

void FlowCollector::sample() noexcept {
  if (!g_collector_active.load(std::memory_order_relaxed)) return;
  const unsigned bits = pack_conditions(current_fenv_conditions());
  if (bits != 0) g_collector_bits.fetch_or(bits, std::memory_order_relaxed);
  g_collector_samples.fetch_add(1, std::memory_order_relaxed);
}

bool FlowCollector::active() noexcept {
  return g_collector_active.load(std::memory_order_relaxed);
}

bool FlowCollector::acquire() noexcept {
  bool expected = false;
  if (!g_collector_active.compare_exchange_strong(expected, true)) {
    return false;
  }
  g_collector_bits.store(0, std::memory_order_relaxed);
  g_collector_samples.store(0, std::memory_order_relaxed);
  return true;
}

void FlowCollector::release_into(FlowLedger& ledger) noexcept {
  const unsigned bits = g_collector_bits.exchange(0);
  const std::uint64_t samples = g_collector_samples.exchange(0);
  g_collector_active.store(false, std::memory_order_release);
  if (samples > 0) {
    ledger.record_seam_batch(unpack_conditions(bits), samples);
  }
}

// -- Rendering ---------------------------------------------------------------

std::string render_flow_report(const FlowReport& report) {
  const FlowSummary& s = report.ledger.summary();
  std::string out;
  auto num = [](std::uint64_t v) { return std::to_string(v); };
  out += "flow: ops " + num(s.ops) + " (exceptional " +
         num(s.exceptional_ops) + "), born " + num(s.born) +
         ", propagated " + num(s.propagated) + ", killed " + num(s.killed) +
         ", swallows " + num(s.swallows) + "\n";
  out += "samples: flag " + num(s.flag_samples) + ", seam " +
         num(s.seam_samples) + ", trap events " + num(s.trap_events) +
         ", dropped sites " + num(s.dropped_sites) + "\n";
  out += "conditions: " + report.conditions.to_string() +
         " (seam union: " + report.ledger.seam_conditions().to_string() +
         ")\n";
  const FlowCapability& cap = report.capability;
  out += std::string("capability: trap ") +
         (cap.trap_active ? "active"
          : cap.trap_supported ? "available"
                               : "unsupported") +
         ", denormal tracking " + (cap.tracks_denormals ? "on" : "off") +
         ", seam collector " + (cap.seam_collector ? "on" : "off");
  if (!cap.degradation.empty()) out += " [" + cap.degradation + "]";
  out += "\n";

  // Per-site detail: birth/kill sites first tell the flow story; cap the
  // listing, never the data.
  std::size_t listed = 0;
  for (const SiteFlow& site : report.ledger.sites()) {
    if (site.born == 0 && site.killed == 0 && site.swallows == 0) continue;
    if (listed == 12) {
      out += "  ...\n";
      break;
    }
    out += "  site " + num(site.tag >> 20) + ":" +
           num(site.tag & 0xFFFFFULL) + " sig=" + num(site.signature) +
           " born " + num(site.born) + " propagated " +
           num(site.propagated) + " killed " + num(site.killed) +
           " swallows " + num(site.swallows) + "\n";
    ++listed;
  }
  return out;
}

}  // namespace fpq::mon
