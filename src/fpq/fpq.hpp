// fpqual — umbrella header: the full public API.
//
// A reproduction of "Do Developers Understand IEEE Floating Point?"
// (Dinda & Hetland, IPDPS 2018) as a production C++ library:
//
//   fpq::softfloat   — from-scratch IEEE 754-2008 engine (16/32/64-bit)
//   fpq::ir          — unified expression IR: one tree, every evaluator
//   fpq::quiz        — the canonical quiz harness with executable keys
//   fpq::mon         — runtime FP exception monitor (the §V tool)
//   fpq::opt         — optimization/hardware semantics probes & emulation
//   fpq::inject      — deterministic fault injection + detector gauntlet
//   fpq::parallel    — deterministic sharded execution + result caches
//   fpq::stats       — deterministic statistics substrate
//   fpq::survey      — survey data model and analysis pipeline
//   fpq::respondent  — calibrated synthetic participant population
//   fpq::paperdata   — the paper's published numbers as typed constants
//   fpq::report      — tables, charts, CSV, paper-vs-measured comparisons
//
// Include this for everything, or the per-module headers for less.
#pragma once

#include "analyze/shadow.hpp"        // IWYU pragma: export
#include "bigfloat/bigfloat.hpp"     // IWYU pragma: export
#include "core/backend.hpp"          // IWYU pragma: export
#include "core/ground_truth.hpp"     // IWYU pragma: export
#include "core/question_bank.hpp"    // IWYU pragma: export
#include "core/scoring.hpp"          // IWYU pragma: export
#include "core/session.hpp"          // IWYU pragma: export
#include "core/types.hpp"            // IWYU pragma: export
#include "core/witness.hpp"          // IWYU pragma: export
#include "fpmon/hardware.hpp"        // IWYU pragma: export
#include "interval/interval.hpp"     // IWYU pragma: export
#include "fpmon/monitor.hpp"         // IWYU pragma: export
#include "fpmon/report.hpp"          // IWYU pragma: export
#include "inject/inject.hpp"         // IWYU pragma: export
#include "ir/ir.hpp"                 // IWYU pragma: export
#include "optprobe/emulated_pipeline.hpp"  // IWYU pragma: export
#include "optprobe/flag_audit.hpp"   // IWYU pragma: export
#include "optprobe/mxcsr.hpp"        // IWYU pragma: export
#include "optprobe/probes.hpp"       // IWYU pragma: export
#include "paperdata/paperdata.hpp"   // IWYU pragma: export
#include "report/barchart.hpp"       // IWYU pragma: export
#include "report/compare.hpp"        // IWYU pragma: export
#include "report/csv.hpp"            // IWYU pragma: export
#include "report/table.hpp"          // IWYU pragma: export
#include "respondent/ability_model.hpp"     // IWYU pragma: export
#include "respondent/background_model.hpp"  // IWYU pragma: export
#include "respondent/calibration.hpp"       // IWYU pragma: export
#include "respondent/population.hpp"        // IWYU pragma: export
#include "respondent/suspicion_model.hpp"   // IWYU pragma: export
#include "softfloat/env.hpp"         // IWYU pragma: export
#include "softfloat/ops.hpp"         // IWYU pragma: export
#include "softfloat/util.hpp"        // IWYU pragma: export
#include "softfloat/value.hpp"       // IWYU pragma: export
#include "stats/bootstrap.hpp"       // IWYU pragma: export
#include "stats/categorical.hpp"     // IWYU pragma: export
#include "stats/chi_square.hpp"      // IWYU pragma: export
#include "stats/descriptive.hpp"     // IWYU pragma: export
#include "stats/histogram.hpp"       // IWYU pragma: export
#include "stats/likert.hpp"          // IWYU pragma: export
#include "stats/prng.hpp"            // IWYU pragma: export
#include "survey/analysis.hpp"       // IWYU pragma: export
#include "survey/csv_io.hpp"         // IWYU pragma: export
#include "survey/factor_analysis.hpp"      // IWYU pragma: export
#include "survey/record.hpp"         // IWYU pragma: export
#include "survey/suspicion_analysis.hpp"   // IWYU pragma: export
#include "workloads/workloads.hpp"   // IWYU pragma: export
