#include "core/witness.hpp"

#include <array>
#include <cassert>
#include <cstdio>
#include <span>

#include "core/backend_eval.hpp"
#include "ir/expr.hpp"
#include "optprobe/emulated_pipeline.hpp"
#include "optprobe/flag_audit.hpp"
#include "optprobe/mxcsr.hpp"

namespace fpq::quiz {

namespace {

std::string num(double x) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

// Every demonstration's arithmetic is an fpq::ir tree executed on the
// backend through BackendEvaluator; only the sweep loops and verdict
// branches stay in C++. `ev` is the one evaluation entry point.
double ev(ArithmeticBackend& b, const ir::Expr& e,
          std::initializer_list<double> binds = {}) {
  return evaluate_on_backend(
      b, e, std::span<const double>(binds.begin(), binds.size()));
}

// Directed operand pool: interesting magnitudes canonicalized into the
// backend's format (so the binary16 backend sweeps binary16 values).
std::array<double, 12> operand_pool(ArithmeticBackend& b) {
  return {b.canonicalize(0.0),    b.canonicalize(-0.0),
          b.canonicalize(1.0),    b.canonicalize(-1.0),
          b.canonicalize(0.1),    b.canonicalize(-3.5),
          b.canonicalize(7.25),   b.canonicalize(1000.0),
          b.canonicalize(1.0 / 3.0), b.canonicalize(-0.001),
          b.max_finite(),         b.min_normal()};
}

Demonstration demo_commutativity(ArithmeticBackend& b) {
  const auto pool = operand_pool(b);
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr y = ir::Expr::variable("y", 1);
  const ir::Expr add_xy = ir::Expr::add(x, y);
  const ir::Expr mul_xy = ir::Expr::mul(x, y);
  for (double xv : pool) {
    for (double yv : pool) {
      if (!b.equal(ev(b, add_xy, {xv, yv}), ev(b, add_xy, {yv, xv})) ||
          !b.equal(ev(b, mul_xy, {xv, yv}), ev(b, mul_xy, {yv, xv}))) {
        return {Truth::kFalse, "counterexample: x=" + num(xv) +
                                   " y=" + num(yv) +
                                   " (commutativity violated?!)"};
      }
    }
  }
  return {Truth::kTrue,
          "swept " + std::to_string(pool.size() * pool.size()) +
              " directed pairs incl. zeros and extremes: x+y == y+x and "
              "x*y == y*x throughout"};
}

Demonstration demo_associativity(ArithmeticBackend& b) {
  const ir::Expr a = ir::Expr::variable("a", 0);
  const ir::Expr n = ir::Expr::variable("n", 1);
  const ir::Expr one_c = ir::Expr::constant(1.0);
  const ir::Expr neg_tree = ir::Expr::sub(ir::Expr::constant(0.0), a);
  const ir::Expr left_tree = ir::Expr::add(ir::Expr::add(a, n), one_c);
  const ir::Expr right_tree = ir::Expr::add(a, ir::Expr::add(n, one_c));
  const ir::Expr grow = ir::Expr::mul(a, ir::Expr::constant(2.0));
  const ir::Expr doubled = ir::Expr::add(a, a);
  // Walk 2^k until the rounding of (big + 1) eats the 1.
  const double one = b.canonicalize(1.0);
  double big = b.canonicalize(2.0);
  for (int k = 1; k < 1100; ++k) {
    const double neg = ev(b, neg_tree, {big});             // -big
    const double left = ev(b, left_tree, {big, neg});      // (a+b)+c = 1
    const double right = ev(b, right_tree, {big, neg});    // a+(b+c)
    if (!b.equal(left, right)) {
      return {Truth::kFalse,
              "counterexample: a=" + num(big) + " b=" + num(-big) +
                  " c=1: (a+b)+c = " + num(left) +
                  " but a+(b+c) = " + num(right)};
    }
    big = ev(b, grow, {big});
    if (b.equal(big, ev(b, doubled, {big}))) break;  // saturated at inf
  }
  (void)one;
  return {Truth::kTrue, "no counterexample found (unexpected)"};
}

Demonstration demo_distributivity(ArithmeticBackend& b) {
  // a*(b+c) vs a*b + a*c with a = max_finite, b = 2, c = -2:
  // the left side is exactly 0 while the right side overflows both
  // products and collapses to inf + (-inf) = invalid.
  const ir::Expr x = ir::Expr::variable("a", 0);
  const ir::Expr two = ir::Expr::constant(2.0);
  const ir::Expr neg_two = ir::Expr::constant(-2.0);
  const double a = b.max_finite();
  const double lhs = ev(b, ir::Expr::mul(x, ir::Expr::add(two, neg_two)),
                        {a});
  const double rhs =
      ev(b, ir::Expr::add(ir::Expr::mul(x, two), ir::Expr::mul(x, neg_two)),
         {a});
  if (!b.equal(lhs, rhs)) {
    return {Truth::kFalse,
            "counterexample: a=max_finite, b=2, c=-2: a*(b+c) = 0 but "
            "a*b + a*c = inf + (-inf) = invalid"};
  }
  // Fallback: rounding-level counterexample sweep.
  const ir::Expr vy = ir::Expr::variable("b", 1);
  const ir::Expr vz = ir::Expr::variable("c", 2);
  const ir::Expr l_tree = ir::Expr::mul(x, ir::Expr::add(vy, vz));
  const ir::Expr r_tree =
      ir::Expr::add(ir::Expr::mul(x, vy), ir::Expr::mul(x, vz));
  const auto pool = operand_pool(b);
  for (double xv : pool) {
    for (double yv : pool) {
      for (double zv : pool) {
        const double l = ev(b, l_tree, {xv, yv, zv});
        const double r = ev(b, r_tree, {xv, yv, zv});
        if (!b.equal(l, r)) {
          return {Truth::kFalse, "counterexample: a=" + num(xv) +
                                     " b=" + num(yv) + " c=" + num(zv)};
        }
      }
    }
  }
  return {Truth::kTrue, "no counterexample found (unexpected)"};
}

Demonstration demo_ordering(ArithmeticBackend& b) {
  const ir::Expr a = ir::Expr::variable("a", 0);
  const ir::Expr recovered_tree =
      ir::Expr::sub(ir::Expr::add(a, ir::Expr::constant(1.0)), a);
  const ir::Expr grow = ir::Expr::mul(a, ir::Expr::constant(2.0));
  const ir::Expr doubled = ir::Expr::add(a, a);
  const double one = b.canonicalize(1.0);
  double big = b.canonicalize(2.0);
  for (int k = 1; k < 1100; ++k) {
    const double recovered = ev(b, recovered_tree, {big});
    if (!b.equal(recovered, one)) {
      return {Truth::kFalse, "counterexample: a=" + num(big) +
                                 " b=1: ((a+b)-a) = " + num(recovered) +
                                 " != 1"};
    }
    big = ev(b, grow, {big});
    if (b.equal(big, ev(b, doubled, {big}))) break;
  }
  return {Truth::kTrue, "no counterexample found (unexpected)"};
}

Demonstration demo_identity(ArithmeticBackend& b) {
  const double nan = ev(
      b, ir::Expr::div(ir::Expr::constant(0.0), ir::Expr::constant(0.0)));
  if (!b.equal(nan, nan)) {
    return {Truth::kFalse,
            "counterexample: a = 0.0/0.0 gives a == a false"};
  }
  return {Truth::kTrue, "a == a held even for 0.0/0.0 (unexpected)"};
}

Demonstration demo_negative_zero(ArithmeticBackend& b) {
  const double pz = b.canonicalize(0.0);
  const double nz = b.canonicalize(-0.0);
  if (b.equal(pz, nz)) {
    return {Truth::kFalse,
            "+0 == -0 compares true: two zeros are never unequal"};
  }
  return {Truth::kTrue, "+0 != -0 on this backend (non-IEEE behavior!)"};
}

Demonstration demo_square(ArithmeticBackend& b) {
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr sq_tree = ir::Expr::mul(x, x);
  const auto pool = operand_pool(b);
  for (double xv : pool) {
    const double sq = ev(b, sq_tree, {xv});
    if (b.less(sq, b.canonicalize(0.0)) || !b.equal(sq, sq)) {
      return {Truth::kFalse, "counterexample: x=" + num(xv)};
    }
  }
  // Overflowing square saturates at +inf, still >= 0.
  const double big_sq = ev(b, sq_tree, {b.max_finite()});
  if (b.less(big_sq, b.canonicalize(0.0))) {
    return {Truth::kFalse, "max_finite^2 came out negative (wrapped?)"};
  }
  return {Truth::kTrue,
          "squares of directed values (incl. max_finite, whose square "
          "saturates at +inf) all compare >= 0"};
}

Demonstration demo_overflow(ArithmeticBackend& b) {
  const ir::Expr a = ir::Expr::variable("a", 0);
  const double doubled = ev(b, ir::Expr::add(a, a), {b.max_finite()});
  if (b.less(doubled, b.canonicalize(0.0))) {
    return {Truth::kTrue,
            "max_finite + max_finite wrapped to a negative value"};
  }
  return {Truth::kFalse, "max_finite + max_finite = " + num(doubled) +
                             ": saturates at +infinity, no wrap-around"};
}

Demonstration demo_divide_by_zero(ArithmeticBackend& b) {
  const double r = ev(
      b, ir::Expr::div(ir::Expr::constant(1.0), ir::Expr::constant(0.0)));
  if (b.equal(r, r)) {
    return {Truth::kTrue, "1.0/0.0 = " + num(r) +
                              ": an infinity — an ordinary comparable "
                              "value, not an invalid result"};
  }
  return {Truth::kFalse, "1.0/0.0 produced an invalid result (unexpected)"};
}

Demonstration demo_zero_divide_by_zero(ArithmeticBackend& b) {
  const double r = ev(
      b, ir::Expr::div(ir::Expr::constant(0.0), ir::Expr::constant(0.0)));
  if (!b.equal(r, r)) {
    return {Truth::kFalse,
            "0.0/0.0 is an invalid result (it compares unequal to "
            "itself), so the assertion that it is a non-invalid value is "
            "false"};
  }
  return {Truth::kTrue, "0.0/0.0 compared equal to itself (unexpected)"};
}

Demonstration demo_saturation_plus(ArithmeticBackend& b) {
  const ir::Expr a = ir::Expr::variable("a", 0);
  const ir::Expr plus_one = ir::Expr::add(a, ir::Expr::constant(1.0));
  const double inf = ev(
      b, ir::Expr::div(ir::Expr::constant(1.0), ir::Expr::constant(0.0)));
  if (b.equal(ev(b, plus_one, {inf}), inf)) {
    return {Truth::kTrue,
            "witness: a = +infinity has (a + 1.0) == a; also a = "
            "max_finite (" +
                num(b.max_finite()) + ") where 1.0 is below half an ulp"};
  }
  if (b.equal(ev(b, plus_one, {b.max_finite()}), b.max_finite())) {
    return {Truth::kTrue, "witness: a = max_finite absorbs + 1.0"};
  }
  return {Truth::kFalse, "no witness found (unexpected)"};
}

Demonstration demo_saturation_minus(ArithmeticBackend& b) {
  const ir::Expr a = ir::Expr::variable("a", 0);
  const ir::Expr minus_one = ir::Expr::sub(a, ir::Expr::constant(1.0));
  const double inf = ev(
      b, ir::Expr::div(ir::Expr::constant(1.0), ir::Expr::constant(0.0)));
  if (b.equal(ev(b, minus_one, {inf}), inf)) {
    return {Truth::kTrue,
            "witness: a = +infinity has (a - 1.0) == a — you cannot back "
            "off from an infinity"};
  }
  return {Truth::kFalse, "no witness found (unexpected)"};
}

Demonstration demo_denormal_precision(ArithmeticBackend& b) {
  const double tiny = b.min_subnormal();
  if (b.equal(tiny, b.canonicalize(0.0))) {
    return {Truth::kTrue,
            "this backend flushes the sub-normal range entirely to zero "
            "(FTZ/DAZ): near zero there is not merely less precision but "
            "none at all"};
  }
  // At normal scale x * 1.75 is exact; at the bottom of the subnormal
  // range the same multiply must round (only 1 significand bit is left).
  const double scale = b.canonicalize(1.75);
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr ratio_tree = ir::Expr::div(
      ir::Expr::mul(x, ir::Expr::constant(1.75)), x);
  const double near_zero_ratio = ev(b, ratio_tree, {tiny});
  const double normal_ratio = ev(b, ratio_tree, {b.canonicalize(1.0)});
  if (b.equal(normal_ratio, scale) && !b.equal(near_zero_ratio, scale)) {
    return {Truth::kTrue,
            "witness: x*1.75/x == 1.75 at x = 1.0 but == " +
                num(near_zero_ratio) +
                " at x = min_subnormal — significand bits vanish near "
                "zero (gradual underflow)"};
  }
  return {Truth::kFalse,
          "no precision loss observed near zero (unexpected)"};
}

Demonstration demo_operation_precision(ArithmeticBackend& b) {
  (void)b.take_conditions();
  const double r = ev(
      b, ir::Expr::div(ir::Expr::constant(1.0), ir::Expr::constant(3.0)));
  const auto seen = b.take_conditions();
  if (seen.test(mon::Condition::kPrecision)) {
    return {Truth::kTrue, "witness: 1.0/3.0 = " + num(r) +
                              " required rounding (inexact was raised): "
                              "the result has less precision than the "
                              "exact quotient"};
  }
  return {Truth::kFalse, "1.0/3.0 was exact on this backend (unexpected)"};
}

Demonstration demo_exception_signal(ArithmeticBackend& b) {
  (void)b.take_conditions();
  const double nan = ev(
      b, ir::Expr::div(ir::Expr::constant(0.0), ir::Expr::constant(0.0)));
  const double inf = ev(
      b, ir::Expr::div(ir::Expr::constant(1.0), ir::Expr::constant(0.0)));
  (void)nan;
  (void)inf;
  const auto seen = b.take_conditions();
  // We are demonstrably still executing: no signal/trap was delivered.
  if (seen.test(mon::Condition::kInvalid) &&
      seen.test(mon::Condition::kDivByZero)) {
    return {Truth::kFalse,
            "witness: 0.0/0.0 and 1.0/0.0 both executed; only sticky "
            "status flags recorded the events (" +
                seen.to_string() +
                ") and execution continued with no signal"};
  }
  return {Truth::kFalse,
          "no signal was delivered (and this backend did not even record "
          "flags)"};
}

}  // namespace

Demonstration demonstrate_core(CoreQuestionId id,
                               ArithmeticBackend& backend) {
  switch (id) {
    case CoreQuestionId::kCommutativity:
      return demo_commutativity(backend);
    case CoreQuestionId::kAssociativity:
      return demo_associativity(backend);
    case CoreQuestionId::kDistributivity:
      return demo_distributivity(backend);
    case CoreQuestionId::kOrdering:
      return demo_ordering(backend);
    case CoreQuestionId::kIdentity:
      return demo_identity(backend);
    case CoreQuestionId::kNegativeZero:
      return demo_negative_zero(backend);
    case CoreQuestionId::kSquare:
      return demo_square(backend);
    case CoreQuestionId::kOverflow:
      return demo_overflow(backend);
    case CoreQuestionId::kDivideByZero:
      return demo_divide_by_zero(backend);
    case CoreQuestionId::kZeroDivideByZero:
      return demo_zero_divide_by_zero(backend);
    case CoreQuestionId::kSaturationPlus:
      return demo_saturation_plus(backend);
    case CoreQuestionId::kSaturationMinus:
      return demo_saturation_minus(backend);
    case CoreQuestionId::kDenormalPrecision:
      return demo_denormal_precision(backend);
    case CoreQuestionId::kOperationPrecision:
      return demo_operation_precision(backend);
    case CoreQuestionId::kExceptionSignal:
      return demo_exception_signal(backend);
  }
  assert(false && "unknown core question");
  return {};
}

Demonstration demonstrate_opt(OptQuestionId id) {
  namespace opt = fpq::opt;
  switch (id) {
    case OptQuestionId::kMadd: {
      const auto d = opt::diverge(opt::demo_contraction_sensitive(),
                                  opt::PipelineConfig::o3_like());
      std::string w =
          "fused multiply-add is IEEE 754-2008 (not 754-1985); "
          "demonstrated divergence: contracting x*x - round(x*x) changed "
          "the result from exactly 0 to the multiply's rounding error";
      if (!d.value_differs) w += " (divergence NOT observed — unexpected)";
      return {Truth::kFalse, std::move(w)};
    }
    case OptQuestionId::kFlushToZero: {
      opt::PipelineConfig ftz;
      ftz.flush_to_zero = true;
      const auto d = opt::diverge(opt::demo_flush_sensitive(), ftz);
      const auto hw = opt::probe_flush_modes();
      std::string w =
          "FTZ/DAZ are outside the standard; demonstrated: (min_normal * "
          "0.5) * 2 is min_normal under IEEE gradual underflow but 0 "
          "under FTZ";
      if (hw.mxcsr_available && hw.ftz_flushes_results) {
        w += "; reproduced live on this host's MXCSR FTZ bit";
      }
      if (!d.value_differs) w += " (divergence NOT observed — unexpected)";
      return {Truth::kFalse, std::move(w)};
    }
    case OptQuestionId::kStandardCompliantLevel: {
      return {Truth::kFalse,
              std::string("flag audit: highest compliant level is ") +
                  std::string(opt::highest_compliant_opt_level()) +
                  "; -O3 enables contraction"};
    }
    case OptQuestionId::kFastMath: {
      const auto d = opt::diverge(opt::demo_reassociation_sensitive(),
                                  opt::PipelineConfig::fast_math_like());
      std::string w =
          "demonstrated: reassociating 1e16 + 1 + ... + 1 changes the sum";
      if (!d.value_differs) w += " (divergence NOT observed — unexpected)";
      return {Truth::kTrue, std::move(w)};
    }
  }
  assert(false && "unknown optimization question");
  return {};
}

}  // namespace fpq::quiz
