// Softfloat backends: the quiz running on our own IEEE engine, at three
// precisions plus a non-standard FTZ/DAZ variant. Because the engine's Env
// carries the sticky flags, condition harvesting is exact and portable.

#include <string_view>

#include "core/backend.hpp"
#include "softfloat/ops.hpp"

namespace fpq::quiz {

namespace {

namespace sf = fpq::softfloat;

// Generic softfloat backend over a format; operands round into Float<B> on
// entry, results widen exactly back to double.
template <int kBits>
class SoftBackend final : public ArithmeticBackend {
 public:
  SoftBackend(std::string name, bool ftz, bool daz)
      : name_(std::move(name)), ftz_(ftz), daz_(daz) {
    env_.set_flush_to_zero(ftz);
    env_.set_denormals_are_zero(daz);
  }

  std::string name() const override { return name_; }

  double add(double a, double b) override {
    return widen(sf::add(narrow(a), narrow(b), env_));
  }
  double sub(double a, double b) override {
    return widen(sf::sub(narrow(a), narrow(b), env_));
  }
  double mul(double a, double b) override {
    return widen(sf::mul(narrow(a), narrow(b), env_));
  }
  double div(double a, double b) override {
    return widen(sf::div(narrow(a), narrow(b), env_));
  }
  double sqrt(double a) override {
    return widen(sf::sqrt(narrow(a), env_));
  }
  double fma(double a, double b, double c) override {
    return widen(sf::fma(narrow(a), narrow(b), narrow(c), env_));
  }
  bool equal(double a, double b) override {
    return sf::equal(narrow(a), narrow(b), env_);
  }
  bool less(double a, double b) override {
    return sf::less(narrow(a), narrow(b), env_);
  }
  double canonicalize(double x) override { return widen(narrow(x)); }
  double max_finite() override {
    return widen(sf::Float<kBits>::max_finite());
  }
  double min_normal() override {
    return widen(sf::Float<kBits>::min_normal());
  }
  double min_subnormal() override {
    return widen(sf::Float<kBits>::min_subnormal());
  }
  mon::ConditionSet take_conditions() override {
    const auto out = mon::ConditionSet::from_softfloat_flags(env_.flags());
    env_.clear_flags();
    return out;
  }
  bool ieee_compliant() const override { return !ftz_ && !daz_; }

 private:
  sf::Float<kBits> narrow(double x) {
    if constexpr (kBits == 64) {
      return sf::from_native(x);
    } else {
      // Conversion rounds but must not pollute the op's flag accounting
      // beyond what real hardware of that format would do with a literal.
      sf::Env quiet(env_.rounding());
      quiet.set_denormals_are_zero(env_.denormals_are_zero());
      return sf::convert<kBits>(sf::from_native(x), quiet);
    }
  }
  double widen(sf::Float<kBits> x) {
    if constexpr (kBits == 64) {
      return sf::to_native(x);
    } else {
      sf::Env quiet;  // widening is exact
      return sf::to_native(sf::convert<64>(x, quiet));
    }
  }

  std::string name_;
  bool ftz_;
  bool daz_;
  sf::Env env_;
};

// The one format-descriptor table every construction path shares. Order
// is the make_all_backends() order the sweeps and reports rely on.
constexpr BackendDescriptor kBackendRegistry[] = {
    {"native-binary64", 64, true, false, false},
    {"native-binary32", 32, true, false, false},
    {"softfloat-binary64", 64, false, false, false},
    {"softfloat-binary32", 32, false, false, false},
    {"softfloat-binary16", 16, false, false, false},
    {"softfloat-bfloat16", sf::kBFloat16, false, false, false},
    {"softfloat-binary64-ftz-daz", 64, false, true, true},
};

std::unique_ptr<ArithmeticBackend> from_registry(std::string_view name) {
  for (const BackendDescriptor& d : backend_registry()) {
    if (name == d.name) return make_backend(d);
  }
  return nullptr;
}

}  // namespace

std::span<const BackendDescriptor> backend_registry() {
  return kBackendRegistry;
}

std::unique_ptr<ArithmeticBackend> make_backend(const BackendDescriptor& d) {
  if (d.native) {
    return d.format_bits == 64 ? make_native_double_backend()
                               : make_native_float_backend();
  }
  switch (d.format_bits) {
    case 64:
      return std::make_unique<SoftBackend<64>>(d.name, d.flush_to_zero,
                                               d.denormals_are_zero);
    case 32:
      return std::make_unique<SoftBackend<32>>(d.name, d.flush_to_zero,
                                               d.denormals_are_zero);
    case 16:
      return std::make_unique<SoftBackend<16>>(d.name, d.flush_to_zero,
                                               d.denormals_are_zero);
    case sf::kBFloat16:
      return std::make_unique<SoftBackend<sf::kBFloat16>>(
          d.name, d.flush_to_zero, d.denormals_are_zero);
  }
  return nullptr;
}

std::unique_ptr<ArithmeticBackend> make_soft_backend_64() {
  return from_registry("softfloat-binary64");
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_32() {
  return from_registry("softfloat-binary32");
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_16() {
  return from_registry("softfloat-binary16");
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_bf16() {
  return from_registry("softfloat-bfloat16");
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_64_ftz() {
  return from_registry("softfloat-binary64-ftz-daz");
}

std::vector<std::unique_ptr<ArithmeticBackend>> make_all_backends() {
  std::vector<std::unique_ptr<ArithmeticBackend>> out;
  for (const BackendDescriptor& d : backend_registry()) {
    out.push_back(make_backend(d));
  }
  return out;
}

}  // namespace fpq::quiz
