// Softfloat backends: the quiz running on our own IEEE engine, at three
// precisions plus a non-standard FTZ/DAZ variant. Because the engine's Env
// carries the sticky flags, condition harvesting is exact and portable.

#include "core/backend.hpp"
#include "softfloat/ops.hpp"

namespace fpq::quiz {

namespace {

namespace sf = fpq::softfloat;

// Generic softfloat backend over a format; operands round into Float<B> on
// entry, results widen exactly back to double.
template <int kBits>
class SoftBackend final : public ArithmeticBackend {
 public:
  SoftBackend(std::string name, bool ftz, bool daz)
      : name_(std::move(name)), ftz_(ftz), daz_(daz) {
    env_.set_flush_to_zero(ftz);
    env_.set_denormals_are_zero(daz);
  }

  std::string name() const override { return name_; }

  double add(double a, double b) override {
    return widen(sf::add(narrow(a), narrow(b), env_));
  }
  double sub(double a, double b) override {
    return widen(sf::sub(narrow(a), narrow(b), env_));
  }
  double mul(double a, double b) override {
    return widen(sf::mul(narrow(a), narrow(b), env_));
  }
  double div(double a, double b) override {
    return widen(sf::div(narrow(a), narrow(b), env_));
  }
  bool equal(double a, double b) override {
    return sf::equal(narrow(a), narrow(b), env_);
  }
  bool less(double a, double b) override {
    return sf::less(narrow(a), narrow(b), env_);
  }
  double canonicalize(double x) override { return widen(narrow(x)); }
  double max_finite() override {
    return widen(sf::Float<kBits>::max_finite());
  }
  double min_normal() override {
    return widen(sf::Float<kBits>::min_normal());
  }
  double min_subnormal() override {
    return widen(sf::Float<kBits>::min_subnormal());
  }
  mon::ConditionSet take_conditions() override {
    const auto out = mon::ConditionSet::from_softfloat_flags(env_.flags());
    env_.clear_flags();
    return out;
  }
  bool ieee_compliant() const override { return !ftz_ && !daz_; }

 private:
  sf::Float<kBits> narrow(double x) {
    if constexpr (kBits == 64) {
      return sf::from_native(x);
    } else {
      // Conversion rounds but must not pollute the op's flag accounting
      // beyond what real hardware of that format would do with a literal.
      sf::Env quiet(env_.rounding());
      quiet.set_denormals_are_zero(env_.denormals_are_zero());
      return sf::convert<kBits>(sf::from_native(x), quiet);
    }
  }
  double widen(sf::Float<kBits> x) {
    if constexpr (kBits == 64) {
      return sf::to_native(x);
    } else {
      sf::Env quiet;  // widening is exact
      return sf::to_native(sf::convert<64>(x, quiet));
    }
  }

  std::string name_;
  bool ftz_;
  bool daz_;
  sf::Env env_;
};

}  // namespace

std::unique_ptr<ArithmeticBackend> make_soft_backend_64() {
  return std::make_unique<SoftBackend<64>>("softfloat-binary64", false,
                                           false);
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_32() {
  return std::make_unique<SoftBackend<32>>("softfloat-binary32", false,
                                           false);
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_16() {
  return std::make_unique<SoftBackend<16>>("softfloat-binary16", false,
                                           false);
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_bf16() {
  return std::make_unique<SoftBackend<sf::kBFloat16>>("softfloat-bfloat16",
                                                      false, false);
}
std::unique_ptr<ArithmeticBackend> make_soft_backend_64_ftz() {
  return std::make_unique<SoftBackend<64>>("softfloat-binary64-ftz-daz",
                                           true, true);
}

std::vector<std::unique_ptr<ArithmeticBackend>> make_all_backends() {
  std::vector<std::unique_ptr<ArithmeticBackend>> out;
  out.push_back(make_native_double_backend());
  out.push_back(make_native_float_backend());
  out.push_back(make_soft_backend_64());
  out.push_back(make_soft_backend_32());
  out.push_back(make_soft_backend_16());
  out.push_back(make_soft_backend_bf16());
  out.push_back(make_soft_backend_64_ftz());
  return out;
}

}  // namespace fpq::quiz
