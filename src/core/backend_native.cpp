// Host-FPU backends: binary64 (double) and binary32 (float ops widened).
// Exception conditions are harvested through fpmon's scoped monitor.

#include <cmath>
#include <limits>

#include "core/backend.hpp"

namespace fpq::quiz {

namespace {

// Opaque ops: the quiz must observe real FPU behavior, not constant folds.
[[gnu::noinline]] double n_add(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va + vb;
  return r;
}
[[gnu::noinline]] double n_sub(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va - vb;
  return r;
}
[[gnu::noinline]] double n_mul(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va * vb;
  return r;
}
[[gnu::noinline]] double n_div(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va / vb;
  return r;
}
[[gnu::noinline]] double n_sqrt(double a) {
  volatile double va = a;
  volatile double r = __builtin_sqrt(va);
  return r;
}
[[gnu::noinline]] double n_fma(double a, double b, double c) {
  volatile double va = a, vb = b, vc = c;
  volatile double r = __builtin_fma(va, vb, vc);
  return r;
}
[[gnu::noinline]] bool n_eq(double a, double b) {
  volatile double va = a, vb = b;
  return va == vb;
}
[[gnu::noinline]] bool n_lt(double a, double b) {
  volatile double va = a, vb = b;
  return va < vb;
}

[[gnu::noinline]] float f_add(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va + vb;
  return r;
}
[[gnu::noinline]] float f_sub(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va - vb;
  return r;
}
[[gnu::noinline]] float f_mul(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va * vb;
  return r;
}
[[gnu::noinline]] float f_div(float a, float b) {
  volatile float va = a, vb = b;
  volatile float r = va / vb;
  return r;
}
[[gnu::noinline]] float f_sqrt(float a) {
  volatile float va = a;
  volatile float r = __builtin_sqrtf(va);
  return r;
}
[[gnu::noinline]] float f_fma(float a, float b, float c) {
  volatile float va = a, vb = b, vc = c;
  volatile float r = __builtin_fmaf(va, vb, vc);
  return r;
}
[[gnu::noinline]] float f_narrow(double x) {
  volatile double vx = x;
  volatile float r = static_cast<float>(vx);
  return r;
}

// Shared condition-harvesting shim: runs fn under a fresh scoped monitor
// and accumulates whatever it raised.
template <typename Backend, typename Fn>
auto watched(Backend& self, Fn&& fn) {
  mon::ScopedMonitor monitor;
  const auto result = fn();
  self.accumulate(monitor.stop());
  return result;
}

class NativeDoubleBackend final : public ArithmeticBackend {
 public:
  std::string name() const override { return "native-binary64"; }

  double add(double a, double b) override {
    return watched(*this, [&] { return n_add(a, b); });
  }
  double sub(double a, double b) override {
    return watched(*this, [&] { return n_sub(a, b); });
  }
  double mul(double a, double b) override {
    return watched(*this, [&] { return n_mul(a, b); });
  }
  double div(double a, double b) override {
    return watched(*this, [&] { return n_div(a, b); });
  }
  double sqrt(double a) override {
    return watched(*this, [&] { return n_sqrt(a); });
  }
  double fma(double a, double b, double c) override {
    return watched(*this, [&] { return n_fma(a, b, c); });
  }
  bool equal(double a, double b) override { return n_eq(a, b); }
  bool less(double a, double b) override { return n_lt(a, b); }
  double canonicalize(double x) override { return x; }
  double max_finite() override { return std::numeric_limits<double>::max(); }
  double min_normal() override { return std::numeric_limits<double>::min(); }
  double min_subnormal() override {
    return std::numeric_limits<double>::denorm_min();
  }
  mon::ConditionSet take_conditions() override {
    mon::ConditionSet out = conditions_;
    conditions_ = mon::ConditionSet{};
    return out;
  }
  bool ieee_compliant() const override { return true; }

  void accumulate(const mon::ConditionSet& seen) { conditions_.merge(seen); }

 private:
  mon::ConditionSet conditions_;
};

class NativeFloatBackend final : public ArithmeticBackend {
 public:
  std::string name() const override { return "native-binary32"; }

  double add(double a, double b) override {
    return watched(*this, [&] {
      return static_cast<double>(f_add(f_narrow(a), f_narrow(b)));
    });
  }
  double sub(double a, double b) override {
    return watched(*this, [&] {
      return static_cast<double>(f_sub(f_narrow(a), f_narrow(b)));
    });
  }
  double mul(double a, double b) override {
    return watched(*this, [&] {
      return static_cast<double>(f_mul(f_narrow(a), f_narrow(b)));
    });
  }
  double div(double a, double b) override {
    return watched(*this, [&] {
      return static_cast<double>(f_div(f_narrow(a), f_narrow(b)));
    });
  }
  double sqrt(double a) override {
    return watched(*this,
                   [&] { return static_cast<double>(f_sqrt(f_narrow(a))); });
  }
  double fma(double a, double b, double c) override {
    return watched(*this, [&] {
      return static_cast<double>(
          f_fma(f_narrow(a), f_narrow(b), f_narrow(c)));
    });
  }
  bool equal(double a, double b) override {
    return n_eq(f_narrow(a), f_narrow(b));
  }
  bool less(double a, double b) override {
    return n_lt(f_narrow(a), f_narrow(b));
  }
  double canonicalize(double x) override { return f_narrow(x); }
  double max_finite() override { return std::numeric_limits<float>::max(); }
  double min_normal() override { return std::numeric_limits<float>::min(); }
  double min_subnormal() override {
    return std::numeric_limits<float>::denorm_min();
  }
  mon::ConditionSet take_conditions() override {
    mon::ConditionSet out = conditions_;
    conditions_ = mon::ConditionSet{};
    return out;
  }
  bool ieee_compliant() const override { return true; }

  void accumulate(const mon::ConditionSet& seen) { conditions_.merge(seen); }

 private:
  mon::ConditionSet conditions_;
};

}  // namespace

std::unique_ptr<ArithmeticBackend> make_native_double_backend() {
  return std::make_unique<NativeDoubleBackend>();
}

std::unique_ptr<ArithmeticBackend> make_native_float_backend() {
  return std::make_unique<NativeFloatBackend>();
}

}  // namespace fpq::quiz
