// Label helpers for the strongly-typed quiz identifiers (types.hpp).

#include "core/types.hpp"

namespace fpq::quiz {

std::string core_question_label(CoreQuestionId id) {
  switch (id) {
    case CoreQuestionId::kCommutativity:
      return "Commutativity";
    case CoreQuestionId::kAssociativity:
      return "Associativity";
    case CoreQuestionId::kDistributivity:
      return "Distributivity";
    case CoreQuestionId::kOrdering:
      return "Ordering";
    case CoreQuestionId::kIdentity:
      return "Identity";
    case CoreQuestionId::kNegativeZero:
      return "Negative Zero";
    case CoreQuestionId::kSquare:
      return "Square";
    case CoreQuestionId::kOverflow:
      return "Overflow";
    case CoreQuestionId::kDivideByZero:
      return "Divide by Zero";
    case CoreQuestionId::kZeroDivideByZero:
      return "Zero Divide By Zero";
    case CoreQuestionId::kSaturationPlus:
      return "Saturation Plus";
    case CoreQuestionId::kSaturationMinus:
      return "Saturation Minus";
    case CoreQuestionId::kDenormalPrecision:
      return "Denormal Precision";
    case CoreQuestionId::kOperationPrecision:
      return "Operation Precision";
    case CoreQuestionId::kExceptionSignal:
      return "Exception Signal";
  }
  return "Unknown";
}

std::string opt_question_label(OptQuestionId id) {
  switch (id) {
    case OptQuestionId::kMadd:
      return "MADD";
    case OptQuestionId::kFlushToZero:
      return "Flush to Zero";
    case OptQuestionId::kStandardCompliantLevel:
      return "Standard-compliant Level";
    case OptQuestionId::kFastMath:
      return "Fast-math";
  }
  return "Unknown";
}

std::string suspicion_item_label(SuspicionItemId id) {
  switch (id) {
    case SuspicionItemId::kOverflow:
      return "Overflow";
    case SuspicionItemId::kUnderflow:
      return "Underflow";
    case SuspicionItemId::kPrecision:
      return "Precision";
    case SuspicionItemId::kInvalid:
      return "Invalid";
    case SuspicionItemId::kDenorm:
      return "Denorm";
  }
  return "Unknown";
}

std::string answer_label(Answer a) {
  switch (a) {
    case Answer::kTrue:
      return "True";
    case Answer::kFalse:
      return "False";
    case Answer::kDontKnow:
      return "Don't Know";
    case Answer::kUnanswered:
      return "Unanswered";
  }
  return "Unknown";
}

}  // namespace fpq::quiz
