// fpq::quiz — pluggable arithmetic backends.
//
// A backend is "a floating point implementation the quiz can be run
// against": host hardware in double or float, or the softfloat engine in
// any of its formats and (non-standard) flush modes. Ground truths are
// *derived by execution* on a backend, so the answer key is demonstrated,
// not asserted — and running the derivation on a non-IEEE backend (FTZ)
// shows exactly which answers silently change on such hardware.
//
// The value model is host double: each backend rounds operands into its
// own format on entry and widens results back, which makes one evaluation
// routine serve every precision.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fpmon/monitor.hpp"

namespace fpq::quiz {

class ArithmeticBackend {
 public:
  virtual ~ArithmeticBackend() = default;

  /// Display name, e.g. "native-binary64", "softfloat-binary16".
  virtual std::string name() const = 0;

  // Arithmetic in the backend's format (operands are canonicalized into
  // the format first; results widen back to double exactly).
  virtual double add(double a, double b) = 0;
  virtual double sub(double a, double b) = 0;
  virtual double mul(double a, double b) = 0;
  virtual double div(double a, double b) = 0;
  virtual double sqrt(double a) = 0;
  /// Fused multiply-add: a*b + c with one rounding.
  virtual double fma(double a, double b, double c) = 0;

  // IEEE comparison semantics in the backend's format.
  virtual bool equal(double a, double b) = 0;
  virtual bool less(double a, double b) = 0;

  /// Rounds a host double into the backend's format (identity for
  /// binary64 backends). Lets tests construct "what the backend sees".
  virtual double canonicalize(double x) = 0;

  // Named values of the backend's format, widened to double.
  virtual double max_finite() = 0;
  virtual double min_normal() = 0;
  virtual double min_subnormal() = 0;

  /// Exceptional conditions accumulated since the last call; clears.
  virtual mon::ConditionSet take_conditions() = 0;

  /// True when the backend implements IEEE-standard semantics (no flush
  /// modes); the answer-key invariance tests quantify over these.
  virtual bool ieee_compliant() const = 0;
};

/// One row of the backend catalogue: everything needed to construct a
/// backend. `make_all_backends()` and the per-format factories all build
/// from this single table, so a new format is one new row.
struct BackendDescriptor {
  const char* name;        ///< display name, unique across the registry
  int format_bits;         ///< 64, 32, 16, or softfloat::kBFloat16
  bool native;             ///< host FPU instead of the softfloat engine
  bool flush_to_zero;
  bool denormals_are_zero;
};

/// The full catalogue, in the order `make_all_backends()` returns.
std::span<const BackendDescriptor> backend_registry();

/// Constructs the backend a descriptor names.
std::unique_ptr<ArithmeticBackend> make_backend(const BackendDescriptor& d);

/// Factories (each resolves its descriptor from backend_registry()).
std::unique_ptr<ArithmeticBackend> make_native_double_backend();
std::unique_ptr<ArithmeticBackend> make_native_float_backend();
std::unique_ptr<ArithmeticBackend> make_soft_backend_64();
std::unique_ptr<ArithmeticBackend> make_soft_backend_32();
std::unique_ptr<ArithmeticBackend> make_soft_backend_16();
/// bfloat16: binary32's range with a 7-bit significand — the reduced-
/// precision ML format the paper's introduction motivates.
std::unique_ptr<ArithmeticBackend> make_soft_backend_bf16();
/// Softfloat binary64 with FTZ+DAZ: the non-standard hardware the
/// optimization quiz warns about.
std::unique_ptr<ArithmeticBackend> make_soft_backend_64_ftz();

/// Every backend above, for parameterized sweeps.
std::vector<std::unique_ptr<ArithmeticBackend>> make_all_backends();

}  // namespace fpq::quiz
