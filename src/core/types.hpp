// fpq::quiz — identifiers and response types for the canonical quiz.
//
// The survey (paper §II) has three question components. Every question is
// identified by a strongly-typed id whose enumerator order matches the
// paper's presentation order, so analysis tables line up with Figures 14,
// 15 and 22 by construction.
#pragma once

#include <cstddef>
#include <string>

namespace fpq::quiz {

/// The 15 core-quiz questions (§II-B), in paper order.
enum class CoreQuestionId {
  kCommutativity = 0,
  kAssociativity,
  kDistributivity,
  kOrdering,
  kIdentity,
  kNegativeZero,
  kSquare,
  kOverflow,
  kDivideByZero,
  kZeroDivideByZero,
  kSaturationPlus,
  kSaturationMinus,
  kDenormalPrecision,
  kOperationPrecision,
  kExceptionSignal,
};
inline constexpr std::size_t kCoreQuestionCount = 15;

/// The 4 optimization-quiz questions (§II-C), in paper order.
enum class OptQuestionId {
  kMadd = 0,
  kFlushToZero,
  kStandardCompliantLevel,  ///< multiple choice, not T/F (see Figure 12)
  kFastMath,
};
inline constexpr std::size_t kOptQuestionCount = 4;
/// T/F optimization questions (Standard-compliant Level excluded), used
/// for the chance line in Figure 12.
inline constexpr std::size_t kOptTrueFalseCount = 3;

/// The 5 suspicion-quiz conditions (§II-D), in paper order.
enum class SuspicionItemId {
  kOverflow = 0,
  kUnderflow,
  kPrecision,
  kInvalid,
  kDenorm,
};
inline constexpr std::size_t kSuspicionItemCount = 5;

/// A participant's response to one true/false question.
enum class Answer {
  kTrue = 0,
  kFalse,
  kDontKnow,
  kUnanswered,
};

/// Ground truth for a question as established by execution on a backend.
enum class Truth { kTrue, kFalse };

inline Answer to_answer(Truth t) noexcept {
  return t == Truth::kTrue ? Answer::kTrue : Answer::kFalse;
}

/// Short label used in tables, e.g. "Associativity".
std::string core_question_label(CoreQuestionId id);
std::string opt_question_label(OptQuestionId id);
std::string suspicion_item_label(SuspicionItemId id);
std::string answer_label(Answer a);

/// The multiple-choice options for Standard-compliant Level, in display
/// order, plus the index of the correct one ("-O2").
inline constexpr const char* kOptLevelChoices[] = {"-O0", "-O1", "-O2",
                                                   "-O3", "-Ofast"};
inline constexpr std::size_t kOptLevelChoiceCount = 5;
inline constexpr std::size_t kOptLevelCorrectChoice = 2;  // "-O2"
/// Sentinel choice index meaning "Don't know".
inline constexpr std::size_t kOptLevelDontKnow = kOptLevelChoiceCount;
/// Sentinel choice index meaning "unanswered".
inline constexpr std::size_t kOptLevelUnanswered = kOptLevelChoiceCount + 1;

}  // namespace fpq::quiz
