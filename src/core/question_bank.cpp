#include "core/question_bank.hpp"

#include <array>
#include <cassert>

namespace fpq::quiz {

namespace {

constexpr std::array<CoreQuestion, kCoreQuestionCount> kCoreQuestions{{
    {CoreQuestionId::kCommutativity,
     "double a = ..., b = ...;  /* neither is the result of 0.0/0.0 */",
     "(a + b) == (b + a) is always true.", Truth::kTrue,
     "Floating point addition is commutative; the operands are rounded "
     "values but the operation sees the same pair either way."},
    {CoreQuestionId::kAssociativity,
     "double a = ..., b = ..., c = ...;  /* no invalid values */",
     "((a + b) + c) == (a + (b + c)) is always true.", Truth::kFalse,
     "Each addition rounds; grouping changes which partial sums round. "
     "Misjudging associativity is a common source of problems."},
    {CoreQuestionId::kDistributivity,
     "double a = ..., b = ..., c = ...;  /* no invalid values */",
     "(a * (b + c)) == (a * b + a * c) is always true.", Truth::kFalse,
     "Distributivity of real arithmetic does not survive per-operation "
     "rounding (and the right side can even overflow to inf - inf)."},
    {CoreQuestionId::kOrdering,
     "double a = ..., b = ...;  /* no invalid values */",
     "((a + b) - a) == b is always true.", Truth::kFalse,
     "The inner sum rounds (or saturates at an infinity), so subtracting a "
     "back need not recover b."},
    {CoreQuestionId::kIdentity, "double a = ...;  /* any value */",
     "(a == a) is always true.", Truth::kFalse,
     "A result of an invalid operation compares unequal to everything, "
     "including itself."},
    {CoreQuestionId::kNegativeZero,
     "double a = ..., b = ...;  /* both hold zero values */",
     "It is possible for (a == b) to be false.", Truth::kFalse,
     "The standard has a negative zero, but it compares equal to positive "
     "zero: two zeros are never unequal."},
    {CoreQuestionId::kSquare,
     "double a = ...;  /* not the result of 0.0/0.0 */",
     "(a * a) >= 0.0 is always true.", Truth::kTrue,
     "Squares are non-negative in floating point (they saturate at +inf); "
     "only integer arithmetic wraps to negative."},
    {CoreQuestionId::kOverflow,
     "double a = ...;  /* the largest finite value */",
     "(a + a) produces a negative (wrapped-around) value, as it would for "
     "a signed integer at its maximum.",
     Truth::kFalse,
     "Floating point overflow saturates at an infinity; integer overflow "
     "wraps. The two behave completely differently."},
    {CoreQuestionId::kDivideByZero, "double r = 1.0 / 0.0;",
     "r is a value that compares equal to itself (it is not an invalid "
     "result).",
     Truth::kTrue,
     "1.0/0.0 is an infinity, an ordinary comparable value that can "
     "propagate silently all the way into program output."},
    {CoreQuestionId::kZeroDivideByZero, "double r = 0.0 / 0.0;",
     "r is a value that compares equal to itself (it is not an invalid "
     "result).",
     Truth::kFalse,
     "0.0/0.0 is an invalid operation producing a NaN, which at least "
     "propagates visibly to the output."},
    {CoreQuestionId::kSaturationPlus, "double a = ...;  /* some value */",
     "It is possible for (a + 1.0) == a to be true.", Truth::kTrue,
     "At an infinity the sum saturates; at large finite magnitudes 1.0 is "
     "below half an ulp and rounds away."},
    {CoreQuestionId::kSaturationMinus, "double a = ...;  /* some value */",
     "It is possible for (a - 1.0) == a to be true.", Truth::kTrue,
     "Same as addition: you cannot back off from an infinity, and large "
     "finite values absorb small subtrahends."},
    {CoreQuestionId::kDenormalPrecision,
     "/* consider representable values very near zero */",
     "Floating point numbers very near zero have less precision than "
     "numbers further away from zero.",
     Truth::kTrue,
     "Denormalized numbers lose significand bits as they approach zero "
     "(gradual underflow); some hardware can even disable them."},
    {CoreQuestionId::kOperationPrecision,
     "double r = a / b;  /* a, b exact values */",
     "The result of an arithmetic operation can have less precision than "
     "its operands.",
     Truth::kTrue,
     "Most quotients (and many sums/products) are not representable and "
     "must round."},
    {CoreQuestionId::kExceptionSignal,
     "/* a computation produces an exceptional value (an infinity or an "
     "invalid result) */",
     "By default, the program is informed (e.g. via a signal) when any "
     "operation delivers an exceptional result.",
     Truth::kFalse,
     "By default exceptions only set sticky status flags; execution "
     "continues silently. A signal-free run does NOT mean no exceptional "
     "value was generated."},
}};

constexpr std::array<OptQuestion, kOptQuestionCount> kOptQuestions{{
    {OptQuestionId::kMadd,
     "Some processors provide a fused multiply-add instruction that "
     "computes a*b+c with a single rounding at the end. This operation is "
     "part of the original IEEE 754-1985 floating point standard.",
     true, Truth::kFalse,
     "Fused multiply-add was added in IEEE 754-2008; it is absent from "
     "754-1985, and contracting a*b+c changes results versus separate "
     "multiply and add."},
    {OptQuestionId::kFlushToZero,
     "Some processors have control bits (e.g. Intel's FTZ and DAZ) that "
     "replace very small intermediate values with zero for speed. "
     "Operating in this mode is permitted by the IEEE floating point "
     "standard.",
     true, Truth::kFalse,
     "Flush-to-zero abandons the standard's gradual underflow; on some "
     "hardware the bits are even on by default."},
    {OptQuestionId::kStandardCompliantLevel,
     "Which is generally the highest compiler optimization level that "
     "still preserves standard-compliant floating point behavior?",
     false, Truth::kFalse,
     "-O2: at -O3 compilers may contract expressions to fused "
     "multiply-adds, which changes results."},
    {OptQuestionId::kFastMath,
     "Compilers offer a fast-math option (e.g. gcc --ffast-math). Enabling "
     "it can cause the program's floating point behavior to no longer "
     "comply with the IEEE standard.",
     true, Truth::kTrue,
     "fast-math reassociates, assumes no NaNs/infinities, and links "
     "startup code that enables FTZ/DAZ — the least conforming mode."},
}};

constexpr std::array<SuspicionItem, kSuspicionItemCount> kSuspicionItems{{
    {SuspicionItemId::kOverflow,
     "The result of some operation was an infinity (overflow).",
     "Arguably, this is usually a sign of trouble in real code.", 4},
    {SuspicionItemId::kUnderflow,
     "The result of some operation was a zero (underflow).",
     "This is probably not a sign of trouble in real code.", 2},
    {SuspicionItemId::kPrecision,
     "The result of some operation required rounding and thus a loss of "
     "precision.",
     "Rounding is very common and not a problem if the numeric behavior "
     "of the algorithm has been designed correctly.",
     1},
    {SuspicionItemId::kInvalid,
     "The result of some operation was a NaN (invalid).",
     "This is almost invariably a sign of serious trouble in real code.",
     5},
    {SuspicionItemId::kDenorm,
     "The result of some operation was a denormalized number.",
     "Similar to rounding this is common — unless very tiny non-zero "
     "results are unexpected in this computation.",
     2},
}};

}  // namespace

std::span<const CoreQuestion> core_questions() noexcept {
  return kCoreQuestions;
}

const CoreQuestion& core_question(CoreQuestionId id) noexcept {
  const auto idx = static_cast<std::size_t>(id);
  assert(idx < kCoreQuestionCount);
  return kCoreQuestions[idx];
}

std::span<const OptQuestion> opt_questions() noexcept {
  return kOptQuestions;
}

const OptQuestion& opt_question(OptQuestionId id) noexcept {
  const auto idx = static_cast<std::size_t>(id);
  assert(idx < kOptQuestionCount);
  return kOptQuestions[idx];
}

std::span<const SuspicionItem> suspicion_items() noexcept {
  return kSuspicionItems;
}

const SuspicionItem& suspicion_item(SuspicionItemId id) noexcept {
  const auto idx = static_cast<std::size_t>(id);
  assert(idx < kSuspicionItemCount);
  return kSuspicionItems[idx];
}

}  // namespace fpq::quiz
