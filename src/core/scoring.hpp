// fpq::quiz — answer sheets and scoring.
//
// Scoring reproduces the paper's accounting exactly: per-quiz counts of
// correct / incorrect / don't-know / unanswered (Figure 12), with the
// Standard-compliant Level question excluded from the optimization-quiz
// T/F tally because it is multiple choice.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "parallel/thread_pool.hpp"

namespace fpq::quiz {

/// A participant's core-quiz answer sheet, indexed by CoreQuestionId.
struct CoreSheet {
  std::array<Answer, kCoreQuestionCount> answers{
      // Default: everything unanswered.
  };
  CoreSheet() { answers.fill(Answer::kUnanswered); }

  Answer& operator[](CoreQuestionId id) {
    return answers[static_cast<std::size_t>(id)];
  }
  Answer operator[](CoreQuestionId id) const {
    return answers[static_cast<std::size_t>(id)];
  }
};

/// A participant's optimization-quiz answer sheet: the three T/F answers
/// (MADD, Flush to Zero, Fast-math, in that order) plus the
/// multiple-choice level answer.
struct OptSheet {
  std::array<Answer, kOptTrueFalseCount> tf_answers{};
  std::size_t level_choice = kOptLevelUnanswered;
  OptSheet() { tf_answers.fill(Answer::kUnanswered); }
};

/// How one answer grades against the truth.
enum class Grade { kCorrect, kIncorrect, kDontKnow, kUnanswered };

Grade grade_answer(Answer given, Truth truth) noexcept;

/// Counts over one quiz.
struct QuizTally {
  std::size_t correct = 0;
  std::size_t incorrect = 0;
  std::size_t dont_know = 0;
  std::size_t unanswered = 0;
  std::size_t total() const noexcept {
    return correct + incorrect + dont_know + unanswered;
  }
};

/// Scores the core sheet against a truth key.
QuizTally score_core(const CoreSheet& sheet,
                     const std::array<Truth, kCoreQuestionCount>& key)
    noexcept;

/// Scores the T/F part of the optimization sheet (3 questions).
QuizTally score_opt_tf(const OptSheet& sheet,
                       const std::array<Truth, kOptTrueFalseCount>& key)
    noexcept;

/// Grades the multiple-choice level question (correct / incorrect /
/// don't-know / unanswered).
Grade grade_level_choice(std::size_t choice) noexcept;

/// Batch scoring sharded over a thread pool: tally i belongs to sheet i,
/// so the output is bit-identical to a serial score_core loop for every
/// thread count. This is the heavy-traffic path: one answer key, many
/// thousands of sheets.
std::vector<QuizTally> score_core_batch(
    std::span<const CoreSheet> sheets,
    const std::array<Truth, kCoreQuestionCount>& key,
    parallel::ThreadPool& pool);

std::vector<QuizTally> score_opt_tf_batch(
    std::span<const OptSheet> sheets,
    const std::array<Truth, kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool);

/// Expected score under uniform random T/F guessing (the paper's "chance"
/// lines in Figure 12).
inline constexpr double kCoreChanceScore = kCoreQuestionCount / 2.0;  // 7.5
inline constexpr double kOptChanceScore = kOptTrueFalseCount / 2.0;   // 1.5

}  // namespace fpq::quiz
