// fpq::quiz — the answer key, derived by execution.
//
// The standard answer key is computed by running every demonstration on an
// IEEE-compliant backend and cross-checked (by the test suite) against the
// question bank's declared truths and against every other IEEE backend.
#pragma once

#include <array>
#include <string>

#include "core/backend.hpp"
#include "core/question_bank.hpp"
#include "core/types.hpp"
#include "core/witness.hpp"

namespace fpq::quiz {

/// The full executed answer key for one backend.
struct AnswerKey {
  std::string backend_name;
  std::array<Demonstration, kCoreQuestionCount> core;
  std::array<Demonstration, kOptQuestionCount> opt;  ///< [2] is the level Q
  /// Correct choice index for Standard-compliant Level.
  std::size_t opt_level_choice = kOptLevelCorrectChoice;
};

/// Executes all demonstrations on the given backend.
AnswerKey derive_answer_key(ArithmeticBackend& backend);

/// The declared standard truths (what an IEEE backend must reproduce).
std::array<Truth, kCoreQuestionCount> standard_core_truths() noexcept;
std::array<Truth, kOptTrueFalseCount> standard_opt_truths() noexcept;

/// True when the executed key matches the declared standard truths on
/// every question; `mismatch` (optional) receives the first differing
/// question's label.
bool key_matches_standard(const AnswerKey& key, std::string* mismatch);

/// Renders the key with witnesses, one block per question.
std::string render_answer_key(const AnswerKey& key);

}  // namespace fpq::quiz
