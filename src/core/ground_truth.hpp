// fpq::quiz — the answer key, derived by execution.
//
// The standard answer key is computed by running every demonstration on an
// IEEE-compliant backend and cross-checked (by the test suite) against the
// question bank's declared truths and against every other IEEE backend.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/backend.hpp"
#include "core/question_bank.hpp"
#include "core/types.hpp"
#include "core/witness.hpp"

namespace fpq::quiz {

/// The full executed answer key for one backend.
struct AnswerKey {
  std::string backend_name;
  std::array<Demonstration, kCoreQuestionCount> core;
  std::array<Demonstration, kOptQuestionCount> opt;  ///< [2] is the level Q
  /// Correct choice index for Standard-compliant Level.
  std::size_t opt_level_choice = kOptLevelCorrectChoice;
};

/// Executes all demonstrations on the given backend.
AnswerKey derive_answer_key(ArithmeticBackend& backend);

/// Process-wide memo of executed answer keys, keyed by backend name.
/// Key derivation is deterministic per backend configuration, so the first
/// quiz session on a backend pays the execution cost and every later
/// session (under heavy scoring traffic there are many) reuses the same
/// demonstrations. Thread-safe; entries never move once inserted.
class AnswerKeyCache {
 public:
  static AnswerKeyCache& global();

  /// Returns the memoized key for `backend`, deriving it on first use.
  /// The reference stays valid for the cache's lifetime.
  const AnswerKey& get(ArithmeticBackend& backend);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<AnswerKey>> keys_;
  std::uint64_t hits_ = 0;    // guarded by mutex_
  std::uint64_t misses_ = 0;  // guarded by mutex_
};

/// derive_answer_key through AnswerKeyCache::global().
const AnswerKey& derive_answer_key_cached(ArithmeticBackend& backend);

/// The declared standard truths (what an IEEE backend must reproduce).
std::array<Truth, kCoreQuestionCount> standard_core_truths() noexcept;
std::array<Truth, kOptTrueFalseCount> standard_opt_truths() noexcept;

/// True when the executed key matches the declared standard truths on
/// every question; `mismatch` (optional) receives the first differing
/// question's label.
bool key_matches_standard(const AnswerKey& key, std::string* mismatch);

/// Renders the key with witnesses, one block per question.
std::string render_answer_key(const AnswerKey& key);

}  // namespace fpq::quiz
