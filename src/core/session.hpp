// fpq::quiz — a complete quiz session: derive the key from a backend,
// grade answer sheets, render reports. This is the top of the core
// library's public API and what the examples drive.
#pragma once

#include <memory>
#include <string>

#include "core/ground_truth.hpp"
#include "core/scoring.hpp"

namespace fpq::quiz {

/// Per-participant grading outcome across both graded quizzes.
struct SessionReport {
  QuizTally core;
  QuizTally opt_tf;
  Grade level_grade = Grade::kUnanswered;
  /// Convenience: core.correct as the paper's headline "score out of 15".
  std::size_t core_score = 0;
  /// Score relative to chance (positive = better than guessing).
  double core_vs_chance = 0.0;
};

class QuizSession {
 public:
  /// Derives the answer key by executing every demonstration on `backend`.
  /// The backend must outlive the session.
  explicit QuizSession(ArithmeticBackend& backend);

  const AnswerKey& key() const noexcept { return key_; }

  /// Grades one participant.
  SessionReport grade(const CoreSheet& core, const OptSheet& opt) const;

  /// The perfect answer sheets implied by the key (used by tests and by
  /// the respondent model's "expert" anchor).
  CoreSheet perfect_core_sheet() const;
  OptSheet perfect_opt_sheet() const;

  /// Renders the full quiz as text for a human to take (prompts only,
  /// no answers — survey order, no labels).
  std::string render_quiz_text() const;

  /// Renders one participant's report with per-question feedback.
  std::string render_report(const CoreSheet& core, const OptSheet& opt)
      const;

 private:
  AnswerKey key_;
};

}  // namespace fpq::quiz
