#include "core/scoring.hpp"

#include "parallel/shard.hpp"

namespace fpq::quiz {

Grade grade_answer(Answer given, Truth truth) noexcept {
  switch (given) {
    case Answer::kDontKnow:
      return Grade::kDontKnow;
    case Answer::kUnanswered:
      return Grade::kUnanswered;
    case Answer::kTrue:
      return truth == Truth::kTrue ? Grade::kCorrect : Grade::kIncorrect;
    case Answer::kFalse:
      return truth == Truth::kFalse ? Grade::kCorrect : Grade::kIncorrect;
  }
  return Grade::kUnanswered;
}

namespace {

void tally_one(QuizTally& tally, Grade g) noexcept {
  switch (g) {
    case Grade::kCorrect:
      ++tally.correct;
      break;
    case Grade::kIncorrect:
      ++tally.incorrect;
      break;
    case Grade::kDontKnow:
      ++tally.dont_know;
      break;
    case Grade::kUnanswered:
      ++tally.unanswered;
      break;
  }
}

}  // namespace

QuizTally score_core(
    const CoreSheet& sheet,
    const std::array<Truth, kCoreQuestionCount>& key) noexcept {
  QuizTally tally;
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    tally_one(tally, grade_answer(sheet.answers[i], key[i]));
  }
  return tally;
}

QuizTally score_opt_tf(
    const OptSheet& sheet,
    const std::array<Truth, kOptTrueFalseCount>& key) noexcept {
  QuizTally tally;
  for (std::size_t i = 0; i < kOptTrueFalseCount; ++i) {
    tally_one(tally, grade_answer(sheet.tf_answers[i], key[i]));
  }
  return tally;
}

std::vector<QuizTally> score_core_batch(
    std::span<const CoreSheet> sheets,
    const std::array<Truth, kCoreQuestionCount>& key,
    parallel::ThreadPool& pool) {
  std::vector<QuizTally> tallies(sheets.size());
  const std::size_t chunks =
      parallel::recommended_chunks(pool, sheets.size(), 64);
  parallel::parallel_map_chunks(
      pool, sheets.size(), chunks,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          tallies[i] = score_core(sheets[i], key);
        }
      });
  return tallies;
}

std::vector<QuizTally> score_opt_tf_batch(
    std::span<const OptSheet> sheets,
    const std::array<Truth, kOptTrueFalseCount>& key,
    parallel::ThreadPool& pool) {
  std::vector<QuizTally> tallies(sheets.size());
  const std::size_t chunks =
      parallel::recommended_chunks(pool, sheets.size(), 64);
  parallel::parallel_map_chunks(
      pool, sheets.size(), chunks,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          tallies[i] = score_opt_tf(sheets[i], key);
        }
      });
  return tallies;
}

Grade grade_level_choice(std::size_t choice) noexcept {
  if (choice == kOptLevelDontKnow) return Grade::kDontKnow;
  if (choice >= kOptLevelChoiceCount) return Grade::kUnanswered;
  return choice == kOptLevelCorrectChoice ? Grade::kCorrect
                                          : Grade::kIncorrect;
}

}  // namespace fpq::quiz
