#include "core/ground_truth.hpp"

namespace fpq::quiz {

AnswerKey derive_answer_key(ArithmeticBackend& backend) {
  AnswerKey key;
  key.backend_name = backend.name();
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    key.core[i] =
        demonstrate_core(static_cast<CoreQuestionId>(i), backend);
  }
  for (std::size_t i = 0; i < kOptQuestionCount; ++i) {
    key.opt[i] = demonstrate_opt(static_cast<OptQuestionId>(i));
  }
  key.opt_level_choice = kOptLevelCorrectChoice;
  return key;
}

AnswerKeyCache& AnswerKeyCache::global() {
  static AnswerKeyCache cache;
  return cache;
}

const AnswerKey& AnswerKeyCache::get(ArithmeticBackend& backend) {
  const std::string name = backend.name();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = keys_.find(name);
  if (it != keys_.end()) {
    ++hits_;
    return *it->second;
  }
  ++misses_;
  // Derive while holding the lock: concurrent sessions on the same
  // backend configuration would execute identical demonstrations, so
  // serializing the first derivation is the cheapest way to run it once.
  auto key = std::make_unique<AnswerKey>(derive_answer_key(backend));
  return *keys_.emplace(name, std::move(key)).first->second;
}

void AnswerKeyCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  keys_.clear();
  hits_ = 0;
  misses_ = 0;
}

const AnswerKey& derive_answer_key_cached(ArithmeticBackend& backend) {
  return AnswerKeyCache::global().get(backend);
}

std::array<Truth, kCoreQuestionCount> standard_core_truths() noexcept {
  std::array<Truth, kCoreQuestionCount> out{};
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    out[i] = core_question(static_cast<CoreQuestionId>(i)).standard_truth;
  }
  return out;
}

std::array<Truth, kOptTrueFalseCount> standard_opt_truths() noexcept {
  // The T/F optimization questions in order: MADD, Flush to Zero,
  // Fast-math (Standard-compliant Level is multiple choice).
  return {opt_question(OptQuestionId::kMadd).standard_truth,
          opt_question(OptQuestionId::kFlushToZero).standard_truth,
          opt_question(OptQuestionId::kFastMath).standard_truth};
}

bool key_matches_standard(const AnswerKey& key, std::string* mismatch) {
  const auto declared = standard_core_truths();
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    if (key.core[i].truth != declared[i]) {
      if (mismatch != nullptr) {
        *mismatch = core_question_label(static_cast<CoreQuestionId>(i));
      }
      return false;
    }
  }
  for (std::size_t i = 0; i < kOptQuestionCount; ++i) {
    const auto& q = opt_question(static_cast<OptQuestionId>(i));
    if (q.is_true_false && key.opt[i].truth != q.standard_truth) {
      if (mismatch != nullptr) *mismatch = opt_question_label(q.id);
      return false;
    }
  }
  if (key.opt_level_choice != kOptLevelCorrectChoice) {
    if (mismatch != nullptr) *mismatch = "Standard-compliant Level";
    return false;
  }
  return true;
}

std::string render_answer_key(const AnswerKey& key) {
  std::string out = "answer key as executed on backend: " +
                    key.backend_name + "\n\n";
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    const auto& q = core_question(static_cast<CoreQuestionId>(i));
    out += core_question_label(q.id) + "\n";
    out += "  code:      " + std::string(q.snippet) + "\n";
    out += "  assertion: " + std::string(q.assertion) + "\n";
    out += "  answer:    ";
    out += key.core[i].truth == Truth::kTrue ? "TRUE" : "FALSE";
    out += "\n  evidence:  " + key.core[i].witness + "\n\n";
  }
  for (std::size_t i = 0; i < kOptQuestionCount; ++i) {
    const auto& q = opt_question(static_cast<OptQuestionId>(i));
    out += opt_question_label(q.id) + "\n";
    out += "  prompt:    " + std::string(q.prompt) + "\n";
    out += "  answer:    ";
    if (q.is_true_false) {
      out += key.opt[i].truth == Truth::kTrue ? "TRUE" : "FALSE";
    } else {
      out += kOptLevelChoices[key.opt_level_choice];
    }
    out += "\n  evidence:  " + key.opt[i].witness + "\n\n";
  }
  return out;
}

}  // namespace fpq::quiz
