// fpq::quiz — evaluating fpq::ir trees on an ArithmeticBackend.
//
// The bridge that puts the quiz's ground-truth derivation on the unified
// IR: a BackendEvaluator's per-node arithmetic IS the backend's virtual
// ops, so whatever trees the witness generators build execute with the
// exact value model (round-on-entry, widen-on-exit, host double carrier)
// and condition accounting the backend already implements.
#pragma once

#include <span>

#include "core/backend.hpp"
#include "ir/evaluator.hpp"
#include "ir/expr.hpp"

namespace fpq::quiz {

/// ir::Evaluator whose hooks delegate to one ArithmeticBackend. The value
/// domain is host double — the backend's own value model. Comparisons
/// yield 1.0/0.0.
class BackendEvaluator final : public ir::Evaluator<double> {
 public:
  explicit BackendEvaluator(ArithmeticBackend& backend) : b_(backend) {}

  double constant(const ir::Expr& e) override;
  double variable(const ir::Expr& e, double bound) override;
  double neg(const ir::Expr& e, const double& a) override;
  double add(const ir::Expr& e, const double& a, const double& b) override;
  double sub(const ir::Expr& e, const double& a, const double& b) override;
  double mul(const ir::Expr& e, const double& a, const double& b) override;
  double div(const ir::Expr& e, const double& a, const double& b) override;
  double sqrt(const ir::Expr& e, const double& a) override;
  double fma(const ir::Expr& e, const double& a, const double& b,
             const double& c) override;
  double cmp_eq(const ir::Expr& e, const double& a,
                const double& b) override;
  double cmp_lt(const ir::Expr& e, const double& a,
                const double& b) override;

 private:
  ArithmeticBackend& b_;
};

/// Evaluates `expr` on `backend`; `bindings` feeds kVar nodes by
/// var_index. Conditions accumulate in the backend as usual (harvest with
/// backend.take_conditions()).
double evaluate_on_backend(ArithmeticBackend& backend, const ir::Expr& expr,
                           std::span<const double> bindings = {});

}  // namespace fpq::quiz
