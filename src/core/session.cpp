#include "core/session.hpp"

namespace fpq::quiz {

QuizSession::QuizSession(ArithmeticBackend& backend)
    // Repeated sessions on the same backend configuration hit the memoized
    // ground truth instead of re-running every demonstration snippet.
    : key_(derive_answer_key_cached(backend)) {}

namespace {

std::array<Truth, kCoreQuestionCount> core_truths(const AnswerKey& key) {
  std::array<Truth, kCoreQuestionCount> out{};
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    out[i] = key.core[i].truth;
  }
  return out;
}

std::array<Truth, kOptTrueFalseCount> opt_truths(const AnswerKey& key) {
  // T/F questions are MADD (0), Flush to Zero (1), Fast-math (3).
  return {key.opt[0].truth, key.opt[1].truth, key.opt[3].truth};
}

}  // namespace

SessionReport QuizSession::grade(const CoreSheet& core,
                                 const OptSheet& opt) const {
  SessionReport r;
  r.core = score_core(core, core_truths(key_));
  r.opt_tf = score_opt_tf(opt, opt_truths(key_));
  r.level_grade = grade_level_choice(opt.level_choice);
  r.core_score = r.core.correct;
  r.core_vs_chance = static_cast<double>(r.core.correct) - kCoreChanceScore;
  return r;
}

CoreSheet QuizSession::perfect_core_sheet() const {
  CoreSheet sheet;
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    sheet.answers[i] = to_answer(key_.core[i].truth);
  }
  return sheet;
}

OptSheet QuizSession::perfect_opt_sheet() const {
  OptSheet sheet;
  const auto truths = opt_truths(key_);
  for (std::size_t i = 0; i < kOptTrueFalseCount; ++i) {
    sheet.tf_answers[i] = to_answer(truths[i]);
  }
  sheet.level_choice = key_.opt_level_choice;
  return sheet;
}

std::string QuizSession::render_quiz_text() const {
  std::string out =
      "Floating point quiz (answer True / False / Don't Know)\n\n";
  int n = 1;
  for (const auto& q : core_questions()) {
    out += "Q" + std::to_string(n++) + ".\n";
    out += "    " + std::string(q.snippet) + "\n";
    out += "  Claim: " + std::string(q.assertion) + "\n\n";
  }
  for (const auto& q : opt_questions()) {
    out += "Q" + std::to_string(n++) + ".\n";
    out += "  " + std::string(q.prompt) + "\n";
    if (!q.is_true_false) {
      out += "  Options:";
      for (std::size_t c = 0; c < kOptLevelChoiceCount; ++c) {
        out += ' ';
        out += kOptLevelChoices[c];
      }
      out += " / Don't Know\n";
    }
    out += '\n';
  }
  return out;
}

std::string QuizSession::render_report(const CoreSheet& core,
                                       const OptSheet& opt) const {
  const SessionReport r = grade(core, opt);
  std::string out = "quiz report (key from backend: " + key_.backend_name +
                    ")\n\n";
  const auto truths = core_truths(key_);
  for (std::size_t i = 0; i < kCoreQuestionCount; ++i) {
    const auto id = static_cast<CoreQuestionId>(i);
    const Grade g = grade_answer(core.answers[i], truths[i]);
    out += "  " + core_question_label(id) + ": ";
    out += answer_label(core.answers[i]);
    switch (g) {
      case Grade::kCorrect:
        out += " — correct";
        break;
      case Grade::kIncorrect:
        out += " — INCORRECT (";
        out += truths[i] == Truth::kTrue ? "True" : "False";
        out += "): " + key_.core[i].witness;
        break;
      case Grade::kDontKnow:
      case Grade::kUnanswered:
        out += " — answer: ";
        out += truths[i] == Truth::kTrue ? "True" : "False";
        break;
    }
    out += '\n';
  }
  out += "\n  core score: " + std::to_string(r.core.correct) + "/" +
         std::to_string(kCoreQuestionCount) + " (chance would be " +
         std::to_string(kCoreChanceScore).substr(0, 3) + ")\n";
  out += "  optimization T/F score: " + std::to_string(r.opt_tf.correct) +
         "/" + std::to_string(kOptTrueFalseCount) + "\n";
  out += "  standard-compliant level: ";
  switch (r.level_grade) {
    case Grade::kCorrect:
      out += "correct (-O2)\n";
      break;
    case Grade::kIncorrect:
      out += "incorrect (answer: -O2)\n";
      break;
    default:
      out += "not answered (answer: -O2)\n";
      break;
  }
  return out;
}

}  // namespace fpq::quiz
