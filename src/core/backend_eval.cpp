#include "core/backend_eval.hpp"

#include <bit>
#include <cstdint>

#include "ir/tape.hpp"
#include "softfloat/value.hpp"

namespace fpq::quiz {

double BackendEvaluator::constant(const ir::Expr& e) {
  // Raw literal: the backend rounds it into its format on operand entry,
  // exactly as a source literal reaches a hardware op.
  return softfloat::to_native(e.node().value);
}

double BackendEvaluator::variable(const ir::Expr& e, double bound) {
  (void)e;
  return bound;
}

double BackendEvaluator::neg(const ir::Expr& e, const double& a) {
  (void)e;
  // IEEE negate: sign-bit flip, no arithmetic, no conditions.
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) ^
                               (std::uint64_t{1} << 63));
}

double BackendEvaluator::add(const ir::Expr& e, const double& a,
                             const double& b) {
  (void)e;
  return b_.add(a, b);
}

double BackendEvaluator::sub(const ir::Expr& e, const double& a,
                             const double& b) {
  (void)e;
  return b_.sub(a, b);
}

double BackendEvaluator::mul(const ir::Expr& e, const double& a,
                             const double& b) {
  (void)e;
  return b_.mul(a, b);
}

double BackendEvaluator::div(const ir::Expr& e, const double& a,
                             const double& b) {
  (void)e;
  return b_.div(a, b);
}

double BackendEvaluator::sqrt(const ir::Expr& e, const double& a) {
  (void)e;
  return b_.sqrt(a);
}

double BackendEvaluator::fma(const ir::Expr& e, const double& a,
                             const double& b, const double& c) {
  (void)e;
  return b_.fma(a, b, c);
}

double BackendEvaluator::cmp_eq(const ir::Expr& e, const double& a,
                                const double& b) {
  (void)e;
  return b_.equal(a, b) ? 1.0 : 0.0;
}

double BackendEvaluator::cmp_lt(const ir::Expr& e, const double& a,
                                const double& b) {
  (void)e;
  return b_.less(a, b) ? 1.0 : 0.0;
}

double evaluate_on_backend(ArithmeticBackend& backend, const ir::Expr& expr,
                           std::span<const double> bindings) {
  BackendEvaluator evaluator(backend);
  // Ground truth runs the compiled tape (process-wide compile memo) with
  // exact_trace options: the backend must execute the tree walk's op
  // sequence verbatim — no CSE, no folding — because its semantics are
  // not the tape config's softfloat arithmetic.
  const std::shared_ptr<const ir::Tape> tape =
      ir::Tape::cached(expr, {}, ir::TapeOptions::exact_trace());
  return ir::run_tape<double>(*tape, evaluator, bindings);
}

}  // namespace fpq::quiz
