// fpq::quiz — the canonical question bank.
//
// Every question of the paper's survey (§II-B, §II-C, §II-D) as data: a C
// code snippet, the asserted claim, the standard-compliant ground truth,
// and the rationale. The snippets use C syntax that is identical in C++,
// C# and Java, matching the survey's design. Labels never appear in the
// prompt text itself (the survey avoided prompting/anchoring terms like
// "NaN"); they exist only for analysis tables.
#pragma once

#include <span>
#include <string_view>

#include "core/types.hpp"

namespace fpq::quiz {

/// One core-quiz (true/false) question.
struct CoreQuestion {
  CoreQuestionId id;
  std::string_view snippet;    ///< C code setting the scene
  std::string_view assertion;  ///< the claim to judge true/false
  Truth standard_truth;        ///< IEEE-standard answer
  std::string_view rationale;  ///< why — one or two sentences
};

/// All 15 core questions in paper order.
std::span<const CoreQuestion> core_questions() noexcept;
const CoreQuestion& core_question(CoreQuestionId id) noexcept;

/// One optimization-quiz question. Standard-compliant Level is multiple
/// choice (see kOptLevelChoices in types.hpp); its `standard_truth` field
/// is unused and the correct choice is kOptLevelCorrectChoice.
struct OptQuestion {
  OptQuestionId id;
  std::string_view prompt;
  bool is_true_false;
  Truth standard_truth;  ///< valid only when is_true_false
  std::string_view rationale;
};

std::span<const OptQuestion> opt_questions() noexcept;
const OptQuestion& opt_question(OptQuestionId id) noexcept;

/// One suspicion-quiz item: the scenario description shown for the given
/// exceptional condition (§II-D), plus the paper's commentary on how
/// suspicious one ought to be.
struct SuspicionItem {
  SuspicionItemId id;
  std::string_view condition_description;
  std::string_view commentary;
  int advised_level;  ///< expert Likert level (matches fpmon's advice)
};

std::span<const SuspicionItem> suspicion_items() noexcept;
const SuspicionItem& suspicion_item(SuspicionItemId id) noexcept;

}  // namespace fpq::quiz
