// fpq::quiz — executable demonstrations.
//
// For every core-quiz question, a demonstration runs concrete operations
// on an ArithmeticBackend and derives the answer from what actually
// happened: a universal claim is refuted by a found counterexample or
// supported by an exhaustive directed sweep; an existential claim is
// proved by a found witness. The witness text records the concrete values
// so a skeptical reader can reproduce the behavior by hand.
#pragma once

#include <string>

#include "core/backend.hpp"
#include "core/types.hpp"

namespace fpq::quiz {

/// Outcome of demonstrating one question on one backend.
struct Demonstration {
  Truth truth = Truth::kFalse;  ///< the answer as executed on this backend
  std::string witness;          ///< the concrete evidence
};

/// Runs the demonstration for one core question.
Demonstration demonstrate_core(CoreQuestionId id, ArithmeticBackend& backend);

/// Runs the demonstration for one T/F optimization question (uses the
/// emulated pipeline, hardware probes and the flag audit as evidence).
Demonstration demonstrate_opt(OptQuestionId id);

}  // namespace fpq::quiz
