#include "analyze/shadow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "ir/evaluator.hpp"
#include "softfloat/ops.hpp"

namespace fpq::shadow {

namespace {

namespace bf = fpq::bigfloat;
namespace sf = fpq::softfloat;

// The shadow value domain: binary64 and high-precision, side by side.
struct NodeValues {
  double d = 0.0;        // binary64 value at this node
  bf::BigFloat shadow;   // high-precision value at this node
};

// One ir::Evaluator computes both executions in lock-step and files the
// findings as it goes: cancellation inside the add/sub hook (it needs the
// operands), format-induced-exception and relative-error checks in
// on_result (they apply to every node).
class ShadowEvaluator final : public ir::Evaluator<NodeValues> {
 public:
  ShadowEvaluator(const Config& config, std::vector<Finding>& findings)
      : config_(config), findings_(findings) {
    ctx_.precision = config.precision;
  }

  const bf::Context& ctx() const noexcept { return ctx_; }

  NodeValues constant(const ir::Expr& e) override {
    NodeValues out;
    out.d = sf::to_native(e.node().value);
    out.shadow = bf::BigFloat::from_double(out.d);
    return out;
  }
  NodeValues variable(const ir::Expr& e, double bound) override {
    (void)e;
    NodeValues out;
    out.d = bound;
    out.shadow = bf::BigFloat::from_double(bound);
    return out;
  }
  NodeValues neg(const ir::Expr& e, const NodeValues& a) override {
    (void)e;
    NodeValues out;
    out.d = sf::to_native(sf::from_native(a.d).negated());
    out.shadow = a.shadow.negated();
    return out;
  }
  NodeValues add(const ir::Expr& e, const NodeValues& a,
                 const NodeValues& b) override {
    return add_sub(e, a, b, /*subtract=*/false);
  }
  NodeValues sub(const ir::Expr& e, const NodeValues& a,
                 const NodeValues& b) override {
    return add_sub(e, a, b, /*subtract=*/true);
  }
  NodeValues mul(const ir::Expr& e, const NodeValues& a,
                 const NodeValues& b) override {
    (void)e;
    sf::Env env;  // per-node binary64 evaluation (strict IEEE)
    NodeValues out;
    out.d = sf::to_native(
        sf::mul(sf::from_native(a.d), sf::from_native(b.d), env));
    out.shadow = bf::BigFloat::mul(a.shadow, b.shadow, ctx_);
    return out;
  }
  NodeValues div(const ir::Expr& e, const NodeValues& a,
                 const NodeValues& b) override {
    (void)e;
    sf::Env env;
    NodeValues out;
    out.d = sf::to_native(
        sf::div(sf::from_native(a.d), sf::from_native(b.d), env));
    out.shadow = bf::BigFloat::div(a.shadow, b.shadow, ctx_);
    return out;
  }
  NodeValues sqrt(const ir::Expr& e, const NodeValues& a) override {
    (void)e;
    sf::Env env;
    NodeValues out;
    out.d = sf::to_native(sf::sqrt(sf::from_native(a.d), env));
    out.shadow = bf::BigFloat::sqrt(a.shadow, ctx_);
    return out;
  }
  NodeValues fma(const ir::Expr& e, const NodeValues& a,
                 const NodeValues& b, const NodeValues& c) override {
    (void)e;
    sf::Env env;
    NodeValues out;
    out.d = sf::to_native(sf::fma(sf::from_native(a.d),
                                  sf::from_native(b.d),
                                  sf::from_native(c.d), env));
    out.shadow = bf::BigFloat::fma(a.shadow, b.shadow, c.shadow, ctx_);
    return out;
  }
  NodeValues cmp_eq(const ir::Expr& e, const NodeValues& a,
                    const NodeValues& b) override {
    (void)e;
    sf::Env env;
    NodeValues out;
    const bool d_eq =
        sf::equal(sf::from_native(a.d), sf::from_native(b.d), env);
    out.d = d_eq ? 1.0 : 0.0;
    out.shadow = bf::BigFloat::from_int(
        bf::BigFloat::compare(a.shadow, b.shadow) == 0 ? 1 : 0);
    return out;
  }
  NodeValues cmp_lt(const ir::Expr& e, const NodeValues& a,
                    const NodeValues& b) override {
    (void)e;
    sf::Env env;
    NodeValues out;
    const bool d_lt =
        sf::less(sf::from_native(a.d), sf::from_native(b.d), env);
    out.d = d_lt ? 1.0 : 0.0;
    out.shadow = bf::BigFloat::from_int(
        bf::BigFloat::compare(a.shadow, b.shadow) == -1 ? 1 : 0);
    return out;
  }

  void on_result(const ir::Expr& e, const NodeValues& out) override {
    // Format-induced exceptional values: binary64 went NaN/inf where the
    // high-precision value is an ordinary number.
    const bool d_exceptional = std::isnan(out.d) || std::isinf(out.d);
    const bool s_exceptional =
        out.shadow.is_nan() || out.shadow.is_infinity();
    if (d_exceptional && !s_exceptional) {
      Finding f;
      f.expression = e.to_string();
      f.reason =
          std::isnan(out.d)
              ? "binary64 produced NaN where the exact value is finite"
              : "binary64 overflowed where the exact value is finite";
      f.double_value = out.d;
      f.shadow_value = out.shadow.to_double();
      f.relative_error = std::numeric_limits<double>::infinity();
      findings_.push_back(std::move(f));
    } else if (!d_exceptional && !s_exceptional && out.d != 0.0) {
      const double rel = bf::relative_error(out.d, out.shadow, ctx_);
      if (rel > config_.relative_error_threshold) {
        Finding f;
        f.expression = e.to_string();
        char buf[48];
        std::snprintf(buf, sizeof buf, "relative error %.3g", rel);
        f.reason = buf;
        f.double_value = out.d;
        f.shadow_value = out.shadow.to_double();
        f.relative_error = rel;
        findings_.push_back(std::move(f));
      }
    }
  }

 private:
  NodeValues add_sub(const ir::Expr& e, const NodeValues& a,
                     const NodeValues& b, bool subtract) {
    sf::Env env;
    NodeValues out;
    out.d = subtract
                ? sf::to_native(sf::sub(sf::from_native(a.d),
                                        sf::from_native(b.d), env))
                : sf::to_native(sf::add(sf::from_native(a.d),
                                        sf::from_native(b.d), env));
    out.shadow = subtract
                     ? bf::BigFloat::sub(a.shadow, b.shadow, ctx_)
                     : bf::BigFloat::add(a.shadow, b.shadow, ctx_);
    // Cancellation: the result's magnitude collapsed far below the
    // larger operand's — leading bits annihilated, relative precision
    // amplified.
    if (a.shadow.is_finite() && !a.shadow.is_zero() &&
        b.shadow.is_finite() && !b.shadow.is_zero() &&
        out.shadow.is_finite() && !out.shadow.is_zero()) {
      const std::int64_t in_msb =
          std::max(a.shadow.msb_exponent(), b.shadow.msb_exponent());
      const std::int64_t lost = in_msb - out.shadow.msb_exponent();
      if (lost >= config_.cancellation_bits_threshold) {
        Finding f;
        f.expression = e.to_string();
        f.reason =
            "cancellation of " + std::to_string(lost) + " leading bits";
        f.double_value = out.d;
        f.shadow_value = out.shadow.to_double();
        f.cancelled_bits = static_cast<int>(lost);
        f.relative_error = bf::relative_error(out.d, out.shadow, ctx_);
        findings_.push_back(std::move(f));
      }
    }
    return out;
  }

  const Config& config_;
  std::vector<Finding>& findings_;
  bf::Context ctx_;
};

}  // namespace

Report analyze(const ir::Expr& expr, const Config& config,
               std::span<const double> bindings) {
  Report report;
  std::vector<Finding> findings;
  ShadowEvaluator evaluator(config, findings);

  const NodeValues top =
      ir::evaluate_tree<NodeValues>(expr, evaluator, bindings);
  report.double_result = top.d;
  report.shadow_result = top.shadow.to_double();
  report.double_is_exceptional =
      std::isnan(top.d) || std::isinf(top.d);
  report.shadow_is_exceptional =
      top.shadow.is_nan() || top.shadow.is_infinity();
  report.format_induced_exception =
      report.double_is_exceptional && !report.shadow_is_exceptional;
  report.relative_error =
      bf::relative_error(top.d, top.shadow, evaluator.ctx());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.relative_error > b.relative_error;
            });
  report.findings = std::move(findings);
  return report;
}

std::string render(const Report& report) {
  std::string out = "shadow-execution analysis\n";
  char line[160];
  std::snprintf(line, sizeof line, "  binary64 result:       %.17g\n",
                report.double_result);
  out += line;
  std::snprintf(line, sizeof line, "  high-precision result: %.17g\n",
                report.shadow_result);
  out += line;
  std::snprintf(line, sizeof line, "  relative error:        %.3g\n",
                report.relative_error);
  out += line;
  if (report.format_induced_exception) {
    out +=
        "  VERDICT: binary64 produced an exceptional value the mathematics "
        "does not contain — maximum suspicion\n";
  } else if (!report.findings.empty()) {
    out += "  VERDICT: suspicious nodes found\n";
  } else {
    out += "  VERDICT: clean at this precision\n";
  }
  for (const auto& f : report.findings) {
    out += "  - " + f.expression + ": " + f.reason;
    std::snprintf(line, sizeof line, " (double %.9g, shadow %.9g)\n",
                  f.double_value, f.shadow_value);
    out += line;
  }
  return out;
}

}  // namespace fpq::shadow
