#include "analyze/shadow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fpq::shadow {

namespace {

namespace bf = fpq::bigfloat;
namespace opt = fpq::opt;
namespace sf = fpq::softfloat;

struct Walk {
  const Config* config = nullptr;
  bf::Context ctx;
  std::vector<Finding>* findings = nullptr;
};

struct NodeValues {
  double d = 0.0;        // binary64 value at this node
  bf::BigFloat shadow;   // high-precision value at this node
};

NodeValues eval(const opt::Expr& e, Walk& walk) {
  const opt::Expr::Node& n = e.node();
  sf::Env env;  // per-node binary64 evaluation (strict IEEE)

  auto child = [&](std::size_t i) { return eval(n.children[i], walk); };

  NodeValues out;
  switch (n.kind) {
    case opt::ExprKind::kConst:
      out.d = sf::to_native(n.value);
      out.shadow = bf::BigFloat::from_double(out.d);
      return out;
    case opt::ExprKind::kAdd:
    case opt::ExprKind::kSub: {
      const NodeValues a = child(0);
      const NodeValues b = child(1);
      const bool subtract = n.kind == opt::ExprKind::kSub;
      out.d = subtract
                  ? sf::to_native(sf::sub(sf::from_native(a.d),
                                          sf::from_native(b.d), env))
                  : sf::to_native(sf::add(sf::from_native(a.d),
                                          sf::from_native(b.d), env));
      out.shadow = subtract
                       ? bf::BigFloat::sub(a.shadow, b.shadow, walk.ctx)
                       : bf::BigFloat::add(a.shadow, b.shadow, walk.ctx);
      // Cancellation: the result's magnitude collapsed far below the
      // larger operand's — leading bits annihilated, relative precision
      // amplified.
      if (a.shadow.is_finite() && !a.shadow.is_zero() &&
          b.shadow.is_finite() && !b.shadow.is_zero() &&
          out.shadow.is_finite() && !out.shadow.is_zero()) {
        const std::int64_t in_msb =
            std::max(a.shadow.msb_exponent(), b.shadow.msb_exponent());
        const std::int64_t lost = in_msb - out.shadow.msb_exponent();
        if (lost >= walk.config->cancellation_bits_threshold) {
          Finding f;
          f.expression = e.to_string();
          f.reason =
              "cancellation of " + std::to_string(lost) + " leading bits";
          f.double_value = out.d;
          f.shadow_value = out.shadow.to_double();
          f.cancelled_bits = static_cast<int>(lost);
          f.relative_error =
              bf::relative_error(out.d, out.shadow, walk.ctx);
          walk.findings->push_back(std::move(f));
        }
      }
      break;
    }
    case opt::ExprKind::kMul: {
      const NodeValues a = child(0);
      const NodeValues b = child(1);
      out.d = sf::to_native(
          sf::mul(sf::from_native(a.d), sf::from_native(b.d), env));
      out.shadow = bf::BigFloat::mul(a.shadow, b.shadow, walk.ctx);
      break;
    }
    case opt::ExprKind::kDiv: {
      const NodeValues a = child(0);
      const NodeValues b = child(1);
      out.d = sf::to_native(
          sf::div(sf::from_native(a.d), sf::from_native(b.d), env));
      out.shadow = bf::BigFloat::div(a.shadow, b.shadow, walk.ctx);
      break;
    }
    case opt::ExprKind::kSqrt: {
      const NodeValues a = child(0);
      out.d = sf::to_native(sf::sqrt(sf::from_native(a.d), env));
      out.shadow = bf::BigFloat::sqrt(a.shadow, walk.ctx);
      break;
    }
    case opt::ExprKind::kFma: {
      const NodeValues a = child(0);
      const NodeValues b = child(1);
      const NodeValues c = child(2);
      out.d = sf::to_native(sf::fma(sf::from_native(a.d),
                                    sf::from_native(b.d),
                                    sf::from_native(c.d), env));
      out.shadow =
          bf::BigFloat::fma(a.shadow, b.shadow, c.shadow, walk.ctx);
      break;
    }
  }

  // Format-induced exceptional values: binary64 went NaN/inf where the
  // high-precision value is an ordinary number.
  const bool d_exceptional = std::isnan(out.d) || std::isinf(out.d);
  const bool s_exceptional = out.shadow.is_nan() || out.shadow.is_infinity();
  if (d_exceptional && !s_exceptional) {
    Finding f;
    f.expression = e.to_string();
    f.reason = std::isnan(out.d)
                   ? "binary64 produced NaN where the exact value is finite"
                   : "binary64 overflowed where the exact value is finite";
    f.double_value = out.d;
    f.shadow_value = out.shadow.to_double();
    f.relative_error = std::numeric_limits<double>::infinity();
    walk.findings->push_back(std::move(f));
  } else if (!d_exceptional && !s_exceptional && out.d != 0.0) {
    const double rel = bf::relative_error(out.d, out.shadow, walk.ctx);
    if (rel > walk.config->relative_error_threshold) {
      Finding f;
      f.expression = e.to_string();
      char buf[48];
      std::snprintf(buf, sizeof buf, "relative error %.3g", rel);
      f.reason = buf;
      f.double_value = out.d;
      f.shadow_value = out.shadow.to_double();
      f.relative_error = rel;
      walk.findings->push_back(std::move(f));
    }
  }
  return out;
}

}  // namespace

Report analyze(const opt::Expr& expr, const Config& config) {
  Report report;
  std::vector<Finding> findings;
  Walk walk;
  walk.config = &config;
  walk.ctx.precision = config.precision;
  walk.findings = &findings;

  const NodeValues top = eval(expr, walk);
  report.double_result = top.d;
  report.shadow_result = top.shadow.to_double();
  report.double_is_exceptional =
      std::isnan(top.d) || std::isinf(top.d);
  report.shadow_is_exceptional =
      top.shadow.is_nan() || top.shadow.is_infinity();
  report.format_induced_exception =
      report.double_is_exceptional && !report.shadow_is_exceptional;
  report.relative_error =
      bf::relative_error(top.d, top.shadow, walk.ctx);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.relative_error > b.relative_error;
            });
  report.findings = std::move(findings);
  return report;
}

std::string render(const Report& report) {
  std::string out = "shadow-execution analysis\n";
  char line[160];
  std::snprintf(line, sizeof line, "  binary64 result:       %.17g\n",
                report.double_result);
  out += line;
  std::snprintf(line, sizeof line, "  high-precision result: %.17g\n",
                report.shadow_result);
  out += line;
  std::snprintf(line, sizeof line, "  relative error:        %.3g\n",
                report.relative_error);
  out += line;
  if (report.format_induced_exception) {
    out +=
        "  VERDICT: binary64 produced an exceptional value the mathematics "
        "does not contain — maximum suspicion\n";
  } else if (!report.findings.empty()) {
    out += "  VERDICT: suspicious nodes found\n";
  } else {
    out += "  VERDICT: clean at this precision\n";
  }
  for (const auto& f : report.findings) {
    out += "  - " + f.expression + ": " + f.reason;
    std::snprintf(line, sizeof line, " (double %.9g, shadow %.9g)\n",
                  f.double_value, f.shadow_value);
    out += line;
  }
  return out;
}

}  // namespace fpq::shadow
