// fpq::shadow — shadow execution: binary64 next to arbitrary precision.
//
// The second tool the paper's §V asks for: "static and dynamic analysis
// tools that can examine existing codebases and point developers to
// potentially suspicious code." This module re-executes an fpq::ir
// expression tree in strict-IEEE binary64 AND in high-precision BigFloat
// arithmetic — one ir::Evaluator whose value domain is the PAIR of both
// results — then reports, per node:
//
//   * the relative error the double-precision path accumulated,
//   * catastrophic cancellation (additions/subtractions whose result
//     exponent collapses far below the operands'),
//   * exceptional events the high-precision path did NOT produce
//     (overflow/invalid manufactured purely by the format's limits).
//
// A flagged node is "potentially suspicious code" in exactly the paper's
// sense.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bigfloat/bigfloat.hpp"
#include "ir/expr.hpp"

namespace fpq::shadow {

/// Analysis knobs.
struct Config {
  unsigned precision = 256;          ///< shadow significand bits
  double relative_error_threshold = 1e-6;  ///< flag nodes above this
  int cancellation_bits_threshold = 20;    ///< flag add/sub losing >= this
};

/// One flagged location.
struct Finding {
  std::string expression;    ///< rendering of the offending subtree
  std::string reason;        ///< "cancellation of 31 bits", ...
  double double_value = 0.0; ///< what binary64 computed there
  double shadow_value = 0.0; ///< the high-precision value (rounded)
  double relative_error = 0.0;
  int cancelled_bits = 0;
};

/// Whole-expression verdict.
struct Report {
  double double_result = 0.0;   ///< the binary64 answer
  double shadow_result = 0.0;   ///< the trusted answer (rounded to double)
  double relative_error = 0.0;  ///< |double - shadow| / |shadow|
  bool double_is_exceptional = false;  ///< NaN/inf in binary64
  bool shadow_is_exceptional = false;  ///< NaN/inf even at high precision
  /// Exceptional in binary64 but NOT at high precision: the format, not
  /// the mathematics, produced the NaN/inf — maximum suspicion.
  bool format_induced_exception = false;
  std::vector<Finding> findings;  ///< suspicious nodes, worst first
  bool suspicious() const noexcept {
    return format_induced_exception || !findings.empty();
  }
};

/// Runs the analysis on an ir::Expr tree (opt::Expr is the same type).
/// `bindings` feeds any kVar nodes in the tree, row-major by var_index.
Report analyze(const ir::Expr& expr, const Config& config = {},
               std::span<const double> bindings = {});

/// Human-readable rendering of a report.
std::string render(const Report& report);

}  // namespace fpq::shadow
