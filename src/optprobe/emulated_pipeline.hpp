// fpq::opt — an emulated compiler/hardware optimization pipeline over the
// softfloat engine.
//
// The optimization quiz's ground truths ("-O3 may contract to MADD",
// "-ffast-math may reassociate", "FTZ flushes subnormals") become
// demonstrable experiments here: build an expression once, evaluate it
// under a strict IEEE configuration and under an "optimized" configuration,
// and observe whether — and how — the bits diverge. Because the arithmetic
// is the softfloat engine, the demonstration works identically on any
// host, including ones whose real compiler/hardware would not cooperate.
//
// The expression tree and the evaluation core live in fpq::ir (the
// unified IR every analyzer shares); this module keeps its historical
// names — opt::Expr IS ir::Expr — and contributes the pipeline-shaped
// configuration plus the canned divergence demonstrations. Contraction
// and reassociation are ir::pipeline_rewrite passes: the optimized
// program is a real tree you can print and inspect, not a side effect of
// evaluation.
#pragma once

#include <string>

#include "ir/evaluators.hpp"
#include "ir/expr.hpp"
#include "ir/rewrite.hpp"
#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::opt {

/// The unified IR's expression tree, under its historical name here.
using Expr = ir::Expr;
using ExprKind = ir::ExprKind;

/// What the emulated pipeline is allowed to do to the program.
struct PipelineConfig {
  softfloat::Rounding rounding = softfloat::Rounding::kNearestEven;
  /// Contract add(mul(a,b), c) patterns into one fused operation — the
  /// effect of -ffp-contract=fast / typical -O3 on FMA hardware.
  bool contract_mul_add = false;
  /// Reassociate chains of + (and *) into balanced tree reductions — the
  /// effect of -ffast-math/-fassociative-math vectorization.
  bool reassociate = false;
  /// Non-standard hardware flush modes.
  bool flush_to_zero = false;
  bool denormals_are_zero = false;

  /// The strict IEEE reference configuration.
  static PipelineConfig ieee_strict() { return PipelineConfig{}; }
  /// Something like gcc -O3 on FMA hardware.
  static PipelineConfig o3_like() {
    PipelineConfig c;
    c.contract_mul_add = true;
    return c;
  }
  /// Something like gcc -Ofast / -ffast-math (plus FTZ/DAZ, which
  /// -ffast-math's crtfastmath startup enables on x86).
  static PipelineConfig fast_math_like() {
    PipelineConfig c;
    c.contract_mul_add = true;
    c.reassociate = true;
    c.flush_to_zero = true;
    c.denormals_are_zero = true;
    return c;
  }
};

/// The ir::EvalConfig (binary64) this pipeline configuration denotes.
ir::EvalConfig ir_config(const PipelineConfig& config);

/// The program the pipeline actually runs: the config's rewrite passes
/// applied to `expr` (identity for strict configs).
Expr optimized_tree(const Expr& expr, const PipelineConfig& config);

/// Evaluation outcome: the value plus the softfloat sticky flags raised.
struct EvalResult {
  softfloat::Float64 value;
  unsigned flags = 0;
};

/// Evaluates the expression under the configuration (through fpq::ir).
EvalResult evaluate(const Expr& expr, const PipelineConfig& config);

/// Result of running the same expression under two configurations.
struct Divergence {
  EvalResult baseline;
  EvalResult optimized;
  bool value_differs = false;
  bool flags_differ = false;
};

/// Compares strict-IEEE against `optimized` for one expression.
Divergence diverge(const Expr& expr, const PipelineConfig& optimized);

/// Canned demonstration expressions, one per optimization-quiz concern.
/// Each provably diverges under the corresponding non-strict config.
Expr demo_contraction_sensitive();   ///< differs under o3_like
Expr demo_reassociation_sensitive(); ///< differs under fast_math_like
Expr demo_flush_sensitive();         ///< differs under FTZ

}  // namespace fpq::opt
