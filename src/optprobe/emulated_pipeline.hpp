// fpq::opt — an emulated compiler/hardware optimization pipeline over the
// softfloat engine.
//
// The optimization quiz's ground truths ("-O3 may contract to MADD",
// "-ffast-math may reassociate", "FTZ flushes subnormals") become
// demonstrable experiments here: build an expression once, evaluate it
// under a strict IEEE configuration and under an "optimized" configuration,
// and observe whether — and how — the bits diverge. Because the arithmetic
// is the softfloat engine, the demonstration works identically on any
// host, including ones whose real compiler/hardware would not cooperate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "softfloat/env.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::opt {

/// Expression node kinds (exposed so analyzers — e.g. fpq::shadow — can
/// walk trees structurally).
enum class ExprKind { kConst, kAdd, kSub, kMul, kDiv, kSqrt, kFma };

/// A value-semantic expression tree over binary64 values.
class Expr {
 public:
  /// Leaf constant.
  static Expr constant(double v);
  static Expr constant(softfloat::Float64 v);

  static Expr add(Expr a, Expr b);
  static Expr sub(Expr a, Expr b);
  static Expr mul(Expr a, Expr b);
  static Expr div(Expr a, Expr b);
  static Expr sqrt(Expr a);
  /// Explicitly fused multiply-add (what IEEE 754-2008 added).
  static Expr fma(Expr a, Expr b, Expr c);

  /// Convenience: left-to-right sum of a list, as C source order implies.
  static Expr sum(const std::vector<double>& xs);

  /// Renders the tree, e.g. "((a*b)+c)"; constants print as %g.
  std::string to_string() const;

  struct Node {
    ExprKind kind = ExprKind::kConst;
    softfloat::Float64 value;
    std::vector<Expr> children;
  };
  const Node& node() const { return *node_; }

  /// Internal: wraps a node. Use the named factories above instead.
  explicit Expr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}

 private:
  std::shared_ptr<const Node> node_;
};

/// What the emulated pipeline is allowed to do to the program.
struct PipelineConfig {
  softfloat::Rounding rounding = softfloat::Rounding::kNearestEven;
  /// Contract add(mul(a,b), c) patterns into one fused operation — the
  /// effect of -ffp-contract=fast / typical -O3 on FMA hardware.
  bool contract_mul_add = false;
  /// Reassociate chains of + (and *) into balanced tree reductions — the
  /// effect of -ffast-math/-fassociative-math vectorization.
  bool reassociate = false;
  /// Non-standard hardware flush modes.
  bool flush_to_zero = false;
  bool denormals_are_zero = false;

  /// The strict IEEE reference configuration.
  static PipelineConfig ieee_strict() { return PipelineConfig{}; }
  /// Something like gcc -O3 on FMA hardware.
  static PipelineConfig o3_like() {
    PipelineConfig c;
    c.contract_mul_add = true;
    return c;
  }
  /// Something like gcc -Ofast / -ffast-math (plus FTZ/DAZ, which
  /// -ffast-math's crtfastmath startup enables on x86).
  static PipelineConfig fast_math_like() {
    PipelineConfig c;
    c.contract_mul_add = true;
    c.reassociate = true;
    c.flush_to_zero = true;
    c.denormals_are_zero = true;
    return c;
  }
};

/// Evaluation outcome: the value plus the softfloat sticky flags raised.
struct EvalResult {
  softfloat::Float64 value;
  unsigned flags = 0;
};

/// Evaluates the expression under the configuration.
EvalResult evaluate(const Expr& expr, const PipelineConfig& config);

/// Result of running the same expression under two configurations.
struct Divergence {
  EvalResult baseline;
  EvalResult optimized;
  bool value_differs = false;
  bool flags_differ = false;
};

/// Compares strict-IEEE against `optimized` for one expression.
Divergence diverge(const Expr& expr, const PipelineConfig& optimized);

/// Canned demonstration expressions, one per optimization-quiz concern.
/// Each provably diverges under the corresponding non-strict config.
Expr demo_contraction_sensitive();   ///< differs under o3_like
Expr demo_reassociation_sensitive(); ///< differs under fast_math_like
Expr demo_flush_sensitive();         ///< differs under FTZ

}  // namespace fpq::opt
