// fpq::opt — the optimization quiz's subject matter as queryable data:
// which compiler options and hardware modes preserve IEEE-standard
// floating point behavior, and which do not.
//
// The classification follows the GCC manual and Intel SDM, matching the
// ground truths of the paper's optimization quiz (§II-C): -O2 is the
// highest level that preserves standard compliance; -O3 may introduce
// contraction (MADD); -ffast-math is "the least conforming but fastest
// math mode"; FTZ/DAZ are non-standard hardware modes; MADD itself is part
// of IEEE 754-2008 but not 754-1985.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace fpq::opt {

/// How an option relates to the IEEE standard.
enum class Compliance {
  kCompliant,        ///< results remain standard-compliant
  kMayDiverge,       ///< can change results vs. strict evaluation
                     ///< (e.g. contraction: still IEEE-2008 operations)
  kNonCompliant,     ///< produces behavior outside the standard
};

/// One audited compiler flag or hardware mode.
struct FlagInfo {
  std::string_view name;         ///< e.g. "-O3", "FTZ"
  std::string_view kind;         ///< "compiler" or "hardware"
  Compliance compliance;
  std::string_view explanation;  ///< one-sentence why
};

/// The full audited set (compiler -O levels, fast-math family, contraction
/// control, and the hardware flush modes).
std::span<const FlagInfo> audited_flags() noexcept;

/// Looks up one flag by exact name; nullopt when not audited.
std::optional<FlagInfo> find_flag(std::string_view name) noexcept;

/// The highest -O level that preserves standard-compliant floating point
/// (the optimization quiz's Standard-compliant Level question): "-O2".
std::string_view highest_compliant_opt_level() noexcept;

/// True when enabling the named flag can produce results that differ from
/// strict IEEE evaluation (i.e. compliance != kCompliant).
bool can_change_results(std::string_view name) noexcept;

/// Renders the audit as text.
std::string render_audit();

}  // namespace fpq::opt
