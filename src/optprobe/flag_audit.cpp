#include "optprobe/flag_audit.hpp"

#include <array>

namespace fpq::opt {

namespace {

constexpr std::array<FlagInfo, 14> kFlags{{
    {"-O0", "compiler", Compliance::kCompliant,
     "no optimization; strict source-order IEEE evaluation"},
    {"-O1", "compiler", Compliance::kCompliant,
     "value-safe optimizations only"},
    {"-O2", "compiler", Compliance::kCompliant,
     "the highest level that still preserves standard-compliant floating "
     "point"},
    {"-O3", "compiler", Compliance::kMayDiverge,
     "enables transformations (notably contraction to fused multiply-add) "
     "that can change results relative to separate multiply and add"},
    {"-Ofast", "compiler", Compliance::kNonCompliant,
     "implies -ffast-math and abandons standard compliance outright"},
    {"-ffast-math", "compiler", Compliance::kNonCompliant,
     "the least conforming but fastest math mode: reassociation, no NaN/inf "
     "guarantees, flush-to-zero startup code on x86"},
    {"-funsafe-math-optimizations", "compiler", Compliance::kNonCompliant,
     "allows value-changing algebraic rewrites"},
    {"-fassociative-math", "compiler", Compliance::kNonCompliant,
     "reassociates chains, changing rounding behavior"},
    {"-ffinite-math-only", "compiler", Compliance::kNonCompliant,
     "assumes no NaNs or infinities exist; invalid/overflow semantics lost"},
    {"-ffp-contract=fast", "compiler", Compliance::kMayDiverge,
     "contracts a*b+c into fused multiply-add; the FMA is an IEEE 754-2008 "
     "operation but the contracted expression rounds once instead of twice"},
    {"-ffp-contract=off", "compiler", Compliance::kCompliant,
     "forbids contraction; every operation rounds separately"},
    {"MADD", "hardware", Compliance::kMayDiverge,
     "fused multiply-add: included in IEEE 754-2008 but not the original "
     "754-1985, and contraction changes mul-then-add results"},
    {"FTZ", "hardware", Compliance::kNonCompliant,
     "flushes subnormal results to zero instead of gradual underflow; not "
     "part of the standard"},
    {"DAZ", "hardware", Compliance::kNonCompliant,
     "treats subnormal operands as zero; not part of the standard"},
}};

}  // namespace

std::span<const FlagInfo> audited_flags() noexcept { return kFlags; }

std::optional<FlagInfo> find_flag(std::string_view name) noexcept {
  for (const FlagInfo& f : kFlags) {
    if (f.name == name) return f;
  }
  return std::nullopt;
}

std::string_view highest_compliant_opt_level() noexcept { return "-O2"; }

bool can_change_results(std::string_view name) noexcept {
  const auto info = find_flag(name);
  return info.has_value() && info->compliance != Compliance::kCompliant;
}

std::string render_audit() {
  std::string out = "floating point optimization audit\n";
  for (const FlagInfo& f : kFlags) {
    out += "  ";
    out += f.name;
    out += " [";
    out += f.kind;
    out += "] ";
    switch (f.compliance) {
      case Compliance::kCompliant:
        out += "compliant";
        break;
      case Compliance::kMayDiverge:
        out += "MAY CHANGE RESULTS";
        break;
      case Compliance::kNonCompliant:
        out += "NON-COMPLIANT";
        break;
    }
    out += ": ";
    out += f.explanation;
    out += '\n';
  }
  return out;
}

}  // namespace fpq::opt
