#include "optprobe/probes.hpp"

namespace fpq::opt {

SemanticsReport probe_semantics_baseline() noexcept {
  // This TU is compiled with the library's strict flags
  // (-ffp-contract=off, no fast-math), so the header-only probes here
  // report the standard-compliant baseline.
  return probe_semantics_here();
}

std::string describe(const SemanticsReport& r) {
  std::string out = "floating point build semantics\n";
  auto line = [&out](const char* label, bool value, const char* yes,
                     const char* no) {
    out += "  ";
    out += label;
    out += ": ";
    out += value ? yes : no;
    out += '\n';
  };
  line("-ffast-math in effect", r.facts.fast_math,
       "YES (non-standard-compliant results possible)", "no");
  line("a*b+c contracts to FMA", r.contracts_fma,
       "YES (IEEE 754-2008 operation, but changes mul-then-add results)",
       "no");
  line("NaN != NaN preserved", r.nan_semantics_ok, "yes",
       "NO (NaN semantics broken — fast-math?)");
  line("signed zero preserved", r.signed_zero_ok, "yes",
       "NO (-fno-signed-zeros?)");
  out += "  FLT_EVAL_METHOD: " + std::to_string(r.facts.flt_eval_method) +
         (r.facts.flt_eval_method == 0
              ? " (operations evaluate in their own type)\n"
              : " (excess precision in play)\n");
  out += r.appears_standard_compliant
             ? "  verdict: appears standard-compliant\n"
             : "  verdict: NON-STANDARD floating point behavior detected\n";
  return out;
}

}  // namespace fpq::opt
