// fpq::opt — probes for what a *build* does to floating point.
//
// The paper's optimization quiz asks whether developers know which
// compiler/hardware choices step outside the standard. These probes answer
// the same questions about the translation unit they are compiled into:
//
//   * does the compiler contract a*b+c into a fused multiply-add (MADD)?
//   * is -ffast-math (or equivalent) in effect?
//   * is excess precision in play (FLT_EVAL_METHOD)?
//
// The functions marked `inline` in this header are intentionally
// header-only: they compile with the INCLUDER's flags, so a user can
// include this header in a TU built with -O3 -ffast-math and ask what that
// did. The fpq library's own baseline (compiled strictly) is exposed via
// the *_baseline() functions in the .cpp.
#pragma once

#include <cfloat>
#include <cmath>
#include <limits>
#include <string>

namespace fpq::opt {

/// Compile-time facts about the including TU.
struct BuildFacts {
  bool fast_math = false;        ///< __FAST_MATH__ defined
  bool fp_fast_fma = false;      ///< __FP_FAST_FMA defined (fma is cheap)
  bool finite_math_only = false; ///< __FINITE_MATH_ONLY__
  int flt_eval_method = 0;       ///< FLT_EVAL_METHOD of the TU
  bool optimized = false;        ///< __OPTIMIZE__
};

/// Captures the including TU's compile-time facts.
inline BuildFacts build_facts() noexcept {
  BuildFacts f;
#ifdef __FAST_MATH__
  f.fast_math = true;
#endif
#ifdef __FP_FAST_FMA
  f.fp_fast_fma = true;
#endif
#if defined(__FINITE_MATH_ONLY__) && __FINITE_MATH_ONLY__
  f.finite_math_only = true;
#endif
#ifdef FLT_EVAL_METHOD
  f.flt_eval_method = FLT_EVAL_METHOD;
#endif
#ifdef __OPTIMIZE__
  f.optimized = true;
#endif
  return f;
}

/// Runtime contraction probe, compiled with the includer's flags.
///
/// Uses operands for which round(a*b)+c and fma(a,b,c) provably differ:
/// a = b = 1 + 2^-27 (float) so a*b needs more bits than the format holds.
/// Returns true when the expression a*b+c was contracted to an FMA.
[[gnu::noinline]] inline bool expression_contracts_to_fma_here() noexcept {
  volatile float a = 1.0f + 0x1.0p-12f;
  volatile float b = 1.0f + 0x1.0p-12f;
  const float product = a * b;  // rounded if not kept in excess precision
  volatile float neg = -product;
  // If the compiler contracts, the multiply inside this expression is
  // exact and the residual is the multiply's rounding error (nonzero);
  // without contraction the residual is exactly zero.
  const float residual = a * b + neg;
  return residual != 0.0f;
}

/// Runtime probe: does this TU preserve NaN semantics (x != x for NaN)?
/// -ffast-math / -ffinite-math-only builds typically fold this to false.
[[gnu::noinline]] inline bool nan_compares_unequal_here() noexcept {
  volatile double nan = std::numeric_limits<double>::quiet_NaN();
  volatile double copy = nan;
  return !(nan == copy);
}

/// Runtime probe: is signed zero preserved (1/-0 == -inf)?
/// -fno-signed-zeros builds may lose this.
[[gnu::noinline]] inline bool signed_zero_preserved_here() noexcept {
  volatile double negzero = -0.0;
  volatile double one = 1.0;
  return one / negzero < 0.0;
}

/// Full semantic report for the including TU.
struct SemanticsReport {
  BuildFacts facts;
  bool contracts_fma = false;
  bool nan_semantics_ok = false;
  bool signed_zero_ok = false;
  /// Overall: does this TU appear to implement standard IEEE semantics?
  bool appears_standard_compliant = false;
};

inline SemanticsReport probe_semantics_here() noexcept {
  SemanticsReport r;
  r.facts = build_facts();
  r.contracts_fma = expression_contracts_to_fma_here();
  r.nan_semantics_ok = nan_compares_unequal_here();
  r.signed_zero_ok = signed_zero_preserved_here();
  r.appears_standard_compliant = !r.facts.fast_math && !r.contracts_fma &&
                                 r.nan_semantics_ok && r.signed_zero_ok;
  return r;
}

/// The library's own baseline (compiled with -ffp-contract=off and no
/// fast-math): must report standard-compliant; tests assert this.
SemanticsReport probe_semantics_baseline() noexcept;

/// Renders a report for humans.
std::string describe(const SemanticsReport& r);

}  // namespace fpq::opt
