#include "optprobe/emulated_pipeline.hpp"

namespace fpq::opt {

ir::EvalConfig ir_config(const PipelineConfig& config) {
  ir::EvalConfig c;
  c.format_bits = 64;
  c.rounding = config.rounding;
  c.contract_mul_add = config.contract_mul_add;
  c.reassociate = config.reassociate;
  c.flush_to_zero = config.flush_to_zero;
  c.denormals_are_zero = config.denormals_are_zero;
  return c;
}

Expr optimized_tree(const Expr& expr, const PipelineConfig& config) {
  return ir::pipeline_rewrite(expr, config.contract_mul_add,
                              config.reassociate);
}

EvalResult evaluate(const Expr& expr, const PipelineConfig& config) {
  const ir::Outcome outcome = ir::evaluate(expr, ir_config(config));
  return EvalResult{outcome.value, outcome.flags};
}

Divergence diverge(const Expr& expr, const PipelineConfig& optimized) {
  Divergence d;
  d.baseline = evaluate(expr, PipelineConfig::ieee_strict());
  d.optimized = evaluate(expr, optimized);
  d.value_differs = d.baseline.value.bits != d.optimized.value.bits;
  d.flags_differ = d.baseline.flags != d.optimized.flags;
  return d;
}

Expr demo_contraction_sensitive() {
  // x*x - x*x with x = 1 + 2^-30: contracted, the fused subtract sees the
  // exact square and returns the multiply's rounding error; uncontracted it
  // is exactly zero.
  const double x = 1.0 + 0x1.0p-30;
  return Expr::sub(Expr::mul(Expr::constant(x), Expr::constant(x)),
                   Expr::constant((1.0 + 0x1.0p-30) * (1.0 + 0x1.0p-30)));
}

Expr demo_reassociation_sensitive() {
  // Left-to-right, the small terms vanish against 1e16 one at a time;
  // pairwise, they first combine with each other and survive.
  return Expr::sum({1e16, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
}

Expr demo_flush_sensitive() {
  // min_normal * 0.5 * 2: gradual underflow preserves the value exactly;
  // FTZ flushes the intermediate to zero and the final result is 0.
  const double min_normal = 2.2250738585072014e-308;
  return Expr::mul(
      Expr::mul(Expr::constant(min_normal), Expr::constant(0.5)),
      Expr::constant(2.0));
}

}  // namespace fpq::opt
