#include "optprobe/emulated_pipeline.hpp"

#include <cassert>
#include <cstdio>

namespace fpq::opt {

namespace sf = fpq::softfloat;

using Kind = ExprKind;

namespace {

Expr make_node(Kind kind, std::vector<Expr> children) {
  auto node = std::make_shared<Expr::Node>();
  node->kind = kind;
  node->children = std::move(children);
  return Expr{std::move(node)};
}

}  // namespace

Expr Expr::constant(double v) { return constant(sf::from_native(v)); }

Expr Expr::constant(sf::Float64 v) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->value = v;
  return Expr{std::move(node)};
}

Expr Expr::add(Expr a, Expr b) { return make_node(Kind::kAdd, {a, b}); }
Expr Expr::sub(Expr a, Expr b) { return make_node(Kind::kSub, {a, b}); }
Expr Expr::mul(Expr a, Expr b) { return make_node(Kind::kMul, {a, b}); }
Expr Expr::div(Expr a, Expr b) { return make_node(Kind::kDiv, {a, b}); }
Expr Expr::sqrt(Expr a) { return make_node(Kind::kSqrt, {a}); }
Expr Expr::fma(Expr a, Expr b, Expr c) {
  return make_node(Kind::kFma, {a, b, c});
}

Expr Expr::sum(const std::vector<double>& xs) {
  assert(!xs.empty());
  Expr acc = constant(xs[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc = add(acc, constant(xs[i]));
  }
  return acc;
}

std::string Expr::to_string() const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kConst: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", sf::to_native(n.value));
      return buf;
    }
    case Kind::kAdd:
      return "(" + n.children[0].to_string() + " + " +
             n.children[1].to_string() + ")";
    case Kind::kSub:
      return "(" + n.children[0].to_string() + " - " +
             n.children[1].to_string() + ")";
    case Kind::kMul:
      return "(" + n.children[0].to_string() + " * " +
             n.children[1].to_string() + ")";
    case Kind::kDiv:
      return "(" + n.children[0].to_string() + " / " +
             n.children[1].to_string() + ")";
    case Kind::kSqrt:
      return "sqrt(" + n.children[0].to_string() + ")";
    case Kind::kFma:
      return "fma(" + n.children[0].to_string() + ", " +
             n.children[1].to_string() + ", " + n.children[2].to_string() +
             ")";
  }
  return "?";
}

namespace {

// Flattens a maximal chain of + into its addend expressions.
void flatten_add_chain(const Expr& e, std::vector<Expr>& out) {
  const Expr::Node& n = e.node();
  if (n.kind == Kind::kAdd) {
    flatten_add_chain(n.children[0], out);
    flatten_add_chain(n.children[1], out);
  } else {
    out.push_back(e);
  }
}

sf::Float64 eval_node(const Expr& e, const PipelineConfig& cfg, sf::Env& env);

// Pairwise (tree) reduction: the association order a vectorizing compiler
// effectively chooses under -fassociative-math.
sf::Float64 pairwise_sum(const std::vector<sf::Float64>& xs, std::size_t lo,
                         std::size_t hi, sf::Env& env) {
  if (hi - lo == 1) return xs[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return sf::add(pairwise_sum(xs, lo, mid, env),
                 pairwise_sum(xs, mid, hi, env), env);
}

sf::Float64 eval_node(const Expr& e, const PipelineConfig& cfg,
                      sf::Env& env) {
  const Expr::Node& n = e.node();
  switch (n.kind) {
    case Kind::kConst:
      return n.value;
    case Kind::kAdd: {
      if (cfg.reassociate) {
        std::vector<Expr> addends;
        flatten_add_chain(e, addends);
        if (addends.size() > 2) {
          std::vector<sf::Float64> values;
          values.reserve(addends.size());
          for (const Expr& a : addends) {
            values.push_back(eval_node(a, cfg, env));
          }
          return pairwise_sum(values, 0, values.size(), env);
        }
      }
      if (cfg.contract_mul_add) {
        // add(mul(a,b), c) or add(c, mul(a,b)) -> fused.
        const Expr::Node& l = n.children[0].node();
        const Expr::Node& r = n.children[1].node();
        if (l.kind == Kind::kMul) {
          return sf::fma(eval_node(l.children[0], cfg, env),
                         eval_node(l.children[1], cfg, env),
                         eval_node(n.children[1], cfg, env), env);
        }
        if (r.kind == Kind::kMul) {
          return sf::fma(eval_node(r.children[0], cfg, env),
                         eval_node(r.children[1], cfg, env),
                         eval_node(n.children[0], cfg, env), env);
        }
      }
      return sf::add(eval_node(n.children[0], cfg, env),
                     eval_node(n.children[1], cfg, env), env);
    }
    case Kind::kSub: {
      if (cfg.contract_mul_add) {
        const Expr::Node& l = n.children[0].node();
        if (l.kind == Kind::kMul) {
          // mul(a,b) - c -> fma(a, b, -c).
          return sf::fma(
              eval_node(l.children[0], cfg, env),
              eval_node(l.children[1], cfg, env),
              eval_node(n.children[1], cfg, env).negated(), env);
        }
      }
      return sf::sub(eval_node(n.children[0], cfg, env),
                     eval_node(n.children[1], cfg, env), env);
    }
    case Kind::kMul:
      return sf::mul(eval_node(n.children[0], cfg, env),
                     eval_node(n.children[1], cfg, env), env);
    case Kind::kDiv:
      return sf::div(eval_node(n.children[0], cfg, env),
                     eval_node(n.children[1], cfg, env), env);
    case Kind::kSqrt:
      return sf::sqrt(eval_node(n.children[0], cfg, env), env);
    case Kind::kFma:
      return sf::fma(eval_node(n.children[0], cfg, env),
                     eval_node(n.children[1], cfg, env),
                     eval_node(n.children[2], cfg, env), env);
  }
  return sf::Float64::quiet_nan();
}

}  // namespace

EvalResult evaluate(const Expr& expr, const PipelineConfig& config) {
  sf::Env env(config.rounding);
  env.set_flush_to_zero(config.flush_to_zero);
  env.set_denormals_are_zero(config.denormals_are_zero);
  EvalResult r;
  r.value = eval_node(expr, config, env);
  r.flags = env.flags();
  return r;
}

Divergence diverge(const Expr& expr, const PipelineConfig& optimized) {
  Divergence d;
  d.baseline = evaluate(expr, PipelineConfig::ieee_strict());
  d.optimized = evaluate(expr, optimized);
  d.value_differs = d.baseline.value.bits != d.optimized.value.bits;
  d.flags_differ = d.baseline.flags != d.optimized.flags;
  return d;
}

Expr demo_contraction_sensitive() {
  // x*x - x*x with x = 1 + 2^-30: contracted, the fused subtract sees the
  // exact square and returns the multiply's rounding error; uncontracted it
  // is exactly zero.
  const double x = 1.0 + 0x1.0p-30;
  return Expr::sub(Expr::mul(Expr::constant(x), Expr::constant(x)),
                   Expr::constant((1.0 + 0x1.0p-30) * (1.0 + 0x1.0p-30)));
}

Expr demo_reassociation_sensitive() {
  // Left-to-right, the small terms vanish against 1e16 one at a time;
  // pairwise, they first combine with each other and survive.
  return Expr::sum({1e16, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
}

Expr demo_flush_sensitive() {
  // min_normal * 0.5 * 2: gradual underflow preserves the value exactly;
  // FTZ flushes the intermediate to zero and the final result is 0.
  const double min_normal = 2.2250738585072014e-308;
  return Expr::mul(
      Expr::mul(Expr::constant(min_normal), Expr::constant(0.5)),
      Expr::constant(2.0));
}

}  // namespace fpq::opt
