// fpq::opt — live hardware probes of the x86 flush modes.
//
// The paper's "Flush to Zero" question: Intel's FTZ and DAZ control bits
// eliminate gradual underflow for speed and are NOT part of the IEEE
// standard. These probes don't just read the mode bits — they run a real
// subnormal-producing computation under each mode and report what the
// hardware actually did, so the answer is demonstrated rather than assumed.
#pragma once

#include <string>

#include "fpmon/hardware.hpp"

namespace fpq::opt {

/// Outcome of exercising the hardware with and without FTZ/DAZ.
struct FlushProbeResult {
  bool mxcsr_available = false;   ///< x86 MXCSR reachable at all
  bool ftz_default_on = false;    ///< FTZ already set when we looked
  bool daz_default_on = false;    ///< DAZ already set when we looked
  bool ftz_flushes_results = false;  ///< demonstrated: tiny result -> 0
  bool daz_zeroes_operands = false;  ///< demonstrated: subnormal input -> 0
  bool ieee_gradual_underflow = false;  ///< without FTZ: subnormal preserved
};

/// Runs the demonstration computations. Restores the previous MXCSR.
FlushProbeResult probe_flush_modes() noexcept;

/// Human-readable rendering of the probe outcome.
std::string describe(const FlushProbeResult& r);

}  // namespace fpq::opt
