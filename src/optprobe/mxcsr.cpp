#include "optprobe/mxcsr.hpp"

namespace fpq::opt {

namespace {

// Opaque to the optimizer so the operations hit the FPU with the MXCSR
// state current at call time.
[[gnu::noinline]] double scaled_product(double a, double b) {
  volatile double va = a;
  volatile double vb = b;
  volatile double r = va * vb;
  return r;
}

[[gnu::noinline]] double opaque_add(double a, double b) {
  volatile double va = a;
  volatile double vb = b;
  volatile double r = va + vb;
  return r;
}

constexpr double kMinNormal = 2.2250738585072014e-308;   // 2^-1022
constexpr double kMinSubnormal = 4.9406564584124654e-324;  // 2^-1074

}  // namespace

FlushProbeResult probe_flush_modes() noexcept {
  FlushProbeResult r;
  r.mxcsr_available = mon::mxcsr_supported();
  if (!r.mxcsr_available) return r;

  r.ftz_default_on = mon::flush_to_zero_enabled();
  r.daz_default_on = mon::denormals_are_zero_enabled();

  {
    // IEEE mode: halving the smallest normal must give a subnormal.
    mon::ScopedFlushMode ieee(false, false);
    const double tiny = scaled_product(kMinNormal, 0.5);
    r.ieee_gradual_underflow = tiny != 0.0 && tiny < kMinNormal;
  }
  {
    // FTZ: the same computation flushes to zero.
    mon::ScopedFlushMode ftz(true, false);
    const double tiny = scaled_product(kMinNormal, 0.5);
    r.ftz_flushes_results = tiny == 0.0;
  }
  {
    // DAZ: a subnormal *operand* is read as zero; adding it changes nothing
    // and multiplying it by a huge value still gives zero.
    mon::ScopedFlushMode daz(false, true);
    const double via_add = opaque_add(kMinSubnormal, 0.0);
    const double via_mul = scaled_product(kMinSubnormal, 1e300);
    r.daz_zeroes_operands = via_add == 0.0 && via_mul == 0.0;
  }
  return r;
}

std::string describe(const FlushProbeResult& r) {
  if (!r.mxcsr_available) {
    return "MXCSR not available on this host; flush modes not probed\n";
  }
  std::string out;
  out += "MXCSR flush-mode probe\n";
  out += "  FTZ set at entry:  ";
  out += r.ftz_default_on ? "YES (non-standard mode already active!)\n"
                          : "no\n";
  out += "  DAZ set at entry:  ";
  out += r.daz_default_on ? "YES (non-standard mode already active!)\n"
                          : "no\n";
  out += "  IEEE gradual underflow observed: ";
  out += r.ieee_gradual_underflow ? "yes\n" : "NO (unexpected)\n";
  out += "  FTZ flushed a tiny result to zero: ";
  out += r.ftz_flushes_results ? "yes (demonstrated non-standard behavior)\n"
                               : "no\n";
  out += "  DAZ read a subnormal operand as zero: ";
  out += r.daz_zeroes_operands ? "yes (demonstrated non-standard behavior)\n"
                               : "no\n";
  return out;
}

}  // namespace fpq::opt
